#!/usr/bin/env bash
# Tier-1 verification, runnable with no network access:
#   1. guard: no external (registry) dependencies in any crate manifest
#   2. cargo build --release --offline
#   3. cargo test -q --offline
#   4. cargo clippy --offline --all-targets -- -D warnings (lint-clean)
#   5. determinism: the full experiments suite, run twice, must be
#      byte-identical (same seeds => same numbers, see DESIGN.md)
#   6. perf trajectory: re-measure the E18 group-commit operating points
#      and write BENCH_pr5.json (tps + p50/p99 per point)
#   7. freshness trajectory: re-measure the E19 session-scale corner
#      points under ReadPolicy::Fresh and write BENCH_pr6.json (read tps
#      + p50/p99 at 10^3 and 10^5 sessions; asserts zero RYW violations)
#   8. durability trajectory: run the crash matrix (clean / lost-tail /
#      torn-tail x checkpoint interval) and write BENCH_pr7.json (MTTR
#      p50/p99 + replay entries/sec per interval; the bin asserts zero
#      committed-transaction loss in every episode)
#   9. statement-pipeline trajectory: re-measure the plan-cache stage
#      attribution and the E18 corner points with the cache off/on and
#      write BENCH_pr8.json (the bin asserts hit rate > 0 and that the
#      cache-off compatibility arm is bit-identical across reruns)
#  10. partial-replication trajectory: re-measure the E22 write-scaling
#      curve (global vs striped partial at 2/4/8 backends) and write
#      BENCH_pr9.json (the bin asserts partial beats global by > 2x at 8
#      backends and that a trivial placement runs the global path
#      byte-for-byte — counters, certifier stats, and data checksums)
#  11. elasticity trajectory: run the E23 management operations (add /
#      drain / rolling restart) under open-loop load and write
#      BENCH_pr10.json (the bin asserts zero committed-write loss, full
#      arrival accounting, and that a classic closed-loop arm is
#      bit-identical across reruns — the driver-off guarantee)
#
# The guard exists because this workspace is built in environments with no
# registry access: a single external crate in a Cargo.toml breaks the build
# before anything compiles (see DESIGN.md, "Hermetic-build policy").

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. No-external-dependency guard -----------------------------------
# Every dependency line in every crate manifest must be a workspace or
# path dependency. Anything else would be fetched from the registry.
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Lines inside [dependencies]/[dev-dependencies]/[build-dependencies]
    # sections that are not workspace/path references.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies/) }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*[.=]/ {
            if ($0 !~ /workspace[[:space:]]*=[[:space:]]*true/ &&
                $0 !~ /\.workspace[[:space:]]*=/ &&
                $0 !~ /path[[:space:]]*=/)
                print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: external dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
done

# Belt and braces: the crates this repo historically depended on must not
# reappear anywhere in a crate manifest.
if grep -rnE '^[[:space:]]*(rand|proptest|criterion)[[:space:]]*[.=]' \
        Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: banned external crate referenced above" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "verify: dependency guard FAILED" >&2
    exit 1
fi
echo "verify: dependency guard OK (workspace is hermetic)"

# --- 2 + 3. Tier-1 build and tests, offline ----------------------------
cargo build --release --offline
cargo test -q --offline

# --- 4. Lint gate -------------------------------------------------------
# The workspace stays clippy-clean: warnings are errors across every
# target (libs, bins, tests). Skipped gracefully on toolchains without a
# clippy component.
if cargo clippy --version > /dev/null 2>&1; then
    cargo clippy --offline --all-targets -- -D warnings
    echo "verify: clippy OK (no warnings, all targets)"
else
    echo "verify: clippy unavailable on this toolchain, skipping lint gate"
fi

# --- 5. Determinism check ----------------------------------------------
# Every experiment draws from fixed seeds, so two runs must agree on every
# byte. A diff here means nondeterminism leaked into the simulation (wall
# clock, hash order, thread timing), which invalidates every table in
# EXPERIMENTS.md.
out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT
cargo run --release -q --offline -p replimid-bench --bin experiments > "$out_a"
cargo run --release -q --offline -p replimid-bench --bin experiments > "$out_b"
if ! diff -q "$out_a" "$out_b" > /dev/null; then
    echo "verify: determinism FAILED — two same-seed runs differ:" >&2
    diff "$out_a" "$out_b" | head -20 >&2
    exit 1
fi
echo "verify: determinism OK (two experiment runs byte-identical)"

# --- 6. Perf trajectory -------------------------------------------------
# Re-measure the E18 group-commit operating points through the timing
# harness and leave BENCH_pr5.json at the repo root, so later PRs can
# compare throughput/latency at fixed points instead of re-reading tables.
cargo run --release -q --offline -p replimid-bench --bin bench_pr5
echo "verify: perf trajectory OK (BENCH_pr5.json written)"

# --- 7. Freshness trajectory --------------------------------------------
# The E19 corner points (10^3 and 10^5 sessions, 4 backends) under
# freshness-constrained routing. The bin itself asserts ryw_violations == 0
# at both points, so this doubles as a read-your-writes gate.
cargo run --release -q --offline -p replimid-bench --bin bench_pr6
echo "verify: freshness trajectory OK (BENCH_pr6.json written)"

# --- 8. Durability trajectory -------------------------------------------
# The PR 7 crash matrix: every (crash kind x checkpoint interval) episode
# crashes a durable backend mid-load, restarts it, and requires the
# recovered replica to reconverge with its peers — zero committed loss —
# while measuring MTTR (checkpoint load + WAL replay + rejoin) in virtual
# time. Fails loudly if any episode diverges.
cargo run --release -q --offline -p replimid-bench --bin bench_pr7
echo "verify: durability trajectory OK (BENCH_pr7.json written)"

# --- 9. Statement-pipeline trajectory ------------------------------------
# The PR 8 fast path: plan-cache stage attribution (Admission + Execute
# µs, cache off vs on) and write tps at the E18 corner points, written to
# BENCH_pr8.json. The bin asserts the cache hits on the microbench mix and
# that the cache-off arm — the compatibility path — is bit-identical
# across same-seed reruns.
cargo run --release -q --offline -p replimid-bench --bin bench_pr8
echo "verify: statement-pipeline trajectory OK (BENCH_pr8.json written)"

# --- 10. Partial-replication trajectory ----------------------------------
# The PR 9 headline: disjoint write workloads scale near-linearly under a
# striped one-replica placement while full replication saturates at one
# backend's apply rate, written to BENCH_pr9.json. The bin asserts the
# 8-backend partial/global ratio stays above 2x and that a trivial
# placement is normalized away into the exact global single-sequencer
# path (byte-identical counters, certifier stats, and checksums).
cargo run --release -q --offline -p replimid-bench --bin bench_pr9
echo "verify: partial-replication trajectory OK (BENCH_pr9.json written)"

# --- 11. Elasticity trajectory -------------------------------------------
# The PR 10 campaign: management operations (scale-out, graceful drain,
# rolling restart) measured under open-loop Poisson load that does not
# slow down when the cluster does. The bin asserts zero committed-write
# loss (acked ⊆ present on every Online backend), full arrival accounting
# (ok + err + shed == arrivals), and that a classic closed-loop arm —
# no open-loop driver anywhere — is bit-identical across same-seed
# reruns, so E1..E22 stay untouched by the new machinery.
cargo run --release -q --offline -p replimid-bench --bin bench_pr10
echo "verify: elasticity trajectory OK (BENCH_pr10.json written)"

echo "verify: OK"
