//! End-to-end demonstrations of the paper's §4 gap catalogue, driven
//! through the full cluster (middleware + engines + simulated network).

use replimid_core::{
    AdminCmd, BackendId, Cluster, ClusterConfig, Granularity, Mode, NondetPolicy, Policy,
    ReadPolicy, ScriptSource, TxSource,
};
use replimid_simnet::{dur, SimTime};
use replimid_workload::micro;

struct SeqInsert {
    next: i64,
}

impl TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO bench VALUES ({k}, 1)")]
    }
}

fn read_v(cluster: &mut Cluster, b: usize, k: i64) -> i64 {
    cluster.with_backend_engine(0, b, |e| {
        let conn = e.connect("admin", "admin").unwrap();
        e.execute(conn, "USE bench").unwrap();
        let r = e
            .execute(conn, &format!("SELECT v FROM bench WHERE k = {k}"))
            .unwrap();
        let v = r.outcome.rows().unwrap().rows[0][0].as_int().unwrap();
        e.disconnect(conn);
        v
    })
}

// ---------------------------------------------------------------------
// §4.1.3 heterogeneous clusters: LPRF vs round-robin
// ---------------------------------------------------------------------

#[test]
fn lprf_outperforms_round_robin_on_heterogeneous_cluster() {
    // One replica is 4x slower (the RAID-battery anecdote). Reads dominate.
    let run = |policy: Policy| {
        let mut cfg = ClusterConfig::new(
            Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
            micro::schema("bench", 200),
            "bench",
        );
        cfg.backends_per_mw = 3;
        cfg.backend_speed = vec![1.0, 1.0, 4.0];
        cfg.mw.policy = policy;
        cfg.mw.granularity = Granularity::Query;
        let mut cluster = Cluster::build(cfg);
        let mut clients = Vec::new();
        for _ in 0..8 {
            clients.push(
                cluster.add_client(micro::PointReads { total_keys: 200 }, |cc| {
                    cc.think_time_us = 200
                }),
            );
        }
        cluster.run_for(dur::secs(5));
        clients
            .iter()
            .map(|&c| cluster.client_metrics(c).committed)
            .sum::<u64>()
    };
    let rr = run(Policy::RoundRobin);
    let lprf = run(Policy::Lprf);
    assert!(
        lprf as f64 > rr as f64 * 1.1,
        "LPRF should beat RR on a skewed cluster: rr={rr} lprf={lprf}"
    );
}

// ---------------------------------------------------------------------
// §3.3 session consistency: read-your-writes on master-slave
// ---------------------------------------------------------------------

#[test]
fn session_sticky_reads_see_own_writes_on_stale_slaves() {
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: 2_000_000, // effectively never during the test
            use_writesets: false,
            parallel_apply: false,
            read_master: true,
        },
        micro::schema("bench", 10),
        "bench",
    );
    cfg.backends_per_mw = 2;
    cfg.mw.read_policy = ReadPolicy::SessionSticky;
    let mut cluster = Cluster::build(cfg);
    let src = ScriptSource::new(vec![vec![
        "UPDATE bench SET v = 42 WHERE k = 1".into(),
        "SELECT v FROM bench WHERE k = 1".into(),
    ]]);
    let c = cluster.add_client(src, |cc| {
        cc.tx_limit = 1;
    });
    cluster.run_for(dur::secs(1));
    let m = cluster.client_metrics(c);
    assert_eq!(m.committed, 1, "({:?})", m.last_error);
    // The slave is stale (shipping never ran within the test window)...
    assert_eq!(read_v(&mut cluster, 1, 1), 0, "slave must be stale");
    // ...and the master has the write the session read back.
    assert_eq!(read_v(&mut cluster, 0, 1), 42);
}

// ---------------------------------------------------------------------
// §4.4.1 backups: cold removes the replica, hot degrades it
// ---------------------------------------------------------------------

#[test]
fn cold_backup_removes_replica_then_rejoins_via_log() {
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 500),
        "bench",
    );
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 10_000 }, |cc| {
        cc.think_time_us = 1_000;
        cc.tx_limit = 2_500;
    });
    cluster.admin_at(
        SimTime::from_secs(1),
        0,
        AdminCmd::Backup { backend: BackendId(1), hot: false },
    );
    cluster.run_for(dur::secs(8));
    let mw = cluster.mw_metrics(0);
    assert_eq!(mw.backups.len(), 1, "backup completed");
    let (start, end, hot, rows) = mw.backups[0];
    assert!(!hot);
    assert!(end > start);
    assert!(rows >= 500, "dump contains the table ({rows} rows)");
    // The backend rejoined and converged.
    let state = cluster.with_middleware(0, |m| m.recovery_state(BackendId(1)));
    assert_eq!(state, "Online");
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1]);
    assert_eq!(sums[0][1], sums[0][2]);
    let m = cluster.client_metrics(c);
    assert!(m.committed >= 2_500);
}

#[test]
fn hot_backup_keeps_replica_serving() {
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 2_000),
        "bench",
    );
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 10_000 }, |cc| {
        cc.think_time_us = 1_000;
        cc.tx_limit = 2_500;
    });
    cluster.admin_at(
        SimTime::from_secs(1),
        0,
        AdminCmd::Backup { backend: BackendId(1), hot: true },
    );
    cluster.run_for(dur::secs(8));
    let mw = cluster.mw_metrics(0);
    assert_eq!(mw.backups.len(), 1);
    assert!(mw.backups[0].2, "hot");
    // No recovery was needed: the backend never left the cluster.
    let state = cluster.with_middleware(0, |m| m.recovery_state(BackendId(1)));
    assert_eq!(state, "Online");
    assert_eq!(mw.counters.failovers, 0);
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1]);
    let m = cluster.client_metrics(c);
    assert!(m.committed >= 2_500);
}

// ---------------------------------------------------------------------
// §4.2.3 sequences under writeset replication: the counter-skew channel
// ---------------------------------------------------------------------

#[test]
fn sequences_skew_under_writeset_replication() {
    let mut schema = micro::schema("bench", 10);
    schema.push("CREATE SEQUENCE ids START 1".into());
    schema.push("CREATE TABLE tickets (id INT PRIMARY KEY, v INT)".into());
    let cfg = ClusterConfig::new(Mode::MultiMasterWriteset, schema, "bench");
    let mut cluster = Cluster::build(cfg);
    let src = ScriptSource::new(vec![vec![
        "INSERT INTO tickets (id, v) VALUES (nextval('ids'), 1)".into(),
    ]]);
    let c = cluster.add_client(src, |cc| {
        cc.think_time_us = 2_000;
        cc.tx_limit = 30;
    });
    cluster.run_for(dur::secs(4));
    let m = cluster.client_metrics(c);
    assert!(m.committed >= 25, "committed {} ({:?})", m.committed, m.last_error);
    // Row data replicated fine...
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1]);
    assert_eq!(sums[0][1], sums[0][2]);
    // ...but sequence counters only advanced on the delegates that executed
    // NEXTVAL: full checksums (which include counters) disagree — the
    // §4.2.3 divergence channel, waiting to bite after the next failover.
    let full = cluster.backend_full_checksums();
    let all_equal = full[0].windows(2).all(|w| w[0] == w[1]);
    assert!(!all_equal, "expected sequence counter skew: {full:?}");
}

// ---------------------------------------------------------------------
// §4.2.1 stored procedures under statement replication
// ---------------------------------------------------------------------

#[test]
fn deterministic_procedure_broadcasts_nondeterministic_diverges() {
    let mk_schema = |body: &str| {
        let mut s = micro::schema("bench", 20);
        s.push(format!("CREATE PROCEDURE bump(k2) AS BEGIN {body}; END"));
        s
    };
    // Deterministic body: replicas converge.
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        mk_schema("UPDATE bench SET v = v + 1 WHERE k = k2"),
        "bench",
    );
    let mut cluster = Cluster::build(cfg);
    let src = ScriptSource::new(vec![vec!["CALL bump(3)".into()]]);
    let c = cluster.add_client(src, |cc| {
        cc.tx_limit = 10;
        cc.think_time_us = 2_000;
    });
    cluster.run_for(dur::secs(3));
    let m = cluster.client_metrics(c);
    assert_eq!(m.committed, 10, "({:?})", m.last_error);
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1]);
    assert_eq!(sums[0][1], sums[0][2]);

    // Non-deterministic body: the middleware cannot see inside the CALL
    // (§4.2.1: "no schema describing the behavior of a stored procedure"),
    // broadcasts it, and the replicas silently diverge.
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        mk_schema("UPDATE bench SET v = floor(rand() * 1000) WHERE k = k2"),
        "bench",
    );
    let mut cluster = Cluster::build(cfg);
    let src = ScriptSource::new(vec![vec!["CALL bump(3)".into()]]);
    let c = cluster.add_client(src, |cc| {
        cc.tx_limit = 5;
        cc.think_time_us = 2_000;
    });
    cluster.run_for(dur::secs(3));
    assert!(cluster.client_metrics(c).committed >= 5);
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(
        flat.windows(2).any(|w| w[0] != w[1]),
        "nondeterministic procedure must diverge replicas"
    );
}
