//! Cluster-level property tests: convergence and exactly-once guarantees
//! hold across randomized workloads, seeds, and fault timings. Runs on the
//! in-tree `detcheck` harness (seeded cases; failures name the reproducing
//! case seed — see crates/det).

use replimid_core::{Cluster, ClusterConfig, Mode, NondetPolicy, ScriptSource, TxSource};
use replimid_det::{detcheck, DetRng};
use replimid_simnet::{dur, SimTime};
use replimid_workload::micro;

struct SeqInsert {
    next: i64,
}

impl TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO bench VALUES ({k}, 1)")]
    }
}

/// Statement-based multi-master converges for any seed and client count
/// under a safe rewrite policy.
fn check_statement_replication_converges(seed: u64, clients: usize, backends: usize) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 100),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = backends;
    let mut cluster = Cluster::build(cfg);
    let mut handles = Vec::new();
    for i in 0..clients {
        handles.push(cluster.add_client(SeqInsert { next: 10_000 * (i as i64 + 1) }, |cc| {
            cc.think_time_us = 700;
            cc.tx_limit = 150;
        }));
    }
    cluster.run_for(dur::secs(4));
    cluster.run_for(dur::secs(1)); // drain
    let committed: u64 = handles.iter().map(|&h| cluster.client_metrics(h).committed).sum();
    assert!(committed >= 100 * clients as u64, "committed {committed}");
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(flat.windows(2).all(|w| w[0] == w[1]), "diverged: {sums:?}");
}

#[test]
fn statement_replication_always_converges() {
    detcheck::check("statement_replication_always_converges", 8, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let clients = rng.gen_range(1usize..4);
        let backends = rng.gen_range(2usize..4);
        check_statement_replication_converges(seed, clients, backends);
    });
}

/// Regression preserved from the proptest era
/// (tests/properties.proptest-regressions, case a413ef28…): seed 36 with
/// 3 clients against 2 backends once diverged.
#[test]
fn regression_statement_replication_seed_36_3_clients_2_backends() {
    check_statement_replication_converges(36, 3, 2);
}

/// Writeset certification never loses or duplicates an increment, even
/// under contention: final counter == total committed increments.
fn check_certification_exactly_once(seed: u64, contenders: usize) {
    let mut cfg =
        ClusterConfig::new(Mode::MultiMasterWriteset, micro::schema("bench", 4), "bench");
    cfg.seed = seed;
    let mut cluster = Cluster::build(cfg);
    let mut handles = Vec::new();
    for _ in 0..contenders {
        handles.push(cluster.add_client(
            ScriptSource::new(vec![vec![
                "BEGIN ISOLATION LEVEL SNAPSHOT".into(),
                "UPDATE bench SET v = v + 1 WHERE k = 0".into(),
                "COMMIT".into(),
            ]]),
            |cc| {
                cc.think_time_us = 900;
                cc.tx_limit = 60;
                cc.max_retries = 50;
            },
        ));
    }
    cluster.run_for(dur::secs(6));
    cluster.run_for(dur::secs(1));
    let committed: u64 = handles.iter().map(|&h| cluster.client_metrics(h).committed).sum();
    assert!(committed > 0);
    let v = cluster.with_backend_engine(0, 0, |e| {
        let conn = e.connect("admin", "admin").unwrap();
        e.execute(conn, "USE bench").unwrap();
        e.execute(conn, "SELECT v FROM bench WHERE k = 0")
            .unwrap()
            .outcome
            .rows()
            .unwrap()
            .rows[0][0]
            .as_int()
            .unwrap()
    });
    assert_eq!(v as u64, committed, "lost or duplicated increments");
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(flat.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn certification_is_exactly_once() {
    detcheck::check("certification_is_exactly_once", 8, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let contenders = rng.gen_range(2usize..5);
        check_certification_exactly_once(seed, contenders);
    });
}

/// Regression preserved from the proptest era
/// (tests/properties.proptest-regressions, case 340ca626…): seed 301 with
/// 4 contenders once lost an increment.
#[test]
fn regression_certification_seed_301_4_contenders() {
    check_certification_exactly_once(301, 4);
}

/// A crash/restart at a random time never prevents convergence: the
/// rejoined replica always matches the survivors after recovery.
fn check_crash_recovery_converges(seed: u64, crash_ms: u64, down_ms: u64, victim: usize) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 50),
        "bench",
    );
    cfg.seed = seed;
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 1_000 }, |cc| {
        cc.think_time_us = 800;
        cc.tx_limit = 1_500;
    });
    cluster.crash_backend_at(SimTime::from_millis(crash_ms), 0, victim);
    cluster.restart_backend_at(SimTime::from_millis(crash_ms + down_ms), 0, victim);
    cluster.run_for(dur::secs(7));
    let m = cluster.client_metrics(c);
    assert!(m.committed >= 1_000, "committed {}", m.committed);
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(
        flat.windows(2).all(|w| w[0] == w[1]),
        "diverged after recovery (victim {victim}): {sums:?}"
    );
}

#[test]
fn crash_recovery_always_converges() {
    detcheck::check("crash_recovery_always_converges", 8, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let crash_ms = rng.gen_range(500u64..2_000);
        let down_ms = rng.gen_range(200u64..1_500);
        let victim = rng.gen_range(0usize..3);
        check_crash_recovery_converges(seed, crash_ms, down_ms, victim);
    });
}
