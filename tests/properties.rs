//! Cluster-level property tests: convergence and exactly-once guarantees
//! hold across randomized workloads, seeds, and fault timings. Runs on the
//! in-tree `detcheck` harness (seeded cases; failures name the reproducing
//! case seed — see crates/det).

use replimid_core::{
    AdminCmd, Balancer, ClientMetrics, Cluster, ClusterConfig, Granularity, HealthEvent, Mode,
    MwMetrics, NondetPolicy, Policy, QuarantineConfig, ReadPolicy, ScriptSource, SessionId, Stage,
    TxSource,
};
use replimid_det::{detcheck, DetRng};
use replimid_simnet::{dur, SimTime};
use replimid_workload::micro;

struct SeqInsert {
    next: i64,
}

impl TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO bench VALUES ({k}, 1)")]
    }
}

/// Statement-based multi-master converges for any seed and client count
/// under a safe rewrite policy.
fn check_statement_replication_converges(seed: u64, clients: usize, backends: usize) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 100),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = backends;
    let mut cluster = Cluster::build(cfg);
    let mut handles = Vec::new();
    for i in 0..clients {
        handles.push(cluster.add_client(SeqInsert { next: 10_000 * (i as i64 + 1) }, |cc| {
            cc.think_time_us = 700;
            cc.tx_limit = 150;
        }));
    }
    cluster.run_for(dur::secs(4));
    cluster.run_for(dur::secs(1)); // drain
    let committed: u64 = handles.iter().map(|&h| cluster.client_metrics(h).committed).sum();
    assert!(committed >= 100 * clients as u64, "committed {committed}");
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(flat.windows(2).all(|w| w[0] == w[1]), "diverged: {sums:?}");
}

#[test]
fn statement_replication_always_converges() {
    detcheck::check("statement_replication_always_converges", 8, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let clients = rng.gen_range(1usize..4);
        let backends = rng.gen_range(2usize..4);
        check_statement_replication_converges(seed, clients, backends);
    });
}

/// Regression preserved from the proptest era
/// (tests/properties.proptest-regressions, case a413ef28…): seed 36 with
/// 3 clients against 2 backends once diverged.
#[test]
fn regression_statement_replication_seed_36_3_clients_2_backends() {
    check_statement_replication_converges(36, 3, 2);
}

/// Writeset certification never loses or duplicates an increment, even
/// under contention: final counter == total committed increments.
fn check_certification_exactly_once(seed: u64, contenders: usize) {
    let mut cfg =
        ClusterConfig::new(Mode::MultiMasterWriteset, micro::schema("bench", 4), "bench");
    cfg.seed = seed;
    let mut cluster = Cluster::build(cfg);
    let mut handles = Vec::new();
    for _ in 0..contenders {
        handles.push(cluster.add_client(
            ScriptSource::new(vec![vec![
                "BEGIN ISOLATION LEVEL SNAPSHOT".into(),
                "UPDATE bench SET v = v + 1 WHERE k = 0".into(),
                "COMMIT".into(),
            ]]),
            |cc| {
                cc.think_time_us = 900;
                cc.tx_limit = 60;
                cc.max_retries = 50;
            },
        ));
    }
    cluster.run_for(dur::secs(6));
    cluster.run_for(dur::secs(1));
    let committed: u64 = handles.iter().map(|&h| cluster.client_metrics(h).committed).sum();
    assert!(committed > 0);
    let v = cluster.with_backend_engine(0, 0, |e| {
        let conn = e.connect("admin", "admin").unwrap();
        e.execute(conn, "USE bench").unwrap();
        e.execute(conn, "SELECT v FROM bench WHERE k = 0")
            .unwrap()
            .outcome
            .rows()
            .unwrap()
            .rows[0][0]
            .as_int()
            .unwrap()
    });
    assert_eq!(v as u64, committed, "lost or duplicated increments");
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(flat.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn certification_is_exactly_once() {
    detcheck::check("certification_is_exactly_once", 8, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let contenders = rng.gen_range(2usize..5);
        check_certification_exactly_once(seed, contenders);
    });
}

/// Regression preserved from the proptest era
/// (tests/properties.proptest-regressions, case 340ca626…): seed 301 with
/// 4 contenders once lost an increment.
#[test]
fn regression_certification_seed_301_4_contenders() {
    check_certification_exactly_once(301, 4);
}

/// A crash/restart at a random time never prevents convergence: the
/// rejoined replica always matches the survivors after recovery.
fn check_crash_recovery_converges(seed: u64, crash_ms: u64, down_ms: u64, victim: usize) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 50),
        "bench",
    );
    cfg.seed = seed;
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 1_000 }, |cc| {
        cc.think_time_us = 800;
        cc.tx_limit = 1_500;
    });
    cluster.crash_backend_at(SimTime::from_millis(crash_ms), 0, victim);
    cluster.restart_backend_at(SimTime::from_millis(crash_ms + down_ms), 0, victim);
    cluster.run_for(dur::secs(7));
    let m = cluster.client_metrics(c);
    assert!(m.committed >= 1_000, "committed {}", m.committed);
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(
        flat.windows(2).all(|w| w[0] == w[1]),
        "diverged after recovery (victim {victim}): {sums:?}"
    );
}

#[test]
fn crash_recovery_always_converges() {
    detcheck::check("crash_recovery_always_converges", 8, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let crash_ms = rng.gen_range(500u64..2_000);
        let down_ms = rng.gen_range(200u64..1_500);
        let victim = rng.gen_range(0usize..3);
        check_crash_recovery_converges(seed, crash_ms, down_ms, victim);
    });
}

/// Clean (fault-free) statement-replication run used by the tracing
/// reconciliation property: no retries, so every latency sample has
/// exactly one trace window behind it.
fn run_trace_case(seed: u64, clients: usize, backends: usize) -> (Vec<ClientMetrics>, MwMetrics) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 100),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = backends;
    let mut cluster = Cluster::build(cfg);
    let mut handles = Vec::new();
    for i in 0..clients {
        handles.push(cluster.add_client(SeqInsert { next: 20_000 * (i as i64 + 1) }, |cc| {
            cc.think_time_us = 700;
            cc.tx_limit = 120;
        }));
    }
    cluster.run_for(dur::secs(4));
    cluster.run_for(dur::secs(1)); // drain
    let cms: Vec<ClientMetrics> = handles.iter().map(|&h| cluster.client_metrics(h)).collect();
    (cms, cluster.mw_metrics(0))
}

/// Latency attribution is exact, complete, and deterministic:
///
/// 1. every completed trace's per-stage spans tile its end-to-end window
///    with zero time in `Stage::Other` (no lost or double-counted time);
/// 2. client traces correspond 1:1 with committed transactions and sum to
///    the `tx_latency` histogram exactly;
/// 3. middleware trace windows correspond 1:1 with read/write latency
///    samples and sum to those histograms exactly;
/// 4. two same-seed runs produce bit-identical trace histories.
#[test]
fn traces_tile_and_reconcile_with_latency_histograms() {
    detcheck::check("traces_tile_and_reconcile_with_latency_histograms", 4, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let clients = rng.gen_range(1usize..4);
        let backends = rng.gen_range(2usize..4);
        let (cms, mw) = run_trace_case(seed, clients, backends);

        let other = Stage::Other.idx();
        for cm in &cms {
            assert_eq!(cm.trace.open_count(), 0, "client left a trace open");
            let mut sum = 0u64;
            let mut n = 0u64;
            for t in cm.trace.completed() {
                assert_eq!(
                    t.stage_us.iter().sum::<u64>(),
                    t.duration_us(),
                    "spans must tile the trace exactly"
                );
                assert_eq!(t.stage_us[other], 0, "unattributed client time");
                sum += t.duration_us();
                n += 1;
            }
            assert_eq!(n, cm.committed, "one completed trace per committed transaction");
            assert_eq!(sum, cm.tx_latency.sum_us(), "client trace time != tx latency");
        }

        assert_eq!(mw.trace.open_count(), 0, "middleware left a trace open");
        assert_eq!(mw.trace.dropped, 0);
        let mut sum = 0u64;
        for t in mw.trace.completed() {
            assert_eq!(t.stage_us.iter().sum::<u64>(), t.duration_us());
            assert_eq!(t.stage_us[other], 0, "unattributed middleware time");
            sum += t.duration_us();
        }
        assert_eq!(
            mw.trace.completed_count,
            mw.read_latency.count() + mw.write_latency.count(),
            "latency samples and trace windows must correspond 1:1"
        );
        assert_eq!(
            sum,
            mw.read_latency.sum_us() + mw.write_latency.sum_us(),
            "middleware trace time != recorded latency"
        );

        let (cms2, mw2) = run_trace_case(seed, clients, backends);
        let a: Vec<_> = mw.trace.completed().cloned().collect();
        let b: Vec<_> = mw2.trace.completed().cloned().collect();
        assert_eq!(a, b, "same seed produced different middleware traces");
        for (x, y) in cms.iter().zip(&cms2) {
            let xa: Vec<_> = x.trace.completed().cloned().collect();
            let ya: Vec<_> = y.trace.completed().cloned().collect();
            assert_eq!(xa, ya, "same seed produced different client traces");
        }
    });
}

/// One run of the group-commit comparison harness: disjoint-key inserts on
/// statement-based multi-master, with a bounded per-client transaction
/// allotment so both arms finish everything well inside the run window.
fn run_batch_case(
    seed: u64,
    clients: usize,
    batch_max: usize,
    deadline_us: u64,
) -> (Vec<ClientMetrics>, MwMetrics, Vec<Vec<u64>>) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 100),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = 3;
    cfg.mw.batch_max = batch_max;
    cfg.mw.batch_deadline_us = deadline_us;
    let mut cluster = Cluster::build(cfg);
    let mut handles = Vec::new();
    for i in 0..clients {
        handles.push(cluster.add_client(SeqInsert { next: 20_000 * (i as i64 + 1) }, |cc| {
            cc.think_time_us = 500;
            cc.tx_limit = 60;
        }));
    }
    cluster.run_for(dur::secs(4));
    cluster.run_for(dur::secs(1)); // drain
    let cms: Vec<ClientMetrics> = handles.iter().map(|&h| cluster.client_metrics(h)).collect();
    let sums = cluster.backend_checksums();
    (cms, cluster.mw_metrics(0), sums)
}

/// Group-commit batching is an optimization, not a semantic change: for the
/// same seed, `batch_max = 1` and `batch_max = N` commit every client's full
/// allotment, expose identical abort sets, and converge every backend to the
/// *same* final state as each other AND as the unbatched arm. Trace tiling
/// stays exact in both arms (`Stage::Other == 0`, with `BatchWait` absent
/// from the control arm), and each arm reruns bit-identically.
#[test]
fn group_commit_batching_preserves_outcomes() {
    detcheck::check("group_commit_batching_preserves_outcomes", 4, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let clients = rng.gen_range(2usize..5);
        let batch_max = rng.gen_range(2usize..17);
        let deadline_us = rng.gen_range(100u64..1500);
        let (c1, m1, s1) = run_batch_case(seed, clients, 1, 200);
        let (cb, mb, sb) = run_batch_case(seed, clients, batch_max, deadline_us);

        // Both arms complete the whole workload, abort-free (disjoint keys).
        for (cm, label) in c1.iter().map(|c| (c, "batch=1")).chain(cb.iter().map(|c| (c, "batched"))) {
            assert_eq!(cm.committed, 60, "{label}: incomplete allotment");
            assert_eq!(cm.aborted, 0, "{label}: unexpected aborts");
            assert_eq!(cm.failed, 0, "{label}: failed transactions");
        }

        // Convergence within each arm, and the same state across arms.
        let flat1: Vec<u64> = s1.iter().flatten().copied().collect();
        let flatb: Vec<u64> = sb.iter().flatten().copied().collect();
        assert!(flat1.windows(2).all(|w| w[0] == w[1]), "batch=1 diverged: {s1:?}");
        assert!(flatb.windows(2).all(|w| w[0] == w[1]), "batched diverged: {sb:?}");
        assert_eq!(flat1[0], flatb[0], "batched arm reached a different final state");

        // Batching is observable exactly when enabled, and every flush is
        // accounted to a reason.
        assert_eq!(m1.batch_sizes.count(), 0, "control arm flushed batches");
        assert_eq!(m1.counters.batch_flush_size + m1.counters.batch_flush_deadline, 0);
        assert!(mb.batch_sizes.count() > 0, "batched arm never flushed");
        assert_eq!(
            mb.counters.batch_flush_size + mb.counters.batch_flush_deadline,
            mb.batch_sizes.count(),
            "flush-reason counters must partition the flushes"
        );
        // Every admitted write passed through exactly one flush.
        assert_eq!(mb.batch_sizes.sum_us(), mb.counters.writes, "events batched != writes admitted");

        // Trace tiling stays exact in both arms.
        let other = Stage::Other.idx();
        let bw = Stage::BatchWait.idx();
        for (mw, label) in [(&m1, "batch=1"), (&mb, "batched")] {
            assert_eq!(mw.trace.open_count(), 0, "{label}: trace left open");
            for t in mw.trace.completed() {
                assert_eq!(t.stage_us.iter().sum::<u64>(), t.duration_us(), "{label}: spans must tile");
                assert_eq!(t.stage_us[other], 0, "{label}: unattributed time");
            }
        }
        assert!(
            m1.trace.completed().all(|t| t.stage_us[bw] == 0),
            "control arm recorded batch-wait time"
        );
        assert!(
            mb.trace.completed().any(|t| t.stage_us[bw] > 0),
            "batched arm recorded no batch-wait time"
        );

        // Each arm reruns bit-identically (timers and buffering included).
        let (c1r, m1r, s1r) = run_batch_case(seed, clients, 1, 200);
        let (cbr, mbr, sbr) = run_batch_case(seed, clients, batch_max, deadline_us);
        assert_eq!(s1, s1r, "batch=1 rerun diverged");
        assert_eq!(sb, sbr, "batched rerun diverged");
        let t1: Vec<_> = m1.trace.completed().cloned().collect();
        let t1r: Vec<_> = m1r.trace.completed().cloned().collect();
        let tb: Vec<_> = mb.trace.completed().cloned().collect();
        let tbr: Vec<_> = mbr.trace.completed().cloned().collect();
        assert_eq!(t1, t1r, "batch=1 rerun traces differ");
        assert_eq!(tb, tbr, "batched rerun traces differ");
        for (x, y) in c1.iter().zip(&c1r).chain(cb.iter().zip(&cbr)) {
            assert_eq!(x.committed, y.committed);
            assert_eq!(x.aborted, y.aborted);
        }
    });
}

/// Scan-only readers: service time dominates the scored latency, so a
/// brownout factor of f shows up as roughly f x the healthy latency
/// (point reads are network-dominated and can hide a mild brownout from
/// the EWMA entirely).
struct Scans;

impl TxSource for Scans {
    fn next_tx(&mut self, _rng: &mut DetRng) -> Vec<String> {
        vec!["SELECT COUNT(v) FROM bench".into()]
    }
}

/// Brownout on backend 1 from t=1s to t=3s, quarantine enabled, read-only
/// clients. Returns the middleware metrics snapshot at t=6s.
fn run_quarantine_case(seed: u64, clients: usize, factor: f64) -> MwMetrics {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 800),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = 3;
    // Round-robin so the victim keeps receiving reads while browned: the
    // least-pending balancer would starve it of the very completions the
    // health score needs to trip.
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.quarantine = Some(QuarantineConfig::default());
    let mut cluster = Cluster::build(cfg);
    for _ in 0..clients {
        cluster.add_client(Scans, |cc| {
            cc.think_time_us = 700;
        });
    }
    cluster.brownout_backend_at(SimTime::from_millis(1_000), 0, 1, factor);
    cluster.clear_brownout_at(SimTime::from_millis(3_000), 0, 1);
    cluster.run_for(dur::secs(5));
    cluster.mw_metrics(0)
}

/// Gray-failure quarantine invariants, for any seed / client count /
/// brownout severity:
///
/// 1. while a backend is quarantined, reads are never routed to it
///    (beyond the single designated half-open probe);
/// 2. once the brownout clears, the victim is eventually probed and
///    rejoins read routing;
/// 3. the whole quarantine history is deterministic — two runs with the
///    same seed produce identical event logs.
#[test]
fn quarantine_shields_reads_and_rejoins() {
    detcheck::check("quarantine_shields_reads_and_rejoins", 4, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let clients = rng.gen_range(2usize..5);
        let factor = 8.0 + rng.gen_range(0u64..7) as f64;
        let a = run_quarantine_case(seed, clients, factor);
        assert_eq!(
            a.counters.reads_routed_to_quarantined, 0,
            "reads leaked to a quarantined backend"
        );
        assert!(
            a.quarantine_events
                .iter()
                .any(|&(_, b, e)| b == 1 && matches!(e, HealthEvent::Trip { .. })),
            "brownout never tripped the breaker: {:?}",
            a.quarantine_events
        );
        // The victim is always probed back in eventually: the run ends
        // 2s after the brownout clears, and each quarantine dwell is only
        // 500ms, so the last word on backend 1 must be a rejoin. (It may
        // also have rejoined mid-brownout and re-tripped — flapping is
        // allowed, ending the run quarantined is not.)
        let last = a.quarantine_events.iter().rfind(|&&(_, b, _)| b == 1);
        assert!(
            matches!(last, Some((_, _, HealthEvent::Rejoin))),
            "victim did not end the run rejoined: {:?}",
            a.quarantine_events
        );
        assert!(
            a.quarantine_events
                .iter()
                .any(|&(_, b, e)| b == 1 && e == HealthEvent::ProbeStart),
            "victim was never probed: {:?}",
            a.quarantine_events
        );
        let b = run_quarantine_case(seed, clients, factor);
        assert_eq!(a.quarantine_events, b.quarantine_events, "same seed, different history");
        assert_eq!(a.counters.commits, b.counters.commits);
    });
}

/// One freshness-routing run: a session fleet mixing reads and writes on
/// slot-private keys against master-slave replication with lazy shipping,
/// a mid-run brownout gray fault on slave 1, and the quarantine breaker
/// armed. Returns (fleet metrics, middleware metrics).
fn run_ryw_case(
    seed: u64,
    sessions: usize,
    policy: ReadPolicy,
    ship_ms: u64,
) -> (replimid_core::FleetMetrics, MwMetrics) {
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: ship_ms * 1_000,
            use_writesets: false,
            parallel_apply: false,
            read_master: false,
        },
        micro::schema("bench", sessions),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = 3;
    // Round-robin keeps the browned slave in rotation so the health score
    // sees its degradation (same reasoning as run_quarantine_case).
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.read_policy = policy;
    cfg.mw.quarantine = Some(QuarantineConfig::default());
    let mut cluster = Cluster::build(cfg);
    let fleet = cluster.add_session_fleet(0, sessions, |fc| {
        // Sized so the surviving slave absorbs the browned one's share
        // without its own queueing delay crossing the breaker's 4x relative
        // trip bar: the episode must stay a b1 story, not a capacity
        // cascade that quarantines the whole cluster.
        fc.think_time_us = 150_000;
        fc.write_permille = 300;
        fc.ramp_us = 300_000;
    });
    // PR 2-style gray episode: slave 1 browns out from 1s to 3s, trips the
    // breaker, and must rejoin after the half-open probe.
    cluster.brownout_backend_at(SimTime::from_millis(1_000), 0, 1, 10.0);
    cluster.clear_brownout_at(SimTime::from_millis(3_000), 0, 1);
    cluster.run_for(dur::secs(5));
    (cluster.fleet_metrics(fleet), cluster.mw_metrics(0))
}

/// Read-your-writes holds under freshness routing for any seed and fleet
/// size, *including* through a gray-failure quarantine/rejoin episode:
///
/// 1. no read ever observes a value older than the session's last
///    acknowledged write (the fleet checks every read against its floor);
/// 2. the freshness filter actually engaged (stale candidates were cut,
///    and at least some reads parked or fell back — 1-safe lazy shipping
///    guarantees lag windows);
/// 3. the breaker tripped on the browned slave, and the same seed reruns
///    bit-identically.
///
/// No `reads_routed_to_quarantined == 0` here, deliberately: when load
/// shifts trip the breaker on *every* slave at once, `filter_quarantined`'s
/// documented escape (a slow answer beats no answer) re-admits quarantined
/// candidates — and the point of this property is that even then no read
/// is ever stale. The leak-free guarantee under a contained episode is
/// `quarantine_shields_reads_and_rejoins`'s job.
#[test]
fn read_your_writes_holds_under_gray_faults() {
    detcheck::check("read_your_writes_holds_under_gray_faults", 3, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let sessions = rng.gen_range(40usize..120);
        let (f, m) = run_ryw_case(seed, sessions, ReadPolicy::Fresh, 200);
        assert!(f.reads > 0, "fleet read nothing");
        assert!(f.writes > 0, "fleet wrote nothing");
        assert_eq!(f.ryw_violations, 0, "stale read under ReadPolicy::Fresh");
        assert!(
            m.counters.fresh_filtered_stale > 0,
            "freshness filter never engaged (lag windows must exist at 200ms shipping)"
        );
        assert!(
            m.counters.freshness_waits + m.counters.fresh_fallback_primary > 0,
            "no read ever parked or fell back — the wait path went unexercised"
        );
        assert!(
            m.quarantine_events
                .iter()
                .any(|&(_, b, e)| b == 1 && matches!(e, HealthEvent::Trip { .. })),
            "the brownout never tripped the breaker: {:?}",
            m.quarantine_events
        );
        // Same seed => bit-identical freshness history.
        let (f2, m2) = run_ryw_case(seed, sessions, ReadPolicy::Fresh, 200);
        assert_eq!(f.reads, f2.reads);
        assert_eq!(f.writes, f2.writes);
        assert_eq!(f.errors, f2.errors);
        assert_eq!(f.read_latency.sum_us(), f2.read_latency.sum_us());
        assert_eq!(m.counters, m2.counters, "same seed, different counters");
        assert_eq!(m.quarantine_events, m2.quarantine_events);
    });
}

/// The control arm: with `ReadPolicy::Any` and slow (500ms) shipping, the
/// same workload observably violates read-your-writes — demonstrating the
/// bug class the freshness vector fixes (and that the RYW check above has
/// teeth).
#[test]
fn freshness_off_allows_stale_reads() {
    let (f, _) = run_ryw_case(7, 60, ReadPolicy::Any, 500);
    assert!(f.reads > 0 && f.writes > 0);
    assert!(
        f.ryw_violations > 0,
        "Any-policy reads off 500ms-lagged slaves should observe stale values"
    );
}

/// Session teardown drains every session-keyed map. Pre-PR, `SessionEnd`
/// removed the session struct but left `request_started` timing metadata
/// and stashed `two_safe_bodies` entries behind forever; both now live
/// inside `Sess` and die with it. N connect/write/disconnect cycles must
/// leave the middleware with zero session residue.
#[test]
fn session_teardown_leaves_no_residue() {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 50),
        "bench",
    );
    cfg.seed = 11;
    let mut cluster = Cluster::build(cfg);
    let clients = 6usize;
    let mut handles = Vec::new();
    for i in 0..clients {
        handles.push(cluster.add_client(SeqInsert { next: 10_000 * (i as i64 + 1) }, |cc| {
            cc.think_time_us = 800;
            cc.tx_limit = 20;
        }));
    }
    cluster.run_for(dur::secs(4)); // every client finishes its allotment
    for (h, _) in handles.iter().zip(0..) {
        let committed = cluster.client_metrics(*h).committed;
        assert_eq!(committed, 20, "client did not finish");
    }
    let before = cluster.with_middleware(0, |m| m.session_count());
    assert_eq!(before, clients, "one session per client while connected");
    // Disconnect every session (ordered teardown through the total order).
    let now = cluster.now();
    for s in 1..=clients as u64 {
        cluster.admin_at(now, 0, AdminCmd::EndSession { session: SessionId(s) });
    }
    cluster.run_for(dur::secs(1));
    let residue = cluster.with_middleware(0, |m| m.session_residue());
    assert_eq!(residue, (0, 0, 0), "session-keyed state leaked past teardown");
    assert_eq!(cluster.with_middleware(0, |m| m.fresh_waiter_count()), 0);
}

/// Balancer fairness survives per-call candidate filtering (the freshness
/// cut hands `pick` a different subset on almost every call): for random
/// backend counts and eligibility patterns, picks always land on eligible
/// backends and nobody starves. Round-robin additionally keeps pick counts
/// within a 2x min/max bound — its stable-id cursor is rotation-fair no
/// matter how the mask churns. LPRF is exempt from the rotation bound on
/// purpose: it equalizes queue depth, not pick counts, and its
/// deterministic low-id tie-break skews rotation at light load.
#[test]
fn filtered_pick_fairness_bounded() {
    detcheck::check("filtered_pick_fairness_bounded", 6, |rng| {
        let n = rng.gen_range(3usize..6);
        let rotation_bound = rng.gen_range(0u64..2) == 0;
        let policy = if rotation_bound { Policy::RoundRobin } else { Policy::Lprf };
        let mut b = Balancer::new(Granularity::Query, policy, n);
        let all: Vec<_> = (0..n).map(replimid_core::BackendId).collect();
        let mut counts = vec![0u64; n];
        let mut inflight: Vec<replimid_core::BackendId> = Vec::new();
        for _ in 0..3_000 {
            let mut mask = vec![false; n];
            loop {
                for m in mask.iter_mut() {
                    *m = rng.gen_range(0u64..4) != 0; // eligible with p = 3/4
                }
                if mask.iter().any(|&m| m) {
                    break;
                }
            }
            let picked = b.pick_fresh(&all, &mask).expect("nonempty mask");
            assert!(mask[picked.0], "picked an ineligible backend");
            counts[picked.0] += 1;
            b.dispatched(picked);
            inflight.push(picked);
            if inflight.len() > 2 {
                b.completed(inflight.remove(0));
            }
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 0, "a backend was starved: {counts:?}");
        if rotation_bound {
            assert!(max <= 2 * min, "filtered-pick skew out of bounds: {counts:?}");
        }
    });
}

/// Point-statement workload for the plan-cache comparison: every statement
/// is one of two shapes (point INSERT, point SELECT), so a warm cache hits
/// on nearly everything while the literals differ on every request.
struct PointMix {
    next: i64,
}

impl TxSource for PointMix {
    fn next_tx(&mut self, _rng: &mut DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        if k % 3 == 0 {
            vec![format!("SELECT v FROM bench WHERE k = {}", k % 100)]
        } else {
            vec![format!("INSERT INTO bench VALUES ({k}, 1)")]
        }
    }
}

/// One run of the plan-cache comparison harness: statement-based
/// multi-master, disjoint-key point statements, `plan_cache` templates of
/// middleware cache (0 = off, the pre-cache byte path).
fn run_plan_cache_case(
    seed: u64,
    clients: usize,
    plan_cache: usize,
) -> (Vec<ClientMetrics>, MwMetrics, Vec<Vec<u64>>) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 100),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = 3;
    cfg.mw.plan_cache = plan_cache;
    let mut cluster = Cluster::build(cfg);
    let mut handles = Vec::new();
    for i in 0..clients {
        handles.push(cluster.add_client(PointMix { next: 20_000 * (i as i64 + 1) }, |cc| {
            cc.think_time_us = 500;
            cc.tx_limit = 60;
        }));
    }
    cluster.run_for(dur::secs(4));
    cluster.run_for(dur::secs(1)); // drain
    let cms: Vec<ClientMetrics> = handles.iter().map(|&h| cluster.client_metrics(h)).collect();
    let sums = cluster.backend_checksums();
    (cms, cluster.mw_metrics(0), sums)
}

/// The plan cache (and the parsed-statement wire format it turns on) is an
/// optimization, not a semantic change: for the same seed, cache-off and
/// cache-on commit the same transactions, expose identical abort sets, and
/// converge every backend to the same final state as each other AND as the
/// uncached arm. The cache-on arm actually hits (the workload is two
/// templates), the cache-off arm never consults the cache, trace tiling
/// stays exact in both arms, and each arm reruns bit-identically.
#[test]
fn plan_cache_preserves_outcomes() {
    detcheck::check("plan_cache_preserves_outcomes", 4, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let clients = rng.gen_range(2usize..5);
        let cache = rng.gen_range(2usize..65);
        let (c0, m0, s0) = run_plan_cache_case(seed, clients, 0);
        let (cc, mc, sc) = run_plan_cache_case(seed, clients, cache);

        // Both arms complete the whole workload identically.
        for (a, b) in c0.iter().zip(&cc) {
            assert_eq!(a.committed, b.committed, "cache changed commit count");
            assert_eq!(a.aborted, b.aborted, "cache changed abort count");
            assert_eq!(a.failed, b.failed, "cache changed failure count");
            assert_eq!(a.committed, 60, "incomplete allotment");
        }

        // Convergence within each arm, and the same state across arms.
        let flat0: Vec<u64> = s0.iter().flatten().copied().collect();
        let flatc: Vec<u64> = sc.iter().flatten().copied().collect();
        assert!(flat0.windows(2).all(|w| w[0] == w[1]), "cache-off diverged: {s0:?}");
        assert!(flatc.windows(2).all(|w| w[0] == w[1]), "cache-on diverged: {sc:?}");
        assert_eq!(flat0[0], flatc[0], "cache-on arm reached a different final state");

        // The cache is observable exactly when enabled.
        assert_eq!(m0.counters.plan_cache_hits, 0, "cache-off arm recorded hits");
        assert_eq!(m0.counters.plan_cache_misses, 0, "cache-off arm recorded misses");
        assert!(mc.counters.plan_cache_hits > 0, "cache-on arm never hit");
        assert!(
            mc.counters.plan_cache_hits > mc.counters.plan_cache_misses,
            "two-template workload must be hit-dominated: {} hits / {} misses",
            mc.counters.plan_cache_hits,
            mc.counters.plan_cache_misses
        );

        // Trace tiling stays exact in both arms.
        let other = Stage::Other.idx();
        for (mw, label) in [(&m0, "cache-off"), (&mc, "cache-on")] {
            assert_eq!(mw.trace.open_count(), 0, "{label}: trace left open");
            for t in mw.trace.completed() {
                assert_eq!(t.stage_us.iter().sum::<u64>(), t.duration_us(), "{label}: spans must tile");
                assert_eq!(t.stage_us[other], 0, "{label}: unattributed time");
            }
        }

        // Each arm reruns bit-identically.
        let (c0r, m0r, s0r) = run_plan_cache_case(seed, clients, 0);
        let (ccr, mcr, scr) = run_plan_cache_case(seed, clients, cache);
        assert_eq!(s0, s0r, "cache-off rerun diverged");
        assert_eq!(sc, scr, "cache-on rerun diverged");
        assert_eq!(m0.counters, m0r.counters, "cache-off rerun counters differ");
        assert_eq!(mc.counters, mcr.counters, "cache-on rerun counters differ");
        let t0: Vec<_> = m0.trace.completed().cloned().collect();
        let t0r: Vec<_> = m0r.trace.completed().cloned().collect();
        let tc: Vec<_> = mc.trace.completed().cloned().collect();
        let tcr: Vec<_> = mcr.trace.completed().cloned().collect();
        assert_eq!(t0, t0r, "cache-off rerun traces differ");
        assert_eq!(tc, tcr, "cache-on rerun traces differ");
        for (x, y) in c0.iter().zip(&c0r).chain(cc.iter().zip(&ccr)) {
            assert_eq!(x.committed, y.committed);
            assert_eq!(x.aborted, y.aborted);
        }
    });
}

/// One monotonic-reads run: like [`run_ryw_case`] but with the master in
/// the read rotation (`read_master: true`). That is the configuration
/// where going backwards actually happens: lockstep shipping keeps the
/// slaves within network jitter of each other, but the master runs up to a
/// full ship interval ahead, so `Any` routing alternating master/slave
/// serves a session fresh state and then an older one. No fault injection
/// — the anomaly is pure routing, no failure required.
fn run_monotonic_case(
    seed: u64,
    sessions: usize,
    policy: ReadPolicy,
    ship_ms: u64,
) -> (replimid_core::FleetMetrics, MwMetrics) {
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: ship_ms * 1_000,
            use_writesets: false,
            parallel_apply: false,
            read_master: true,
        },
        micro::schema("bench", sessions),
        "bench",
    );
    cfg.seed = seed;
    cfg.backends_per_mw = 3;
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.read_policy = policy;
    let mut cluster = Cluster::build(cfg);
    let fleet = cluster.add_session_fleet(0, sessions, |fc| {
        fc.think_time_us = 150_000;
        fc.write_permille = 300;
        fc.ramp_us = 300_000;
        // Half the slots are pure observers of their neighbor's key: no
        // writes of their own, so the RYW stamp never constrains them and
        // only the session read floor can keep their view monotone. This
        // is what separates MonotonicReads from Fresh (Fresh is vacuous
        // for a session that never writes).
        fc.observer_every = 2;
    });
    cluster.run_for(dur::secs(5));
    (cluster.fleet_metrics(fleet), cluster.mw_metrics(0))
}

/// Monotonic reads as a session guarantee: under
/// `ReadPolicy::MonotonicReads` a session's reads never go backwards in
/// time, for any seed and fleet size, with the master mixed into the read
/// rotation (the configuration where `Any` observably goes backwards —
/// the control below proves the checker has teeth). The session read floor
/// also covers the RYW stamp, so RYW holds too.
#[test]
fn monotonic_reads_never_go_backwards() {
    detcheck::check("monotonic_reads_never_go_backwards", 3, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let sessions = rng.gen_range(40usize..120);
        let (f, m) = run_monotonic_case(seed, sessions, ReadPolicy::MonotonicReads, 500);
        assert!(f.reads > 0, "fleet read nothing");
        assert!(f.writes > 0, "fleet wrote nothing");
        assert_eq!(f.monotonic_violations, 0, "read went backwards under MonotonicReads");
        assert_eq!(f.ryw_violations, 0, "MonotonicReads also folds in the RYW stamp");
        // Same seed => bit-identical history.
        let (f2, m2) = run_monotonic_case(seed, sessions, ReadPolicy::MonotonicReads, 500);
        assert_eq!(f.reads, f2.reads);
        assert_eq!(f.monotonic_violations, f2.monotonic_violations);
        assert_eq!(m.counters, m2.counters, "same seed, different counters");
    });
}

/// Control arm for the monotonic checker: `Any` routing over a rotation
/// mixing the master with 500ms-lagged slaves serves a session state older
/// than what it already saw.
#[test]
fn any_policy_allows_non_monotonic_reads() {
    let (f, _) = run_monotonic_case(7, 60, ReadPolicy::Any, 500);
    assert!(f.reads > 0 && f.writes > 0);
    assert!(
        f.monotonic_violations > 0,
        "Any-policy master/slave rotation should go backwards"
    );
}

/// The open-loop driver is deterministic end to end: for any seed, rate,
/// mix, and admission bounds, two same-seed runs produce a bit-identical
/// arrival stream, outcome accounting, per-second series, acknowledged
/// write set, and middleware counters — the property the E23 elasticity
/// tables (and verify.sh's byte-identity gate) stand on.
#[test]
fn open_loop_driver_is_deterministic() {
    use replimid_workload::openloop::{
        add_open_loop, open_loop_metrics, ArrivalProcess, OpenLoopConfig, OpenLoopMetrics,
    };
    fn run_case(
        seed: u64,
        arrivals: ArrivalProcess,
        inflight: usize,
        queue: usize,
        permille: u32,
    ) -> (OpenLoopMetrics, MwMetrics) {
        let mut cfg = ClusterConfig::new(
            Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
            micro::schema("bench", 50),
            "bench",
        );
        cfg.backends_per_mw = 3;
        let mut cluster = Cluster::build(cfg);
        let mut olc = OpenLoopConfig::new(arrivals);
        olc.seed = seed;
        olc.max_inflight = inflight;
        olc.queue_max = queue;
        olc.write_permille = permille;
        olc.read_keys = 50;
        olc.stop_at_us = 3_000_000;
        let driver = add_open_loop(&mut cluster, 0, olc);
        cluster.run_for(dur::secs(5));
        (open_loop_metrics(&mut cluster, driver), cluster.mw_metrics(0))
    }
    detcheck::check("open_loop_driver_is_deterministic", 4, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let rate = 100.0 + rng.gen::<f64>() * 700.0;
        let arrivals = if rng.gen_bool(0.5) {
            ArrivalProcess::Poisson { rate_per_sec: rate }
        } else {
            ArrivalProcess::Diurnal {
                base_per_sec: rate * 0.2,
                peak_per_sec: rate,
                period_us: rng.gen_range(1_000_000u64..4_000_000),
            }
        };
        let inflight = rng.gen_range(4usize..64);
        let queue = rng.gen_range(4usize..128);
        let permille = rng.gen_range(0u32..500);
        let (a, ma) = run_case(seed, arrivals, inflight, queue, permille);
        let (b, mb) = run_case(seed, arrivals, inflight, queue, permille);
        assert!(a.arrivals > 0, "arrival clock never ticked");
        assert_eq!(
            a.completed_ok + a.completed_err + a.shed,
            a.arrivals,
            "an arrival has no terminal outcome"
        );
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.dispatched, b.dispatched);
        assert_eq!(a.completed_ok, b.completed_ok);
        assert_eq!(a.completed_err, b.completed_err);
        assert_eq!(a.retries_enqueued, b.retries_enqueued);
        assert_eq!(a.per_sec_arrivals, b.per_sec_arrivals);
        assert_eq!(a.per_sec_completed, b.per_sec_completed);
        assert_eq!(a.per_sec_shed, b.per_sec_shed);
        assert_eq!(a.acked_insert_keys, b.acked_insert_keys);
        assert_eq!(a.sojourn.quantile_us(0.99), b.sojourn.quantile_us(0.99));
        assert_eq!(ma.counters, mb.counters, "same seed, different middleware history");
    });
}
