//! Failover, failback, and partition behaviour (§2.2, §4.3.3, §4.3.4.3).

use replimid_core::{Cluster, ClusterConfig, Mode, NondetPolicy, TxSource};
use replimid_simnet::{dur, SimTime};

struct SeqInsert {
    next: i64,
}

impl TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO items VALUES ({k}, 'x', 1)")]
    }
}

fn schema() -> Vec<String> {
    vec![
        "CREATE DATABASE shop".into(),
        "USE shop".into(),
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT NOT NULL)".into(),
        "INSERT INTO items VALUES (1, 'book', 10)".into(),
    ]
}

fn ms_mode() -> Mode {
    Mode::MasterSlave {
        two_safe: false,
        ship_interval_us: 20_000,
        use_writesets: false,
        parallel_apply: false,
        read_master: true,
    }
}

#[test]
fn hot_standby_failover_promotes_most_caught_up_slave() {
    let mut cfg = ClusterConfig::new(ms_mode(), schema(), "shop");
    cfg.backends_per_mw = 3;
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 100 }, |cc| {
        cc.think_time_us = 1_000;
        cc.request_timeout_us = 300_000;
        cc.tx_limit = 3_500; // quiesce before the convergence check
    });
    // Kill the master at 2s; the middleware detects it via ping timeouts
    // and promotes a slave.
    cluster.crash_backend_at(SimTime::from_secs(2), 0, 0);
    cluster.run_for(dur::secs(6));

    let m = cluster.client_metrics(c);
    assert!(m.committed > 100, "committed {}", m.committed);
    let master = cluster.master_of(0);
    assert_ne!(master.0, 0, "a slave was promoted");

    // Writes continued after the failover.
    let late_commits: u64 = m
        .commits_per_sec
        .iter()
        .filter(|(&sec, _)| sec >= 3)
        .map(|(_, &n)| n)
        .sum();
    assert!(late_commits > 50, "writes resumed after promotion: {late_commits}");

    let mw = cluster.mw_metrics(0);
    assert!(mw.counters.failovers >= 1);
    // Surviving replicas converge once shipping settles.
    cluster.run_for(dur::secs(1));
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][1], sums[0][2], "surviving slaves agree");
}

#[test]
fn multimaster_survives_backend_crash_without_client_failures() {
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema(),
        "shop",
    );
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 1000 }, |cc| {
        cc.think_time_us = 1_000;
    });
    cluster.crash_backend_at(SimTime::from_secs(2), 0, 1);
    cluster.run_for(dur::secs(5));
    let m = cluster.client_metrics(c);
    assert!(m.committed > 100);
    // At most a handful of requests were disturbed by the crash.
    assert!(
        m.failed + m.timeouts <= 3,
        "failed={} timeouts={} ({:?})",
        m.failed,
        m.timeouts,
        m.last_error
    );
    // The two surviving backends stayed consistent.
    cluster.run_for(dur::secs(1));
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][2], "survivors agree");
}

#[test]
fn middleware_failover_is_transparent_to_the_client() {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema(),
        "shop",
    );
    cfg.middlewares = 2;
    cfg.backends_per_mw = 2;
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 5000 }, |cc| {
        cc.think_time_us = 4_000;
        cc.request_timeout_us = 200_000;
        cc.tx_limit = 1_000;
    });
    // The client's home middleware (session 1 -> mw1) dies mid-run.
    cluster.crash_middleware_at(SimTime::from_secs(2), 1);
    cluster.run_for(dur::secs(6));

    let m = cluster.client_metrics(c);
    assert!(m.failovers >= 1, "client failed over");
    assert!(m.committed > 200, "committed {}", m.committed);
    // Transparent failover: retried statements were deduplicated, so every
    // committed insert appears exactly once (no duplicate-key failures).
    assert_eq!(m.failed, 0, "failed={} ({:?})", m.failed, m.last_error);

    // The surviving middleware's backends contain exactly the committed
    // rows.
    cluster.run_for(dur::secs(1));
    let count = cluster.with_backend_engine(0, 0, |e| {
        let conn = e.connect("admin", "admin").unwrap();
        e.execute(conn, "USE shop").unwrap();
        let r = e
            .execute(conn, "SELECT COUNT(*) FROM items WHERE id >= 5000")
            .unwrap();
        r.outcome.rows().unwrap().rows[0][0].as_int().unwrap()
    });
    assert_eq!(count as u64, m.committed, "exactly-once across failover");
}

#[test]
fn split_brain_without_quorum_diverges_with_quorum_stays_safe() {
    let run = |require_majority: bool| {
        let mut cfg = ClusterConfig::new(
            Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
            schema(),
            "shop",
        );
        cfg.middlewares = 3;
        cfg.backends_per_mw = 1;
        cfg.mw.require_majority = require_majority;
        let mut cluster = Cluster::build(cfg);
        let mk = |cluster: &mut Cluster, base: i64| {
            cluster.add_client(SeqInsert { next: base }, |cc| {
                cc.think_time_us = 2_000;
                cc.request_timeout_us = 150_000;
                cc.max_retries = 2;
            })
        };
        let _c0 = mk(&mut cluster, 10_000);
        let _c1 = mk(&mut cluster, 20_000);
        let c2 = mk(&mut cluster, 30_000);
        // Partition middleware 2 (with its backend and client) away from
        // the rest at 1s.
        let minority = vec![
            cluster.db_nodes[2][0],
            cluster.mw_nodes[2],
            cluster.client_nodes[2],
        ];
        let mut majority: Vec<_> = Vec::new();
        for g in &cluster.db_nodes[..2] {
            majority.extend(g.iter().copied());
        }
        majority.extend(cluster.mw_nodes[..2].iter().copied());
        majority.extend(cluster.client_nodes[..2].iter().copied());
        cluster.partition_at(SimTime::from_secs(1), vec![majority, minority]);
        cluster.run_for(dur::secs(6));
        let m2 = cluster.client_metrics(c2);
        let late_minority_commits: u64 = m2
            .commits_per_sec
            .iter()
            .filter(|(&sec, _)| sec >= 3)
            .map(|(_, &n)| n)
            .sum();
        let sums = cluster.backend_checksums();
        (late_minority_commits, sums)
    };

    // Without majority enforcement: both halves keep accepting writes and
    // diverge (§4.3.4.3's nightmare).
    let (minority_commits, sums) = run(false);
    assert!(minority_commits > 0, "without quorum the minority keeps committing");
    assert_ne!(sums[2][0], sums[0][0], "split brain divergence");

    // With quorum: the minority suspends writes; majority stays consistent.
    let (minority_commits, sums) = run(true);
    assert_eq!(minority_commits, 0, "with quorum the minority suspends writes");
    assert_eq!(sums[0][0], sums[1][0], "majority agrees");
}
