//! End-to-end replication scenarios across sql + simnet + gcs + core.

use replimid_core::{
    BackendId, Cluster, ClusterConfig, Mode, NondetPolicy, PartitionScheme, Partitioner,
    ScriptSource,
};
use replimid_simnet::dur;

fn shop_schema() -> Vec<String> {
    vec![
        "CREATE DATABASE shop".into(),
        "USE shop".into(),
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT NOT NULL)".into(),
        "INSERT INTO items VALUES (1, 'book', 10), (2, 'pen', 20), (3, 'mug', 30)".into(),
        "CREATE TABLE log (id INT PRIMARY KEY AUTO_INCREMENT, at TIMESTAMP, note TEXT)".into(),
    ]
}

/// Inserts rows with ever-fresh keys (never collides with itself), with a
/// COUNT read every few transactions.
struct SeqInsert {
    next: i64,
    since_read: u32,
}

impl SeqInsert {
    fn new(key_base: i64) -> Self {
        SeqInsert { next: key_base, since_read: 0 }
    }
}

impl replimid_core::TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        self.since_read += 1;
        if self.since_read.is_multiple_of(5) {
            return vec!["SELECT COUNT(*) FROM items".into()];
        }
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO items VALUES ({k}, 'x', {})", k % 100)]
    }
}

fn updater_script() -> ScriptSource {
    ScriptSource::new(vec![
        vec!["UPDATE items SET qty = qty + 1 WHERE id = 1".into()],
        vec!["SELECT qty FROM items WHERE id = 2".into()],
        vec![
            "BEGIN".into(),
            "UPDATE items SET qty = qty - 1 WHERE id = 2".into(),
            "UPDATE items SET qty = qty + 1 WHERE id = 3".into(),
            "COMMIT".into(),
        ],
    ])
}

fn assert_all_equal(checksums: &[Vec<u64>]) {
    let flat: Vec<u64> = checksums.iter().flatten().copied().collect();
    assert!(
        flat.windows(2).all(|w| w[0] == w[1]),
        "backends diverged: {checksums:?}"
    );
}

fn count_items(cluster: &mut Cluster, mw: usize, b: usize, pred: Option<&str>) -> i64 {
    cluster.with_backend_engine(mw, b, |e| {
        let conn = e.connect("admin", "admin").unwrap();
        e.execute(conn, "USE shop").unwrap();
        let sql = match pred {
            Some(p) => format!("SELECT COUNT(*) FROM items WHERE {p}"),
            None => "SELECT COUNT(*) FROM items".to_string(),
        };
        let r = e.execute(conn, &sql).unwrap();
        let n = r.outcome.rows().unwrap().rows[0][0].as_int().unwrap();
        e.disconnect(conn);
        n
    })
}

// ---------------------------------------------------------------------
// Multi-master, statement-based
// ---------------------------------------------------------------------

#[test]
fn mm_statement_replicates_and_converges() {
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        shop_schema(),
        "shop",
    );
    let mut cluster = Cluster::build(cfg);
    let c1 = cluster.add_client(SeqInsert::new(100), |c| c.think_time_us = 500);
    let c2 = cluster.add_client(updater_script(), |c| c.think_time_us = 700);
    cluster.run_for(dur::secs(5));

    let m1 = cluster.client_metrics(c1);
    let m2 = cluster.client_metrics(c2);
    assert!(m1.committed > 20, "writer committed {}", m1.committed);
    assert!(m2.committed > 20, "updater committed {}", m2.committed);
    assert_eq!(m1.failed + m2.failed, 0, "unexpected failures");
    assert_all_equal(&cluster.backend_checksums());

    // Reads on the insert client were COUNTs; the inserts all landed on
    // every backend.
    let inserted = (m1.committed - m1.committed / 5) as i64; // minus COUNT txs
    let expect = 3 + inserted;
    for b in 0..3 {
        let n = count_items(&mut cluster, 0, b, None);
        assert!((n - expect).abs() <= 1, "backend {b}: {n} vs ~{expect}");
    }
}

#[test]
fn mm_statement_time_macro_rewritten_consistently() {
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        shop_schema(),
        "shop",
    );
    let mut cluster = Cluster::build(cfg);
    let src = ScriptSource::new(vec![vec![
        "INSERT INTO log (at, note) VALUES (now(), 'hello')".into(),
    ]]);
    let c = cluster.add_client(src, |c| {
        c.tx_limit = 10;
        c.think_time_us = 2_000;
    });
    cluster.run_for(dur::secs(3));
    let m = cluster.client_metrics(c);
    assert_eq!(m.committed, 10, "failed={} aborted={}", m.failed, m.aborted);
    assert_all_equal(&cluster.backend_checksums());
    let mw = cluster.mw_metrics(0);
    assert!(mw.counters.rewritten_statements >= 10);
}

#[test]
fn mm_statement_naive_policy_diverges_on_rand() {
    // The §4.3.2 demonstration: per-row RAND broadcast verbatim makes
    // replicas disagree; the safe policy rejects the statement instead.
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::Ignore },
        shop_schema(),
        "shop",
    );
    let mut cluster = Cluster::build(cfg);
    let src =
        ScriptSource::new(vec![vec!["UPDATE items SET qty = floor(rand() * 100)".into()]]);
    let c = cluster.add_client(src, |c| {
        c.tx_limit = 3;
        c.think_time_us = 5_000;
    });
    cluster.run_for(dur::secs(2));
    let m = cluster.client_metrics(c);
    assert!(m.committed >= 1);
    let sums = cluster.backend_checksums();
    let flat: Vec<u64> = sums.iter().flatten().copied().collect();
    assert!(
        flat.windows(2).any(|w| w[0] != w[1]),
        "expected divergence under the naive policy"
    );

    // Safe policy: same statement is rejected, cluster stays consistent.
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        shop_schema(),
        "shop",
    );
    let mut cluster = Cluster::build(cfg);
    let src =
        ScriptSource::new(vec![vec!["UPDATE items SET qty = floor(rand() * 100)".into()]]);
    let c = cluster.add_client(src, |c| {
        c.tx_limit = 3;
        c.think_time_us = 5_000;
    });
    cluster.run_for(dur::secs(2));
    let m = cluster.client_metrics(c);
    assert_eq!(m.committed, 0);
    assert!(m.failed >= 1, "rejected statements fail the transaction");
    assert_all_equal(&cluster.backend_checksums());
    let mw = cluster.mw_metrics(0);
    assert!(mw.counters.rejected_statements >= 1);
}

// ---------------------------------------------------------------------
// Multi-master, writeset-based
// ---------------------------------------------------------------------

#[test]
fn mm_writeset_certification_and_convergence() {
    let cfg = ClusterConfig::new(Mode::MultiMasterWriteset, shop_schema(), "shop");
    let mut cluster = Cluster::build(cfg);
    let mk = || {
        ScriptSource::new(vec![vec![
            "BEGIN ISOLATION LEVEL SNAPSHOT".into(),
            "UPDATE items SET qty = qty + 1 WHERE id = 1".into(),
            "COMMIT".into(),
        ]])
    };
    let c1 = cluster.add_client(mk(), |c| c.think_time_us = 400);
    let c2 = cluster.add_client(mk(), |c| c.think_time_us = 400);
    cluster.run_for(dur::secs(5));
    let m1 = cluster.client_metrics(c1);
    let m2 = cluster.client_metrics(c2);
    let committed = m1.committed + m2.committed;
    assert!(committed > 20, "committed {committed}");
    assert_all_equal(&cluster.backend_checksums());
    // Contending increments must all land exactly once.
    let qty = cluster.with_backend_engine(0, 0, |e| {
        let conn = e.connect("admin", "admin").unwrap();
        e.execute(conn, "USE shop").unwrap();
        let r = e.execute(conn, "SELECT qty FROM items WHERE id = 1").unwrap();
        r.outcome.rows().unwrap().rows[0][0].as_int().unwrap()
    });
    assert_eq!(qty as u64, 10 + committed, "lost or duplicated updates");
}

// ---------------------------------------------------------------------
// Master-slave
// ---------------------------------------------------------------------

#[test]
fn master_slave_one_safe_ships_asynchronously() {
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: 50_000,
            use_writesets: false,
            parallel_apply: false,
            read_master: false,
        },
        shop_schema(),
        "shop",
    );
    cfg.backends_per_mw = 3; // 1 master + 2 slaves
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert::new(200), |c| {
        c.think_time_us = 500;
        c.tx_limit = 500;
    });
    cluster.run_for(dur::secs(3));
    let m = cluster.client_metrics(c);
    assert!(m.committed > 25, "committed {}", m.committed);
    // Shipping catches up once the writer quiesces.
    cluster.run_for(dur::secs(2));
    assert_all_equal(&cluster.backend_checksums());
    let mw = cluster.mw_metrics(0);
    assert!(!mw.lag_samples.is_empty());
}

#[test]
fn master_slave_two_safe_costs_commit_latency() {
    let mk = |two_safe: bool| {
        let mut cfg = ClusterConfig::new(
            Mode::MasterSlave {
                two_safe,
                ship_interval_us: 100_000,
                use_writesets: false,
                parallel_apply: false,
                read_master: true,
            },
            shop_schema(),
            "shop",
        );
        cfg.backends_per_mw = 2;
        let mut cluster = Cluster::build(cfg);
        let c = cluster.add_client(SeqInsert::new(300), |cc| {
            cc.think_time_us = 300;
            cc.tx_limit = 40;
        });
        cluster.run_for(dur::secs(10));
        let m = cluster.client_metrics(c);
        assert!(m.committed >= 40, "committed {}", m.committed);
        m.tx_latency.mean_us()
    };
    let fast = mk(false);
    let slow = mk(true);
    assert!(
        slow > fast * 1.5,
        "2-safe must cost commit latency: 1-safe {fast}us vs 2-safe {slow}us"
    );
}

// ---------------------------------------------------------------------
// Partitioned
// ---------------------------------------------------------------------

#[test]
fn partitioned_writes_route_to_owning_partition() {
    let mut partitioner = Partitioner::new();
    partitioner.add_table(
        "items",
        PartitionScheme::Range { column: "id".into(), bounds: vec![1000] },
    );
    let schema = vec![
        "CREATE DATABASE shop".into(),
        "USE shop".into(),
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT NOT NULL)".into(),
    ];
    let mut cfg = ClusterConfig::new(
        Mode::PartitionedStatement {
            partitioner,
            groups: vec![vec![BackendId(0)], vec![BackendId(1)]],
        },
        schema,
        "shop",
    );
    cfg.backends_per_mw = 2;
    let mut cluster = Cluster::build(cfg);
    let src = ScriptSource::new(vec![
        vec!["INSERT INTO items (id, name, qty) VALUES (10, 'low', 1)".into()],
        vec!["INSERT INTO items (id, name, qty) VALUES (2000, 'high', 1)".into()],
        vec!["SELECT name FROM items WHERE id = 10".into()],
        vec!["SELECT name FROM items WHERE id = 2000".into()],
    ]);
    // The two inserts run once each (ids are primary keys), then reads.
    let c = cluster.add_client(src, |c| {
        c.tx_limit = 4;
        c.think_time_us = 1_000;
    });
    cluster.run_for(dur::secs(3));
    let m = cluster.client_metrics(c);
    assert_eq!(m.committed, 4, "failed={} aborted={}", m.failed, m.aborted);

    assert_eq!(count_items(&mut cluster, 0, 0, Some("id < 1000")), 1);
    assert_eq!(count_items(&mut cluster, 0, 0, Some("id >= 1000")), 0);
    assert_eq!(count_items(&mut cluster, 0, 1, Some("id >= 1000")), 1);
    assert_eq!(count_items(&mut cluster, 0, 1, Some("id < 1000")), 0);
}

// ---------------------------------------------------------------------
// Replicated middleware (Sequoia-style)
// ---------------------------------------------------------------------

#[test]
fn replicated_middleware_keeps_all_sites_consistent() {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        shop_schema(),
        "shop",
    );
    cfg.middlewares = 2;
    cfg.backends_per_mw = 2;
    let mut cluster = Cluster::build(cfg);
    let c1 = cluster.add_client(SeqInsert::new(100_000), |c| {
        c.think_time_us = 600;
        c.tx_limit = 300;
    });
    let c2 = cluster.add_client(SeqInsert::new(200_000), |c| {
        c.think_time_us = 600;
        c.tx_limit = 300;
    });
    cluster.run_for(dur::secs(5));
    let m1 = cluster.client_metrics(c1);
    let m2 = cluster.client_metrics(c2);
    assert!(m1.committed >= 10 && m2.committed >= 10);
    // Quiesce so in-flight fan-outs drain, then check convergence of all
    // four backends across both middlewares.
    cluster.run_for(dur::secs(1));
    assert_all_equal(&cluster.backend_checksums());
}

// ---------------------------------------------------------------------
// Temp tables pin sessions (§4.1.4)
// ---------------------------------------------------------------------

#[test]
fn temp_tables_pin_session_and_do_not_replicate() {
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        shop_schema(),
        "shop",
    );
    let mut cluster = Cluster::build(cfg);
    let src = ScriptSource::new(vec![
        vec![
            "CREATE TEMPORARY TABLE scratch (k INT PRIMARY KEY, v INT)".into(),
            "INSERT INTO scratch VALUES (1, 10)".into(),
            "SELECT v FROM scratch WHERE k = 1".into(),
        ],
        vec!["SELECT v FROM scratch WHERE k = 1".into()],
    ]);
    let c = cluster.add_client(src, |c| {
        c.tx_limit = 2;
        c.think_time_us = 1_000;
    });
    cluster.run_for(dur::secs(3));
    let m = cluster.client_metrics(c);
    assert_eq!(m.committed, 2, "failed={} timeouts={}", m.failed, m.timeouts);
    // Temp tables never replicated; backends stayed consistent.
    assert_all_equal(&cluster.backend_checksums());
}
