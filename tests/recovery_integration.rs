//! Replica rejoin and resynchronization (§4.4.2): recovery-log replay,
//! truncated-log full resync, and the global barrier for the final hop.

use replimid_core::{Cluster, ClusterConfig, Mode, NondetPolicy, TxSource};
use replimid_simnet::{dur, SimTime};

struct SeqInsert {
    next: i64,
}

impl TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO items VALUES ({k}, 'x', 1)")]
    }
}

fn schema() -> Vec<String> {
    vec![
        "CREATE DATABASE shop".into(),
        "USE shop".into(),
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT NOT NULL)".into(),
    ]
}

fn mm_cfg() -> ClusterConfig {
    ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema(),
        "shop",
    )
}

fn row_count(cluster: &mut Cluster, b: usize) -> i64 {
    cluster.with_backend_engine(0, b, |e| {
        let conn = e.connect("admin", "admin").unwrap();
        e.execute(conn, "USE shop").unwrap();
        let r = e.execute(conn, "SELECT COUNT(*) FROM items").unwrap();
        let n = r.outcome.rows().unwrap().rows[0][0].as_int().unwrap();
        e.disconnect(conn);
        n
    })
}

#[test]
fn rejoin_via_recovery_log_replay() {
    let mut cluster = Cluster::build(mm_cfg());
    let c = cluster.add_client(SeqInsert { next: 100 }, |cc| {
        cc.think_time_us = 1_000;
        cc.tx_limit = 2_500;
    });
    // Backend 1 is out between 1s and 2.5s; writes continue throughout.
    cluster.crash_backend_at(SimTime::from_secs(1), 0, 1);
    cluster.restart_backend_at(SimTime::from_millis(2_500), 0, 1);
    cluster.run_for(dur::secs(8));

    let m = cluster.client_metrics(c);
    assert!(m.committed >= 2_000, "committed {}", m.committed);
    // The rejoined replica caught up via log replay: all three agree.
    let state = cluster.with_middleware(0, |mw| {
        mw.recovery_state(replimid_core::BackendId(1))
    });
    assert_eq!(state, "Online", "backend 1 recovered: {state}");
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1], "rejoined replica matches");
    assert_eq!(sums[0][1], sums[0][2]);
    assert_eq!(row_count(&mut cluster, 1), m.committed as i64);
}

#[test]
fn truncated_log_forces_full_resync() {
    let mut cluster = Cluster::build(mm_cfg());
    let c = cluster.add_client(SeqInsert { next: 100 }, |cc| {
        cc.think_time_us = 1_000;
        cc.tx_limit = 2_000;
    });
    cluster.crash_backend_at(SimTime::from_secs(1), 0, 1);
    cluster.restart_backend_at(SimTime::from_secs(3), 0, 1);
    // While backend 1 is down, the log is purged past its checkpoint
    // ("log full" pressure, §4.4.2): replay is impossible.
    cluster.run_for(dur::secs(2));
    cluster.with_middleware(0, |mw| {
        let head = mw.log.head();
        mw.log.force_truncate(head);
    });
    cluster.run_for(dur::secs(6));

    let m = cluster.client_metrics(c);
    assert!(m.committed >= 1_500);
    let state = cluster.with_middleware(0, |mw| {
        mw.recovery_state(replimid_core::BackendId(1))
    });
    assert_eq!(state, "Online", "backend 1 resynced: {state}");
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1], "full resync converged");
}

#[test]
fn rejoin_under_load_uses_barrier_and_converges() {
    // Heavy write load while a replica replays: the final hop needs the
    // global barrier; the cluster still converges once the writers stop.
    let mut cfg = mm_cfg();
    cfg.mw.barrier_threshold = 32;
    cfg.mw.recovery_batch = 128;
    let mut cluster = Cluster::build(cfg);
    let c1 = cluster.add_client(SeqInsert { next: 100_000 }, |cc| {
        cc.think_time_us = 300;
        cc.tx_limit = 6_000;
    });
    let c2 = cluster.add_client(SeqInsert { next: 200_000 }, |cc| {
        cc.think_time_us = 300;
        cc.tx_limit = 6_000;
    });
    cluster.crash_backend_at(SimTime::from_secs(1), 0, 2);
    cluster.restart_backend_at(SimTime::from_secs(2), 0, 2);
    cluster.run_for(dur::secs(12));

    let m1 = cluster.client_metrics(c1);
    let m2 = cluster.client_metrics(c2);
    assert!(m1.committed + m2.committed >= 10_000);
    let state = cluster.with_middleware(0, |mw| {
        mw.recovery_state(replimid_core::BackendId(2))
    });
    assert_eq!(state, "Online", "backend 2 recovered under load: {state}");
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][2], "caught up under load");
}

#[test]
fn master_slave_failback_resyncs_old_master_as_slave() {
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: 20_000,
            use_writesets: false,
            parallel_apply: false,
            read_master: true,
        },
        schema(),
        "shop",
    );
    cfg.backends_per_mw = 2;
    let mut cluster = Cluster::build(cfg);
    let c = cluster.add_client(SeqInsert { next: 100 }, |cc| {
        cc.think_time_us = 1_000;
        cc.request_timeout_us = 300_000;
        cc.tx_limit = 3_000;
    });
    // Master dies at 1.5s; slave promoted. Old master returns at 3s: it has
    // committed-but-unshipped transactions (1-safe divergence) and must be
    // rebuilt from the new master — the paper's manual-reconciliation case,
    // automated here as a full resync.
    cluster.crash_backend_at(SimTime::from_millis(1_500), 0, 0);
    cluster.restart_backend_at(SimTime::from_secs(3), 0, 0);
    cluster.run_for(dur::secs(8));

    let m = cluster.client_metrics(c);
    assert!(m.committed >= 2_000, "committed {}", m.committed);
    let master = cluster.master_of(0);
    assert_eq!(master.0, 1, "promotion stuck");
    // The old master rejoined as a slave and converged to the new master.
    cluster.run_for(dur::secs(1));
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1], "failback converged");
}
