//! Quickstart: a three-replica multi-master cluster with statement-based
//! replication, one client, and a convergence check.
//!
//! Run with: `cargo run --example quickstart`

use replimid_core::{Cluster, ClusterConfig, Mode, NondetPolicy, ScriptSource};
use replimid_simnet::dur;

fn main() {
    // 1. Describe the schema every replica starts from.
    let schema = vec![
        "CREATE DATABASE shop".to_string(),
        "USE shop".to_string(),
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT NOT NULL)".to_string(),
        "INSERT INTO items VALUES (1, 'book', 10), (2, 'pen', 20)".to_string(),
    ];

    // 2. Build a cluster: one middleware, three backends, statement-based
    //    multi-master replication with safe non-determinism handling.
    let cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "shop",
    );
    let mut cluster = Cluster::build(cfg);

    // 3. Add a closed-loop client running a small transaction mix.
    let client = cluster.add_client(
        ScriptSource::new(vec![
            vec!["UPDATE items SET qty = qty - 1 WHERE id = 1".into()],
            vec!["SELECT qty FROM items WHERE id = 1".into()],
            vec![
                "BEGIN".into(),
                "UPDATE items SET qty = qty - 1 WHERE id = 2".into(),
                "UPDATE items SET qty = qty + 1 WHERE id = 1".into(),
                "COMMIT".into(),
            ],
        ]),
        |cc| {
            cc.think_time_us = 1_000;
            cc.tx_limit = 30;
        },
    );

    // 4. Run five virtual seconds.
    cluster.run_for(dur::secs(5));

    // 5. Inspect the results.
    let m = cluster.client_metrics(client);
    println!("transactions committed : {}", m.committed);
    println!("transactions aborted   : {}", m.aborted);
    println!("mean stmt latency      : {:.0} µs", m.stmt_latency.mean_us());
    println!("p99 stmt latency       : {} µs", m.stmt_latency.quantile_us(0.99));

    let sums = cluster.backend_checksums();
    println!("backend checksums      : {:?}", sums[0]);
    assert!(
        sums[0].windows(2).all(|w| w[0] == w[1]),
        "replicas diverged!"
    );
    println!("all replicas converged ✓");
}
