//! Hot standby (Fig. 3 of the paper): a master-slave pair with asynchronous
//! log shipping, a master crash, automatic promotion, and the measured
//! outage window.
//!
//! Run with: `cargo run --example hot_standby`

use replimid_core::{Cluster, ClusterConfig, Mode, TxSource};
use replimid_simnet::{dur, SimTime};

/// Endless stream of fresh-key inserts.
struct Inserts(i64);

impl TxSource for Inserts {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        self.0 += 1;
        vec![format!("INSERT INTO events VALUES ({}, now())", self.0)]
    }
}

fn main() {
    let schema = vec![
        "CREATE DATABASE ops".to_string(),
        "USE ops".to_string(),
        "CREATE TABLE events (id INT PRIMARY KEY, at TIMESTAMP)".to_string(),
    ];
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,          // 1-safe: fast commits, bounded loss window
            ship_interval_us: 20_000, // ship every 20ms
            use_writesets: false,     // statement shipping
            parallel_apply: false,
            read_master: true,
        },
        schema,
        "ops",
    );
    cfg.backends_per_mw = 2; // master + hot standby
    let mut cluster = Cluster::build(cfg);
    let client = cluster.add_client(Inserts(0), |cc| {
        cc.think_time_us = 1_000;
        cc.request_timeout_us = 300_000;
        cc.tx_limit = 4_000;
    });

    // The master dies two virtual seconds in.
    cluster.crash_backend_at(SimTime::from_secs(2), 0, 0);
    cluster.run_for(dur::secs(8));

    let m = cluster.client_metrics(client);
    let mw = cluster.mw_metrics(0);
    println!("committed                 : {}", m.committed);
    println!("client-visible timeouts   : {}", m.timeouts);
    println!("new master                : backend {}", cluster.master_of(0).0);
    println!("failovers                 : {}", mw.counters.failovers);
    println!("lost (1-safe window)      : {}", mw.counters.lost_transactions);
    println!("outages observed          : {}", mw.availability.outage_count());
    println!("MTTR                      : {:.0} ms", mw.availability.mttr_us() / 1_000.0);
    println!("availability              : {:.5}", mw.availability.availability());
    println!("availability (nines)      : {:.2}", mw.availability.nines());
}
