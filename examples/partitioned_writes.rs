//! Data partitioning for write scalability (Fig. 2 of the paper): orders
//! are range-partitioned across two replica groups; keyed writes go only to
//! the owning partition, scans scatter.
//!
//! Run with: `cargo run --example partitioned_writes`

use replimid_core::{
    BackendId, Cluster, ClusterConfig, Mode, PartitionScheme, Partitioner, TxSource,
};
use replimid_simnet::dur;

struct OrderStream {
    next: i64,
}

impl TxSource for OrderStream {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let id = self.next;
        self.next += 1;
        if id % 10 == 0 {
            vec!["SELECT COUNT(*) FROM orders".to_string()] // scatter read
        } else {
            vec![format!("INSERT INTO orders (id, total) VALUES ({id}, {})", id % 500)]
        }
    }
}

fn main() {
    let mut partitioner = Partitioner::new();
    partitioner.add_table(
        "orders",
        PartitionScheme::Range { column: "id".into(), bounds: vec![5_000] },
    );
    let schema = vec![
        "CREATE DATABASE sales".to_string(),
        "USE sales".to_string(),
        "CREATE TABLE orders (id INT PRIMARY KEY, total INT NOT NULL)".to_string(),
    ];
    let mut cfg = ClusterConfig::new(
        Mode::PartitionedStatement {
            partitioner,
            groups: vec![vec![BackendId(0)], vec![BackendId(1)]],
        },
        schema,
        "sales",
    );
    cfg.backends_per_mw = 2;
    let mut cluster = Cluster::build(cfg);

    // Two writers, one per key range: their writes never contend.
    let c1 = cluster.add_client(OrderStream { next: 1 }, |cc| cc.think_time_us = 500);
    let c2 = cluster.add_client(OrderStream { next: 5_001 }, |cc| cc.think_time_us = 500);
    cluster.run_for(dur::secs(5));

    let m1 = cluster.client_metrics(c1);
    let m2 = cluster.client_metrics(c2);
    println!("low-range client committed  : {}", m1.committed);
    println!("high-range client committed : {}", m2.committed);

    for (b, label) in [(0usize, "partition 0 (id < 5000)"), (1, "partition 1 (id >= 5000)")] {
        let (rows, min, max) = cluster.with_backend_engine(0, b, |e| {
            let conn = e.connect("admin", "admin").unwrap();
            e.execute(conn, "USE sales").unwrap();
            let rows = e.execute(conn, "SELECT COUNT(*) FROM orders").unwrap();
            let n = rows.outcome.rows().unwrap().rows[0][0].as_int().unwrap();
            let r = e.execute(conn, "SELECT MIN(id), MAX(id) FROM orders").unwrap();
            let row = &r.outcome.rows().unwrap().rows[0];
            (n, row[0].as_int().unwrap_or(0), row[1].as_int().unwrap_or(0))
        });
        println!("{label}: {rows} rows, ids {min}..{max}");
    }
}
