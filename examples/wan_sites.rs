//! WAN replication (Fig. 4 of the paper): three middleware replicas — think
//! EU, US, Asia — synchronously ordering writes over intercontinental
//! links, versus the same cluster on a LAN. Shows why §4.3.4.1 concludes
//! "1-copy-serializability is unlikely to be successful in the WAN".
//!
//! Run with: `cargo run --example wan_sites`

use replimid_core::{Cluster, ClusterConfig, Mode, NondetPolicy, TxSource};
use replimid_simnet::{dur, LinkSpec, NetworkModel};

struct Writes(i64);

impl TxSource for Writes {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        self.0 += 1;
        vec![format!("INSERT INTO log (id, site) VALUES ({}, {})", self.0, self.0 % 3)]
    }
}

fn run(wan: bool) -> (f64, u64) {
    let schema = vec![
        "CREATE DATABASE geo".to_string(),
        "USE geo".to_string(),
        "CREATE TABLE log (id INT PRIMARY KEY, site INT NOT NULL)".to_string(),
    ];
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "geo",
    );
    cfg.middlewares = 3;
    cfg.backends_per_mw = 1;
    cfg.net = NetworkModel::lan();
    let mut cluster = Cluster::build(cfg);
    if wan {
        // Sites: (db0, mw0+client) (db1, mw1) (db2, mw2). Everything between
        // different sites crosses an ocean.
        let site_of = |n: replimid_simnet::NodeId| -> usize {
            // db nodes 0..3 then middleware 3..6 then clients.
            match n.0 {
                0 | 3 => 0,
                1 | 4 => 1,
                2 | 5 => 2,
                other => other % 3,
            }
        };
        let all: Vec<replimid_simnet::NodeId> =
            (0..cluster.sim.node_count()).map(replimid_simnet::NodeId).collect();
        for &a in &all {
            for &b in &all {
                if a != b && site_of(a) != site_of(b) {
                    cluster.sim.net.set_link(a, b, LinkSpec::wan());
                }
            }
        }
    }
    // One client per site, writing disjoint keys.
    let mut clients = Vec::new();
    for i in 0..3 {
        clients.push(cluster.add_client(Writes(10_000_000 * (i + 1)), |cc| {
            cc.think_time_us = 2_000;
            cc.tx_limit = 300;
        }));
    }
    cluster.run_for(dur::secs(30));
    let mut lat = 0.0;
    let mut committed = 0;
    for &c in &clients {
        let m = cluster.client_metrics(c);
        lat += m.tx_latency.mean_us();
        committed += m.committed;
    }
    (lat / 3.0, committed)
}

fn main() {
    let (lan_lat, lan_committed) = run(false);
    let (wan_lat, wan_committed) = run(true);
    println!("LAN cluster : mean write latency {lan_lat:.0} µs, committed {lan_committed}");
    println!("WAN cluster : mean write latency {wan_lat:.0} µs, committed {wan_committed}");
    println!(
        "WAN/LAN latency ratio: {:.1}x — synchronous total order pays the \
         speed of light on every write",
        wan_lat / lan_lat
    );
}
