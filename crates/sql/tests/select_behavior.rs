//! SELECT pipeline behaviour: aggregates, grouping, ordering, limits,
//! joins, and edge cases.

use replimid_sql::{Engine, Outcome, Value};

fn setup() -> (Engine, replimid_sql::ConnId) {
    let (mut e, c) = Engine::with_database("d");
    e.execute(c, "CREATE TABLE t (k INT PRIMARY KEY, grp TEXT, v INT)").unwrap();
    e.execute(
        c,
        "INSERT INTO t VALUES (1, 'a', 10), (2, 'a', 20), (3, 'b', 30), (4, 'b', 40), (5, 'c', NULL)",
    )
    .unwrap();
    (e, c)
}

fn rows(e: &mut Engine, c: replimid_sql::ConnId, sql: &str) -> Vec<Vec<Value>> {
    match e.execute(c, sql).unwrap().outcome {
        Outcome::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn aggregates_over_empty_table() {
    let (mut e, c) = Engine::with_database("d");
    e.execute(c, "CREATE TABLE empty (k INT PRIMARY KEY)").unwrap();
    let r = rows(&mut e, c, "SELECT COUNT(*), MIN(k), MAX(k), SUM(k) FROM empty");
    assert_eq!(r, vec![vec![Value::Int(0), Value::Null, Value::Null, Value::Null]]);
}

#[test]
fn count_ignores_nulls_count_star_does_not() {
    let (mut e, c) = setup();
    let r = rows(&mut e, c, "SELECT COUNT(*), COUNT(v) FROM t");
    assert_eq!(r[0], vec![Value::Int(5), Value::Int(4)]);
}

#[test]
fn group_by_with_having_and_order() {
    let (mut e, c) = setup();
    let r = rows(
        &mut e,
        c,
        "SELECT grp, SUM(v) AS total FROM t GROUP BY grp HAVING COUNT(v) > 1 ORDER BY total DESC",
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0], vec![Value::Text("b".into()), Value::Int(70)]);
    assert_eq!(r[1], vec![Value::Text("a".into()), Value::Int(30)]);
}

#[test]
fn avg_is_float() {
    let (mut e, c) = setup();
    let r = rows(&mut e, c, "SELECT AVG(v) FROM t WHERE grp = 'a'");
    assert_eq!(r[0][0], Value::Float(15.0));
}

#[test]
fn order_by_alias_and_expression() {
    let (mut e, c) = setup();
    let r = rows(&mut e, c, "SELECT k, v * 2 AS dbl FROM t WHERE v IS NOT NULL ORDER BY dbl DESC LIMIT 2");
    assert_eq!(r[0][0], Value::Int(4));
    assert_eq!(r[1][0], Value::Int(3));
}

#[test]
fn limit_offset_pagination() {
    let (mut e, c) = setup();
    let page1 = rows(&mut e, c, "SELECT k FROM t ORDER BY k LIMIT 2");
    let page2 = rows(&mut e, c, "SELECT k FROM t ORDER BY k LIMIT 2 OFFSET 2");
    let page3 = rows(&mut e, c, "SELECT k FROM t ORDER BY k LIMIT 2 OFFSET 4");
    assert_eq!(page1, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    assert_eq!(page2, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
    assert_eq!(page3, vec![vec![Value::Int(5)]]);
    let empty = rows(&mut e, c, "SELECT k FROM t ORDER BY k LIMIT 2 OFFSET 99");
    assert!(empty.is_empty());
}

#[test]
fn join_with_aliases_and_projection_order() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE TABLE names (grp TEXT, label TEXT)").unwrap();
    e.execute(c, "INSERT INTO names VALUES ('a', 'alpha'), ('b', 'beta')").unwrap();
    let r = rows(
        &mut e,
        c,
        "SELECT n.label, x.k FROM t x JOIN names n ON x.grp = n.grp WHERE x.v > 15 ORDER BY x.k",
    );
    assert_eq!(r.len(), 3);
    assert_eq!(r[0], vec![Value::Text("alpha".into()), Value::Int(2)]);
    assert_eq!(r[2], vec![Value::Text("beta".into()), Value::Int(4)]);
}

#[test]
fn wildcard_expands_join_columns() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE TABLE u (id INT PRIMARY KEY, note TEXT)").unwrap();
    e.execute(c, "INSERT INTO u VALUES (1, 'x')").unwrap();
    let r = rows(&mut e, c, "SELECT * FROM u JOIN t ON u.id = t.k");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0].len(), 2 + 3, "both tables' columns");
}

#[test]
fn select_without_from() {
    let (mut e, c) = setup();
    let r = rows(&mut e, c, "SELECT 1 + 2, upper('ab')");
    assert_eq!(r, vec![vec![Value::Int(3), Value::Text("AB".into())]]);
}

#[test]
fn nulls_sort_first_ascending() {
    let (mut e, c) = setup();
    let r = rows(&mut e, c, "SELECT k FROM t ORDER BY v, k");
    assert_eq!(r[0][0], Value::Int(5), "NULL v sorts first");
}

#[test]
fn where_null_comparison_filters_out() {
    let (mut e, c) = setup();
    // v = NULL is UNKNOWN, never true.
    let r = rows(&mut e, c, "SELECT k FROM t WHERE v = NULL");
    assert!(r.is_empty());
    let r = rows(&mut e, c, "SELECT k FROM t WHERE v IS NULL");
    assert_eq!(r, vec![vec![Value::Int(5)]]);
}

#[test]
fn insert_from_select() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE TABLE archive (k INT PRIMARY KEY, grp TEXT, v INT)").unwrap();
    let r = e
        .execute(c, "INSERT INTO archive SELECT k, grp, v FROM t WHERE v >= 30")
        .unwrap();
    assert_eq!(r.outcome.affected(), 2);
    let n = rows(&mut e, c, "SELECT COUNT(*) FROM archive");
    assert_eq!(n[0][0], Value::Int(2));
}

#[test]
fn scalar_subquery_multi_row_errors() {
    let (mut e, c) = setup();
    let err = e
        .execute(c, "SELECT (SELECT k FROM t) FROM t")
        .unwrap_err();
    assert!(err.to_string().contains("scalar subquery"), "{err}");
}

#[test]
fn update_with_expression_over_old_values() {
    let (mut e, c) = setup();
    e.execute(c, "UPDATE t SET v = v + k WHERE v IS NOT NULL").unwrap();
    let r = rows(&mut e, c, "SELECT v FROM t WHERE k = 2");
    assert_eq!(r[0][0], Value::Int(22));
}
