//! End-to-end behaviour tests for the SQL engine substrate, organized by the
//! paper section whose gap each group exercises.

use replimid_sql::engine::{ConnId, Engine, EngineConfig};
use replimid_sql::{DumpOptions, Outcome, SqlError, Value, ADMIN_PASSWORD, ADMIN_USER};

fn setup() -> (Engine, ConnId) {
    let (mut e, c) = Engine::with_database("shop");
    e.execute(c, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT NOT NULL)").unwrap();
    e.execute(c, "INSERT INTO acct VALUES (1, 100), (2, 200)").unwrap();
    (e, c)
}

fn q(e: &mut Engine, c: ConnId, sql: &str) -> Vec<Vec<Value>> {
    match e.execute(c, sql).unwrap().outcome {
        Outcome::Rows(rs) => rs.rows,
        other => panic!("expected rows from {sql}, got {other:?}"),
    }
}

fn scalar_int(e: &mut Engine, c: ConnId, sql: &str) -> i64 {
    q(e, c, sql)[0][0].as_int().unwrap()
}

// ---------------------------------------------------------------------
// Basic SQL + transactions
// ---------------------------------------------------------------------

#[test]
fn autocommit_and_explicit_transactions() {
    let (mut e, c) = setup();
    assert_eq!(scalar_int(&mut e, c, "SELECT bal FROM acct WHERE id = 1"), 100);

    e.execute(c, "BEGIN").unwrap();
    e.execute(c, "UPDATE acct SET bal = bal - 10 WHERE id = 1").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT bal FROM acct WHERE id = 1"), 90);
    e.execute(c, "ROLLBACK").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT bal FROM acct WHERE id = 1"), 100);

    e.execute(c, "BEGIN").unwrap();
    e.execute(c, "UPDATE acct SET bal = bal - 10 WHERE id = 1").unwrap();
    let r = e.execute(c, "COMMIT").unwrap();
    assert!(r.commit.is_some());
    assert_eq!(r.commit.unwrap().writeset.len(), 1);
    assert_eq!(scalar_int(&mut e, c, "SELECT bal FROM acct WHERE id = 1"), 90);
}

#[test]
fn joins_aggregates_order_limit() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE TABLE owner (id INT PRIMARY KEY, acct_id INT, name TEXT)").unwrap();
    e.execute(c, "INSERT INTO owner VALUES (1, 1, 'ann'), (2, 2, 'bob'), (3, 1, 'cat')")
        .unwrap();
    let rows = q(
        &mut e,
        c,
        "SELECT o.name, a.bal FROM owner o JOIN acct a ON o.acct_id = a.id \
         WHERE a.bal >= 100 ORDER BY o.name DESC LIMIT 2",
    );
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Text("cat".into()));
    assert_eq!(scalar_int(&mut e, c, "SELECT COUNT(*) FROM owner WHERE acct_id = 1"), 2);
    assert_eq!(scalar_int(&mut e, c, "SELECT SUM(bal) FROM acct"), 300);
    let grouped = q(
        &mut e,
        c,
        "SELECT acct_id, COUNT(*) AS n FROM owner GROUP BY acct_id HAVING COUNT(*) > 1",
    );
    assert_eq!(grouped.len(), 1);
    assert_eq!(grouped[0][1], Value::Int(2));
}

#[test]
fn subqueries_correlated_and_in() {
    let (mut e, c) = setup();
    let rows = q(
        &mut e,
        c,
        "SELECT id FROM acct WHERE bal = (SELECT MAX(bal) FROM acct)",
    );
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
    let rows = q(&mut e, c, "SELECT id FROM acct WHERE id IN (SELECT id FROM acct WHERE bal < 150)");
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
    // Correlated EXISTS.
    e.execute(c, "CREATE TABLE flags (acct_id INT PRIMARY KEY)").unwrap();
    e.execute(c, "INSERT INTO flags VALUES (2)").unwrap();
    let rows = q(
        &mut e,
        c,
        "SELECT id FROM acct a WHERE EXISTS (SELECT 1 FROM flags f WHERE f.acct_id = a.id)",
    );
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

// ---------------------------------------------------------------------
// §4.1.2 isolation levels and error handling
// ---------------------------------------------------------------------

#[test]
fn snapshot_isolation_repeatable_reads() {
    let (mut e, c1) = setup();
    let c2 = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c2, "USE shop").unwrap();

    e.execute(c1, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
    assert_eq!(scalar_int(&mut e, c1, "SELECT bal FROM acct WHERE id = 1"), 100);
    // Concurrent committed update.
    e.execute(c2, "UPDATE acct SET bal = 999 WHERE id = 1").unwrap();
    // SI: still sees the old snapshot.
    assert_eq!(scalar_int(&mut e, c1, "SELECT bal FROM acct WHERE id = 1"), 100);
    e.execute(c1, "COMMIT").unwrap();
    assert_eq!(scalar_int(&mut e, c1, "SELECT bal FROM acct WHERE id = 1"), 999);
}

#[test]
fn read_committed_sees_new_commits() {
    let (mut e, c1) = setup();
    let c2 = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c2, "USE shop").unwrap();
    e.execute(c1, "BEGIN ISOLATION LEVEL READ COMMITTED").unwrap();
    assert_eq!(scalar_int(&mut e, c1, "SELECT bal FROM acct WHERE id = 1"), 100);
    e.execute(c2, "UPDATE acct SET bal = 999 WHERE id = 1").unwrap();
    assert_eq!(scalar_int(&mut e, c1, "SELECT bal FROM acct WHERE id = 1"), 999);
    e.execute(c1, "COMMIT").unwrap();
}

#[test]
fn first_committer_wins_under_si() {
    let (mut e, c1) = setup();
    let c2 = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c2, "USE shop").unwrap();

    e.execute(c1, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
    e.execute(c2, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
    e.execute(c1, "UPDATE acct SET bal = 1 WHERE id = 1").unwrap();
    // c2 writes the same row -> conflict with the uncommitted writer.
    let err = e.execute(c2, "UPDATE acct SET bal = 2 WHERE id = 1").unwrap_err();
    assert!(matches!(err, SqlError::WriteConflict { .. }), "{err}");
    e.execute(c1, "COMMIT").unwrap();
}

#[test]
fn serializable_detects_read_write_conflict() {
    let (mut e, c1) = setup();
    let c2 = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c2, "USE shop").unwrap();

    e.execute(c1, "BEGIN ISOLATION LEVEL SERIALIZABLE").unwrap();
    let _ = scalar_int(&mut e, c1, "SELECT SUM(bal) FROM acct");
    e.execute(c2, "UPDATE acct SET bal = bal + 1 WHERE id = 2").unwrap();
    // Write something so the commit matters, then commit must fail
    // validation: a table we read changed after our snapshot.
    e.execute(c1, "INSERT INTO acct VALUES (3, 1)").unwrap();
    let err = e.execute(c1, "COMMIT").unwrap_err();
    assert!(matches!(err, SqlError::SerializationFailure(_)), "{err}");
    // Transaction is gone; the insert is not visible.
    assert_eq!(scalar_int(&mut e, c1, "SELECT COUNT(*) FROM acct"), 2);
}

#[test]
fn postgres_mode_poisons_transaction_mysql_mode_continues() {
    // PostgreSQL-style engine (default).
    let (mut e, c) = setup();
    e.execute(c, "BEGIN").unwrap();
    assert!(e.execute(c, "INSERT INTO acct VALUES (1, 5)").is_err()); // dup key
    let err = e.execute(c, "SELECT COUNT(*) FROM acct").unwrap_err();
    assert!(matches!(err, SqlError::TransactionState(_)));
    e.execute(c, "ROLLBACK").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT COUNT(*) FROM acct"), 2);

    // MySQL-style engine keeps the transaction usable after the error.
    let mut e = Engine::new(EngineConfig::mysqlish("my", 1));
    let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c, "CREATE DATABASE shop").unwrap();
    e.execute(c, "USE shop").unwrap();
    e.execute(c, "CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    e.execute(c, "BEGIN").unwrap();
    e.execute(c, "INSERT INTO t VALUES (1)").unwrap();
    assert!(e.execute(c, "INSERT INTO t VALUES (1)").is_err());
    // Still usable: the paper notes MySQL continues until the client acts.
    e.execute(c, "INSERT INTO t VALUES (2)").unwrap();
    e.execute(c, "COMMIT").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT COUNT(*) FROM t"), 2);
}

#[test]
fn engines_without_si_reject_it() {
    let mut e = Engine::new(EngineConfig::sybasish("syb", 1));
    let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    let err = e.execute(c, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap_err();
    assert!(matches!(err, SqlError::Unsupported(_)));
}

// ---------------------------------------------------------------------
// §4.1.1 multi-database + cross-database triggers
// ---------------------------------------------------------------------

#[test]
fn cross_database_trigger_reporting() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE DATABASE reportdb").unwrap();
    e.execute(c, "CREATE TABLE reportdb.audit (acct_id INT, delta INT)").unwrap();
    e.execute(
        c,
        "CREATE TRIGGER log_ins AFTER INSERT ON acct DO BEGIN \
         INSERT INTO reportdb.audit (acct_id, delta) VALUES (NEW.id, NEW.bal); END",
    )
    .unwrap();
    e.execute(c, "INSERT INTO acct VALUES (7, 70)").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT COUNT(*) FROM reportdb.audit"), 1);
    let rows = q(&mut e, c, "SELECT acct_id, delta FROM reportdb.audit");
    assert_eq!(rows[0], vec![Value::Int(7), Value::Int(70)]);

    // Trigger writes are part of the same transaction: rollback undoes both.
    e.execute(c, "BEGIN").unwrap();
    e.execute(c, "INSERT INTO acct VALUES (8, 80)").unwrap();
    e.execute(c, "ROLLBACK").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT COUNT(*) FROM reportdb.audit"), 1);
    // ...and the writeset of a committed transaction spans both databases.
    e.execute(c, "BEGIN").unwrap();
    e.execute(c, "INSERT INTO acct VALUES (9, 90)").unwrap();
    let commit = e.execute(c, "COMMIT").unwrap().commit.unwrap();
    let tables = commit.writeset.tables();
    assert!(tables.contains(&("shop".into(), "acct".into())));
    assert!(tables.contains(&("reportdb".into(), "audit".into())));
}

// ---------------------------------------------------------------------
// §4.1.4 temporary tables
// ---------------------------------------------------------------------

#[test]
fn temp_tables_are_connection_local_and_unreplicated() {
    let (mut e, c1) = setup();
    let c2 = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c2, "USE shop").unwrap();

    e.execute(c1, "CREATE TEMPORARY TABLE scratch (k INT PRIMARY KEY, v INT)").unwrap();
    let r = e.execute(c1, "INSERT INTO scratch VALUES (1, 10)").unwrap();
    // Not in the writeset: temp tables must not replicate.
    assert!(r.commit.unwrap().writeset.is_empty());
    assert_eq!(scalar_int(&mut e, c1, "SELECT v FROM scratch WHERE k = 1"), 10);
    // Invisible to the other connection.
    assert!(e.execute(c2, "SELECT * FROM scratch").is_err());
    // Dumps never contain temp tables.
    let dump = e.dump(DumpOptions::full());
    assert!(dump
        .databases
        .iter()
        .all(|d| d.tables.iter().all(|t| t.name != "scratch")));
    // Dropped on disconnect.
    e.disconnect(c1);
    let c3 = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c3, "USE shop").unwrap();
    assert!(e.execute(c3, "SELECT * FROM scratch").is_err());
}

#[test]
fn sybase_flavour_rejects_temp_table_in_transaction() {
    let mut e = Engine::new(EngineConfig::sybasish("syb", 1));
    let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c, "CREATE DATABASE d").unwrap();
    e.execute(c, "USE d").unwrap();
    e.execute(c, "BEGIN").unwrap();
    let err = e.execute(c, "CREATE TEMPORARY TABLE s (k INT)").unwrap_err();
    assert!(matches!(err, SqlError::Unsupported(_)));
    e.execute(c, "ROLLBACK").unwrap();
    // Fine outside a transaction.
    e.execute(c, "CREATE TEMPORARY TABLE s (k INT)").unwrap();
}

// ---------------------------------------------------------------------
// §4.2.3 sequences and auto-increment
// ---------------------------------------------------------------------

#[test]
fn sequences_are_not_transactional() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE SEQUENCE ids START 100").unwrap();
    e.execute(c, "BEGIN").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT nextval('ids')"), 100);
    e.execute(c, "ROLLBACK").unwrap();
    // The rollback did NOT give 100 back: a hole.
    assert_eq!(scalar_int(&mut e, c, "SELECT nextval('ids')"), 101);
}

#[test]
fn auto_increment_survives_rollback() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)").unwrap();
    e.execute(c, "BEGIN").unwrap();
    e.execute(c, "INSERT INTO t (v) VALUES ('a')").unwrap();
    e.execute(c, "ROLLBACK").unwrap();
    e.execute(c, "INSERT INTO t (v) VALUES ('b')").unwrap();
    // id 1 was burned by the rolled-back insert.
    let rows = q(&mut e, c, "SELECT id FROM t");
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

// ---------------------------------------------------------------------
// §4.2.1 stored procedures
// ---------------------------------------------------------------------

#[test]
fn stored_procedures_execute_with_params() {
    let (mut e, c) = setup();
    e.execute(
        c,
        "CREATE PROCEDURE transfer(src, dst, amount) AS BEGIN \
         UPDATE acct SET bal = bal - amount WHERE id = src; \
         UPDATE acct SET bal = bal + amount WHERE id = dst; END",
    )
    .unwrap();
    e.execute(c, "CALL transfer(1, 2, 30)").unwrap();
    assert_eq!(scalar_int(&mut e, c, "SELECT bal FROM acct WHERE id = 1"), 70);
    assert_eq!(scalar_int(&mut e, c, "SELECT bal FROM acct WHERE id = 2"), 230);
    // Arity is checked.
    assert!(matches!(
        e.execute(c, "CALL transfer(1, 2)").unwrap_err(),
        SqlError::Arity { .. }
    ));
}

// ---------------------------------------------------------------------
// §4.1.5 access control and backup completeness
// ---------------------------------------------------------------------

#[test]
fn grants_enforced_and_lost_by_default_dump() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE USER app PASSWORD 'pw'").unwrap();
    e.execute(c, "GRANT READ ON shop TO app").unwrap();
    let app = e.connect("app", "pw").unwrap();
    e.execute(app, "USE shop").unwrap();
    assert_eq!(scalar_int(&mut e, app, "SELECT COUNT(*) FROM acct"), 2);
    assert!(matches!(
        e.execute(app, "UPDATE acct SET bal = 0 WHERE id = 1").unwrap_err(),
        SqlError::AccessDenied(_)
    ));

    // Clone the engine from a *default* dump: principals are lost (§4.1.5).
    let dump = e.dump(DumpOptions::default());
    let mut clone = Engine::new(EngineConfig::default());
    clone.restore(&dump).unwrap();
    assert!(clone.connect("app", "pw").is_err(), "clone lost the app user");

    // A full dump preserves them.
    let dump = e.dump(DumpOptions::full());
    let mut clone = Engine::new(EngineConfig::default());
    clone.restore(&dump).unwrap();
    assert!(clone.connect("app", "pw").is_ok());
    assert_eq!(clone.checksum_data(), e.checksum_data(), "data identical either way");
}

// ---------------------------------------------------------------------
// Writesets (§4.3.2)
// ---------------------------------------------------------------------

#[test]
fn writeset_application_replicates_data_but_not_counters() {
    let (mut src, c) = setup();
    src.execute(c, "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)").unwrap();

    // A destination replica with identical schema.
    let (mut dst, d) = Engine::with_database("shop");
    dst.execute(d, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT NOT NULL)").unwrap();
    dst.execute(d, "INSERT INTO acct VALUES (1, 100), (2, 200)").unwrap();
    dst.execute(d, "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)").unwrap();

    let ws = src
        .execute(c, "INSERT INTO t (v) VALUES ('x')")
        .unwrap()
        .commit
        .unwrap()
        .writeset;
    dst.apply_writeset(&ws).unwrap();
    // Data matches...
    assert_eq!(
        src.checksum_data(),
        dst.checksum_data(),
        "row data replicated by writeset"
    );
    // ...but the auto-increment counter did NOT move on dst (the gap): the
    // full checksum (which covers counters) already disagrees...
    assert_ne!(src.checksum_full(), dst.checksum_full(), "counter skew detected");
    // ...and a local insert on dst collides with the replicated row.
    let err = dst.execute(d, "INSERT INTO t (v) VALUES ('y')").unwrap_err();
    assert!(matches!(err, SqlError::DuplicateKey(_)), "{err}");
}

#[test]
fn counter_sync_extension_closes_the_gap() {
    let mut cfg = EngineConfig { capture_counters: true, ..Default::default() };
    cfg.name = "src".into();
    let mut src = Engine::new(cfg);
    let c = src.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    src.execute(c, "CREATE DATABASE shop").unwrap();
    src.execute(c, "USE shop").unwrap();
    src.execute(c, "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)").unwrap();

    let mut dst = Engine::new(EngineConfig {
        apply_counter_sync: true,
        name: "dst".into(),
        ..Default::default()
    });
    let d = dst.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    dst.execute(d, "CREATE DATABASE shop").unwrap();
    dst.execute(d, "USE shop").unwrap();
    dst.execute(d, "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)").unwrap();

    let ws = src
        .execute(c, "INSERT INTO t (v) VALUES ('x')")
        .unwrap()
        .commit
        .unwrap()
        .writeset;
    assert!(ws.counters.is_some());
    dst.apply_writeset(&ws).unwrap();
    // The local insert now gets a fresh id: no collision.
    dst.execute(d, "INSERT INTO t (v) VALUES ('y')").unwrap();
}

// ---------------------------------------------------------------------
// Binlog + statement shipping
// ---------------------------------------------------------------------

#[test]
fn binlog_replays_to_an_identical_replica() {
    let (mut master, c) = setup();
    master.execute(c, "CREATE SEQUENCE ids START 1").unwrap();
    master.execute(c, "UPDATE acct SET bal = bal + 5 WHERE id = 1").unwrap();
    master.execute(c, "BEGIN").unwrap();
    master.execute(c, "INSERT INTO acct VALUES (3, 300)").unwrap();
    master.execute(c, "DELETE FROM acct WHERE id = 2").unwrap();
    master.execute(c, "COMMIT").unwrap();

    // Replay the statement stream on a fresh slave.
    let mut slave = Engine::new(EngineConfig::default());
    let s = slave.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    for entry in master.binlog_after(replimid_sql::Lsn(0)).unwrap() {
        if let Some(db) = &entry.default_db {
            slave.execute(s, &format!("USE {db}")).unwrap();
        }
        for stmt in &entry.statements {
            slave.execute(s, stmt).unwrap();
        }
    }
    assert_eq!(master.checksum_data(), slave.checksum_data());
}

#[test]
fn vacuum_reclaims_dead_versions() {
    let (mut e, c) = setup();
    for _ in 0..10 {
        e.execute(c, "UPDATE acct SET bal = bal + 1 WHERE id = 1").unwrap();
    }
    let reclaimed = e.vacuum();
    assert!(reclaimed >= 9, "reclaimed {reclaimed}");
    assert_eq!(scalar_int(&mut e, c, "SELECT bal FROM acct WHERE id = 1"), 110);
}

#[test]
fn tainted_statements_flagged() {
    let (mut e, c) = setup();
    e.execute(c, "CREATE TABLE t (id INT PRIMARY KEY, ts TIMESTAMP, x FLOAT)").unwrap();
    let r = e.execute(c, "INSERT INTO t VALUES (1, now(), 0.0)").unwrap();
    assert!(r.tainted);
    let r = e.execute(c, "UPDATE t SET x = rand() WHERE id = 1").unwrap();
    assert!(r.tainted);
    let r = e.execute(c, "SELECT * FROM t").unwrap();
    assert!(!r.tainted);
}
