//! Engine-level durability tests: crash recovery across the three crash
//! kinds, operator snapshot round-trips through the checkpoint format, and
//! the `crash_recovery_preserves_committed_state` detcheck property.
//!
//! The cluster-level counterpart (recovered replica reconverges with its
//! peers) lives in the E20 campaign and `bench_pr7`; these tests pin the
//! engine contract in isolation: recovery lands exactly on a state the
//! engine passed through, never past the durable horizon, and identically
//! on every same-seed rerun.

use replimid_det::{detcheck, DetRng};
use replimid_sql::{
    CrashKind, DurabilityConfig, Engine, EngineConfig, ADMIN_PASSWORD, ADMIN_USER,
};

/// A durable engine with the 4-table bench schema and the initial forced
/// checkpoint `DbNode::new` takes, so lossy crashes cannot destroy schema.
fn durable_engine(cfg: DurabilityConfig) -> (Engine, replimid_sql::ConnId) {
    let ecfg = EngineConfig { durability: Some(cfg), ..Default::default() };
    let mut e = Engine::new(ecfg);
    let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c, "CREATE DATABASE bench").unwrap();
    e.execute(c, "USE bench").unwrap();
    for i in 0..4 {
        e.execute(c, &format!("CREATE TABLE t{i} (k INT PRIMARY KEY, v INT)")).unwrap();
    }
    e.wal_force_checkpoint(0, 0);
    let _ = e.take_io();
    (e, c)
}

#[test]
fn clean_crash_recovers_exact_state() {
    let (mut e, c) = durable_engine(DurabilityConfig {
        checkpoint_every: 16,
        fsync_every: 8,
        ..Default::default()
    });
    for i in 0..100i64 {
        e.execute(c, &format!("INSERT INTO t{} VALUES ({}, 1)", i % 4, 10_000_000 + i)).unwrap();
        e.wal_maintain(0, (i + 1) as u64);
    }
    let before = e.checksum_data();
    let report = e.crash_recover(CrashKind::Clean, 0xDEAD_BEEF);
    assert_eq!(e.checksum_data(), before, "clean crash must lose nothing");
    assert_eq!(report.ordered_applied, 100);
    assert!(report.checkpoint_loaded);
    assert!(!report.torn_truncated);
}

#[test]
fn lossy_crash_never_recovers_past_fsync_horizon() {
    // fsync_every=4 with no periodic checkpoints: positions 4, 8, ... are
    // durable; a lost tail lands exactly on the last fsynced position.
    let (mut e, c) = durable_engine(DurabilityConfig {
        checkpoint_every: 0,
        fsync_every: 4,
        ..Default::default()
    });
    let mut sums = vec![e.checksum_data()];
    for i in 0..10i64 {
        e.execute(c, &format!("INSERT INTO t{} VALUES ({}, 1)", i % 4, 10_000_000 + i)).unwrap();
        e.wal_maintain(0, (i + 1) as u64);
        sums.push(e.checksum_data());
    }
    let report = e.crash_recover(CrashKind::LostTail, 7);
    assert_eq!(report.ordered_applied, 8, "tail past the last fsync (pos 8) is gone");
    assert_eq!(e.checksum_data(), sums[8], "recovered state is the committed prefix at pos 8");
}

#[test]
fn snapshot_roundtrip_restores_full_catalog() {
    // Satellite: operator dump/restore rides the recovery snapshot format.
    // The snapshot must carry the full catalog — users, grants, triggers,
    // procedures — not just table rows.
    let (mut e, c) = durable_engine(DurabilityConfig::default());
    e.execute(c, "INSERT INTO t0 VALUES (1, 10)").unwrap();
    e.execute(c, "INSERT INTO t1 VALUES (2, 20)").unwrap();
    e.execute(c, "CREATE USER alice PASSWORD 'pw'").unwrap();
    e.execute(c, "GRANT READ ON bench TO alice").unwrap();
    e.execute(
        c,
        "CREATE TRIGGER trg AFTER INSERT ON t0 DO BEGIN \
         UPDATE t1 SET v = v + 1 WHERE k = 2; END",
    )
    .unwrap();
    e.execute(c, "CREATE PROCEDURE bump() AS BEGIN UPDATE t0 SET v = v + 1 WHERE k = 1; END")
        .unwrap();

    let bytes = e.snapshot_bytes(41, 42);
    let mut f = Engine::new(EngineConfig::default());
    let pos = f.restore_snapshot(&bytes).unwrap();
    assert_eq!(pos, (41, 42), "replication positions travel with the snapshot");
    assert_eq!(f.checksum_full(), e.checksum_full(), "catalog-inclusive checksums match");

    // Behavioral spot-checks: the restored side enforces the restored
    // catalog, fires the trigger, and runs the procedure.
    let fc = f.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    f.execute(fc, "USE bench").unwrap();
    f.execute(fc, "INSERT INTO t0 VALUES (3, 30)").unwrap();
    f.execute(fc, "CALL bump()").unwrap();
    let ac = f.connect("alice", "pw").expect("restored user can log in");
    f.execute(ac, "USE bench").unwrap();
    assert!(f.execute(ac, "DELETE FROM t0 WHERE k = 3").is_err(), "alice only has SELECT");

    e.execute(c, "INSERT INTO t0 VALUES (3, 30)").unwrap();
    e.execute(c, "CALL bump()").unwrap();
    assert_eq!(f.checksum_data(), e.checksum_data(), "restored side behaves like the original");
}

#[test]
fn crash_mid_sequence_recovers_counters_no_duplicate_keys() {
    // §4.2.3 regression: sequences and AUTO_INCREMENT advance outside the
    // transactional store, so commit records alone replay inserts against a
    // stale counter and the next NEXTVAL hands out an already-used key.
    // Counter WAL records close the gap.
    let (mut e, c) = durable_engine(DurabilityConfig {
        checkpoint_every: 0,
        fsync_every: 1,
        ..Default::default()
    });
    e.execute(c, "CREATE SEQUENCE ids START 100").unwrap();
    e.execute(c, "CREATE TABLE seq_t (k INT PRIMARY KEY, v INT)").unwrap();
    e.execute(c, "CREATE TABLE auto_t (k INT PRIMARY KEY AUTO_INCREMENT, v INT)").unwrap();
    e.wal_maintain(0, 0);
    for i in 0..10i64 {
        e.execute(c, &format!("INSERT INTO seq_t VALUES (NEXTVAL('ids'), {i})")).unwrap();
        e.execute(c, &format!("INSERT INTO auto_t (v) VALUES ({i})")).unwrap();
        e.wal_maintain(0, (i + 1) as u64);
    }
    // A rolled-back NEXTVAL still burns a number (non-transactional): the
    // counter record must cover it even though no commit record exists.
    e.execute(c, "BEGIN").unwrap();
    e.execute(c, "INSERT INTO seq_t VALUES (NEXTVAL('ids'), 99)").unwrap();
    e.execute(c, "ROLLBACK").unwrap();
    e.wal_maintain(0, 10);

    let report = e.crash_recover(CrashKind::LostTail, 0xC0FFEE);
    assert!(report.entries_replayed > 0, "commits should replay from the WAL");

    // The recovered counters must sit past every recovered row: fresh
    // NEXTVAL/AUTO_INCREMENT inserts may not collide with replayed keys.
    let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c, "USE bench").unwrap();
    for i in 0..10i64 {
        e.execute(c, &format!("INSERT INTO seq_t VALUES (NEXTVAL('ids'), {})", 100 + i))
            .unwrap_or_else(|err| panic!("duplicate sequence key after recovery: {err}"));
        e.execute(c, &format!("INSERT INTO auto_t (v) VALUES ({})", 100 + i))
            .unwrap_or_else(|err| panic!("duplicate auto-increment key after recovery: {err}"));
    }
    // The burned (rolled-back) number stays burned across the crash.
    let r = e.execute(c, "SELECT COUNT(*) FROM seq_t WHERE k = 110").unwrap();
    let rows = r.outcome.rows().unwrap();
    assert_eq!(
        rows.rows[0][0],
        replimid_sql::Value::Int(0),
        "rolled-back NEXTVAL number must not be reissued after recovery"
    );
}

#[test]
fn torn_in_progress_checkpoint_falls_back_and_replays() {
    // Two-phase checkpoints: round 8's maintenance stages a new image but
    // the crash hits before the next round completes it. Recovery must
    // detect the damaged in-progress image, fall back to the previous
    // checkpoint, and replay the longer WAL suffix — with zero committed
    // loss, because the WAL itself is fully fsynced here.
    let run = |entropy: u64| {
        let cfg =
            DurabilityConfig { checkpoint_every: 4, fsync_every: 1, two_phase_checkpoint: true };
        let (mut e, c) = durable_engine(cfg);
        e.wal_maintain(0, 0); // completes the staged setup checkpoint
        let mut pos = 0u64;
        loop {
            let i = pos as i64;
            e.execute(c, &format!("INSERT INTO t{} VALUES ({}, 1)", i % 4, 10_000_000 + i))
                .unwrap();
            pos += 1;
            let out = e.wal_maintain(0, pos);
            if pos >= 8 {
                assert!(out.checkpoint_rows.is_some(), "round 8 must stage a checkpoint");
                break;
            }
        }
        let before = e.checksum_data();
        let report = e.crash_recover(CrashKind::TornTail, entropy);
        assert_eq!(e.checksum_data(), before, "fully-fsynced WAL must lose nothing");
        assert_eq!(report.ordered_applied, 8, "replay reaches the end of history");
        report
    };
    let reports: Vec<_> = (0..32u64).map(run).collect();
    let torn = reports
        .iter()
        .find(|r| r.checkpoint_fallback)
        .expect("no entropy tore the staged image");
    assert!(torn.checkpoint_loaded, "fallback still loads the previous checkpoint");
    assert_eq!(torn.entries_replayed, 4, "the suffix past the old checkpoint replays");
}

/// One full crash-recovery scenario, fully determined by `seed`. Returns
/// the recovered (report, checksum) pair so the caller can assert rerun
/// bit-identity.
fn crash_scenario(seed: u64) -> (replimid_sql::RecoveryReport, u64) {
    let mut rng = DetRng::seed_from_u64(seed);
    let cfg = DurabilityConfig {
        checkpoint_every: *detcheck::pick(&mut rng, &[0u64, 4, 16]),
        fsync_every: *detcheck::pick(&mut rng, &[1u64, 4, 8]),
        // Half the scenarios run the two-phase install, so the crash
        // matrix also covers torn in-progress checkpoints.
        two_phase_checkpoint: rng.gen::<bool>(),
    };
    let (mut e, c) = durable_engine(cfg);

    // Committed history with a checksum recorded at every position, plus a
    // running durable floor: the highest position at or below which every
    // WAL byte (or a covering checkpoint) has been fsynced.
    let n = rng.gen_range(5u64..60);
    let mut sums = vec![e.checksum_data()];
    let mut durable_floor = 0u64;
    for i in 0..n {
        let k = 10_000_000 + i as i64;
        let table = rng.gen_range(0u64..4);
        if rng.gen::<bool>() {
            e.execute(c, &format!("INSERT INTO t{table} VALUES ({k}, 1)")).unwrap();
        } else {
            e.execute(c, &format!("INSERT INTO t{table} VALUES ({k}, {})", i % 7)).unwrap();
        }
        e.wal_maintain(0, i + 1);
        sums.push(e.checksum_data());
        let stats = e.wal_stats().unwrap();
        if stats.wal_bytes == stats.wal_synced_bytes {
            durable_floor = i + 1;
        }
    }

    let kind = *detcheck::pick(&mut rng, &[CrashKind::Clean, CrashKind::LostTail, CrashKind::TornTail]);
    let entropy = rng.next_u64();
    let report = e.crash_recover(kind, entropy);
    let recovered = e.checksum_data();

    // Zero committed loss past the durable horizon: recovery lands on an
    // exact committed prefix, at or above the last fsync-covered position,
    // and a clean crash loses nothing at all.
    assert!(
        report.ordered_applied <= n,
        "recovered past the end of history ({} > {n})",
        report.ordered_applied
    );
    assert!(
        report.ordered_applied >= durable_floor,
        "{} crash lost fsynced records: recovered to {} < durable floor {durable_floor}",
        kind.name(),
        report.ordered_applied
    );
    if kind == CrashKind::Clean {
        assert_eq!(report.ordered_applied, n, "clean shutdown must flush everything");
    }
    assert_eq!(
        recovered,
        sums[report.ordered_applied as usize],
        "recovered state is not the committed prefix at position {}",
        report.ordered_applied
    );
    (report, recovered)
}

#[test]
fn crash_recovery_preserves_committed_state() {
    detcheck::check("crash_recovery_preserves_committed_state", 96, |rng| {
        let seed = rng.next_u64();
        let first = crash_scenario(seed);
        let rerun = crash_scenario(seed);
        assert_eq!(first, rerun, "same-seed rerun diverged (seed {seed})");
    });
}
