//! Classic isolation anomalies, used to validate that the engine's levels
//! actually differ in the ways the consistency-spectrum experiment (E10)
//! relies on.

use replimid_sql::{Engine, Outcome, SqlError, Value, ADMIN_PASSWORD, ADMIN_USER};

fn setup() -> (Engine, replimid_sql::ConnId, replimid_sql::ConnId) {
    let (mut e, c1) = Engine::with_database("d");
    e.execute(c1, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT NOT NULL)").unwrap();
    e.execute(c1, "INSERT INTO acct VALUES (1, 50), (2, 50)").unwrap();
    let c2 = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
    e.execute(c2, "USE d").unwrap();
    (e, c1, c2)
}

fn bal(e: &mut Engine, c: replimid_sql::ConnId, id: i64) -> i64 {
    match e
        .execute(c, &format!("SELECT bal FROM acct WHERE id = {id}"))
        .unwrap()
        .outcome
    {
        Outcome::Rows(rs) => rs.rows[0][0].as_int().unwrap(),
        _ => unreachable!(),
    }
}

#[test]
fn lost_update_prevented_under_si() {
    let (mut e, c1, c2) = setup();
    e.execute(c1, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
    e.execute(c2, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
    // Both read 50 and try to add their increment.
    assert_eq!(bal(&mut e, c1, 1), 50);
    assert_eq!(bal(&mut e, c2, 1), 50);
    e.execute(c1, "UPDATE acct SET bal = 60 WHERE id = 1").unwrap();
    // c2's write conflicts with the uncommitted first writer.
    let err = e.execute(c2, "UPDATE acct SET bal = 70 WHERE id = 1").unwrap_err();
    assert!(matches!(err, SqlError::WriteConflict { .. }));
    e.execute(c1, "COMMIT").unwrap();
    e.execute(c2, "ROLLBACK").unwrap();
    assert_eq!(bal(&mut e, c1, 1), 60, "no lost update");
}

#[test]
fn lost_update_possible_under_read_committed() {
    // The paper notes production systems run read committed for speed and
    // live with its anomalies (§4.1.2).
    let (mut e, c1, c2) = setup();
    e.execute(c1, "BEGIN ISOLATION LEVEL READ COMMITTED").unwrap();
    let v1 = bal(&mut e, c1, 1); // reads 50
    // c2 sneaks in a committed update.
    e.execute(c2, "UPDATE acct SET bal = 80 WHERE id = 1").unwrap();
    // c1 writes a value computed from its stale read: last writer wins.
    e.execute(c1, &format!("UPDATE acct SET bal = {} WHERE id = 1", v1 + 10)).unwrap();
    e.execute(c1, "COMMIT").unwrap();
    assert_eq!(bal(&mut e, c1, 1), 60, "c2's update was silently lost");
}

#[test]
fn write_skew_allowed_under_si_rejected_under_serializable() {
    // The canonical SI anomaly: the constraint bal1 + bal2 >= 0 is enforced
    // by each transaction reading BOTH rows, then decrementing one. Under
    // SI both commit (write skew); under serializable one aborts.
    let run = |level: &str| -> Result<i64, SqlError> {
        let (mut e, c1, c2) = setup();
        e.execute(c1, &format!("BEGIN ISOLATION LEVEL {level}")).unwrap();
        e.execute(c2, &format!("BEGIN ISOLATION LEVEL {level}")).unwrap();
        // Each checks the invariant over both rows.
        let total1 = match e.execute(c1, "SELECT SUM(bal) FROM acct").unwrap().outcome {
            Outcome::Rows(rs) => rs.rows[0][0].as_int().unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(total1, 100);
        let _ = e.execute(c2, "SELECT SUM(bal) FROM acct").unwrap();
        // Disjoint writes: c1 drains row 1, c2 drains row 2.
        e.execute(c1, "UPDATE acct SET bal = bal - 80 WHERE id = 1")?;
        e.execute(c2, "UPDATE acct SET bal = bal - 80 WHERE id = 2")?;
        e.execute(c1, "COMMIT")?;
        e.execute(c2, "COMMIT")?;
        let mut total = 0;
        for id in [1, 2] {
            total += bal(&mut e, c1, id);
        }
        Ok(total)
    };
    // SI: both commit; the invariant silently breaks (total -60).
    assert_eq!(run("SNAPSHOT").unwrap(), -60);
    // Serializable: one of the two fails (write conflict or validation).
    let err = run("SERIALIZABLE").unwrap_err();
    assert!(
        matches!(err, SqlError::SerializationFailure(_) | SqlError::WriteConflict { .. }),
        "{err}"
    );
}

#[test]
fn read_committed_sees_each_statements_fresh_snapshot() {
    let (mut e, c1, c2) = setup();
    e.execute(c1, "BEGIN ISOLATION LEVEL READ COMMITTED").unwrap();
    assert_eq!(bal(&mut e, c1, 2), 50);
    e.execute(c2, "UPDATE acct SET bal = 99 WHERE id = 2").unwrap();
    assert_eq!(bal(&mut e, c1, 2), 99, "non-repeatable read, by design");
    e.execute(c1, "COMMIT").unwrap();
}

#[test]
fn for_update_locks_rows_against_concurrent_writers() {
    let (mut e, c1, c2) = setup();
    e.execute(c1, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
    let r = e.execute(c1, "SELECT bal FROM acct WHERE id = 1 FOR UPDATE").unwrap();
    assert!(matches!(r.outcome, Outcome::Rows(_)));
    let err = e.execute(c2, "UPDATE acct SET bal = 0 WHERE id = 1").unwrap_err();
    assert!(matches!(err, SqlError::WriteConflict { .. }), "{err}");
    e.execute(c1, "COMMIT").unwrap();
    // Released after commit.
    e.execute(c2, "UPDATE acct SET bal = 0 WHERE id = 1").unwrap();
}

#[test]
fn dirty_reads_never_happen() {
    let (mut e, c1, c2) = setup();
    e.execute(c1, "BEGIN").unwrap();
    e.execute(c1, "UPDATE acct SET bal = 1234 WHERE id = 1").unwrap();
    // c2 (autocommit read committed) must not see the uncommitted value.
    assert_eq!(bal(&mut e, c2, 1), 50);
    e.execute(c1, "ROLLBACK").unwrap();
    assert_eq!(bal(&mut e, c2, 1), 50);
    let _ = Value::Null;
}
