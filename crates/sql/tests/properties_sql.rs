//! Property-based tests for the SQL substrate.

use proptest::prelude::*;
use replimid_sql::ast::{
    BinOp, ColumnRef, Expr, InsertSource, ObjectName, OrderKey, Select, SelectItem, Statement,
};
use replimid_sql::engine::Engine;
use replimid_sql::expr::like_match;
use replimid_sql::parser::parse_statement;
use replimid_sql::{Outcome, Value, ADMIN_PASSWORD, ADMIN_USER};

// ---------------------------------------------------------------------
// parse(render(stmt)) == stmt
// ---------------------------------------------------------------------

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not reserved", |s| {
        ![
            "where", "join", "inner", "on", "group", "having", "order", "limit", "offset",
            "for", "set", "values", "as", "and", "or", "not", "asc", "desc", "end", "do",
            "begin", "from", "select", "null", "true", "false", "exists", "in", "is", "like",
            "between", "timestamp", "update", "insert", "delete", "create", "drop", "use",
            "commit", "rollback", "grant", "call", "start",
        ]
        .contains(&s.as_str())
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq round-trip comparison.
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Literal),
        arb_ident().prop_map(|name| Expr::Column(ColumnRef { table: None, name })),
        (arb_ident(), arb_ident())
            .prop_map(|(t, name)| Expr::Column(ColumnRef { table: Some(t), name })),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Eq),
                Just(BinOp::Lt),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Concat),
            ])
                .prop_map(|(l, r, op)| Expr::Binary {
                    left: Box::new(l),
                    op,
                    right: Box::new(r)
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 0..3), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (arb_ident(), proptest::collection::vec(inner, 0..3))
                .prop_map(|(name, args)| Expr::Function { name, args }),
        ]
    })
}

fn arb_object_name() -> impl Strategy<Value = ObjectName> {
    (proptest::option::of(arb_ident()), arb_ident())
        .prop_map(|(database, name)| ObjectName { database, name })
}

fn arb_select() -> impl Strategy<Value = Select> {
    (
        proptest::collection::vec(
            (arb_expr(), proptest::option::of(arb_ident()))
                .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            1..3,
        ),
        proptest::option::of(arb_object_name()),
        proptest::option::of(arb_expr()),
        proptest::option::of((arb_expr(), any::<bool>())),
        proptest::option::of(0u64..100),
        proptest::option::of(0u64..100),
        any::<bool>(),
    )
        .prop_map(|(projections, from, filter, order, limit, offset, for_update)| {
            let mut s = Select::empty();
            s.projections = projections;
            s.from = from.map(|name| replimid_sql::ast::TableRef::Table { name, alias: None });
            s.filter = filter;
            if let Some((expr, asc)) = order {
                s.order_by.push(OrderKey { expr, asc });
            }
            s.limit = limit;
            s.offset = offset;
            s.for_update = for_update;
            s
        })
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        arb_select().prop_map(|s| Statement::Select(Box::new(s))),
        (
            arb_object_name(),
            proptest::collection::vec(arb_ident(), 0..3),
            proptest::collection::vec(proptest::collection::vec(arb_expr(), 1..3), 1..3),
        )
            .prop_map(|(table, columns, rows)| {
                // Column count must match each row's arity for realism; the
                // renderer/parser don't care, but keep rows uniform.
                let width = rows[0].len();
                let rows: Vec<Vec<Expr>> =
                    rows.into_iter().map(|mut r| {
                        r.truncate(width);
                        while r.len() < width {
                            r.push(Expr::lit(0i64));
                        }
                        r
                    })
                    .collect();
                let columns = if columns.len() == width { columns } else { Vec::new() };
                Statement::Insert { table, columns, source: InsertSource::Values(rows) }
            }),
        (
            arb_object_name(),
            proptest::collection::vec((arb_ident(), arb_expr()), 1..3),
            proptest::option::of(arb_expr()),
        )
            .prop_map(|(table, assignments, filter)| Statement::Update {
                table,
                assignments,
                filter
            }),
        (arb_object_name(), proptest::option::of(arb_expr()))
            .prop_map(|(table, filter)| Statement::Delete { table, filter }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The statement renderer and parser are inverses: load-bearing for
    /// statement-based replication and recovery-log replay.
    #[test]
    fn render_parse_round_trip(stmt in arb_statement()) {
        let sql = stmt.to_string();
        let reparsed = parse_statement(&sql)
            .unwrap_or_else(|e| panic!("could not re-parse {sql:?}: {e}"));
        prop_assert_eq!(stmt, reparsed, "render/parse mismatch for {}", sql);
    }

    /// LIKE matching agrees with a simple dynamic-programming oracle.
    #[test]
    fn like_agrees_with_oracle(s in "[ab_%]{0,8}", p in "[ab_%]{0,6}") {
        prop_assert_eq!(like_match(&s, &p), like_oracle(&s, &p));
    }

    /// Data checksums are insertion-order independent (replicas insert in
    /// different orders under multi-master; only content may matter).
    #[test]
    fn checksum_order_independence(mut keys in proptest::collection::hash_set(0i64..1000, 1..20)) {
        let keys: Vec<i64> = keys.drain().collect();
        let forward = engine_with_rows(keys.iter().copied());
        let backward = engine_with_rows(keys.iter().rev().copied());
        prop_assert_eq!(forward.checksum_data(), backward.checksum_data());
    }

    /// Snapshot isolation: everything a transaction reads stays stable for
    /// its whole lifetime, regardless of concurrent committed writes.
    #[test]
    fn si_reads_are_repeatable(writes in proptest::collection::vec((1i64..5, 0i64..100), 1..12)) {
        let (mut e, reader) = Engine::with_database("d");
        e.execute(reader, "CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
        for id in 1..5 {
            e.execute(reader, &format!("INSERT INTO t VALUES ({id}, 0)")).unwrap();
        }
        let writer = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
        e.execute(writer, "USE d").unwrap();

        e.execute(reader, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
        let before = read_all(&mut e, reader);
        for (id, v) in writes {
            e.execute(writer, &format!("UPDATE t SET v = {v} WHERE id = {id}")).unwrap();
            let during = read_all(&mut e, reader);
            prop_assert_eq!(&before, &during, "snapshot changed mid-transaction");
        }
        e.execute(reader, "COMMIT").unwrap();
    }
}

fn read_all(e: &mut Engine, c: replimid_sql::ConnId) -> Vec<Vec<Value>> {
    match e.execute(c, "SELECT id, v FROM t ORDER BY id").unwrap().outcome {
        Outcome::Rows(rs) => rs.rows,
        _ => unreachable!(),
    }
}

fn engine_with_rows(keys: impl Iterator<Item = i64>) -> Engine {
    let (mut e, c) = Engine::with_database("d");
    e.execute(c, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
    for k in keys {
        e.execute(c, &format!("INSERT INTO t VALUES ({k}, 'v{k}')")).unwrap();
    }
    let _ = ADMIN_PASSWORD;
    e
}

/// O(n*m) dynamic-programming LIKE oracle.
fn like_oracle(s: &str, p: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; s.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = dp[0][j - 1] && p[j - 1] == '%';
    }
    for i in 1..=s.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && s[i - 1] == c,
            };
        }
    }
    dp[s.len()][p.len()]
}
