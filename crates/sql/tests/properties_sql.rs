//! Property-based tests for the SQL substrate, on the in-tree `detcheck`
//! harness (seeded cases, reproducible by case seed — see crates/det).

use replimid_det::{detcheck, DetRng};
use replimid_sql::ast::{
    BinOp, ColumnRef, Expr, InsertSource, ObjectName, OrderKey, Select, SelectItem, Statement,
};
use replimid_sql::engine::Engine;
use replimid_sql::expr::like_match;
use replimid_sql::parser::parse_statement;
use replimid_sql::{Outcome, Value, ADMIN_PASSWORD, ADMIN_USER};

// ---------------------------------------------------------------------
// Generators (mirroring the strategies of the former proptest suite)
// ---------------------------------------------------------------------

const RESERVED: &[&str] = &[
    "where", "join", "inner", "on", "group", "having", "order", "limit", "offset", "for",
    "set", "values", "as", "and", "or", "not", "asc", "desc", "end", "do", "begin", "from",
    "select", "null", "true", "false", "exists", "in", "is", "like", "between", "timestamp",
    "update", "insert", "delete", "create", "drop", "use", "commit", "rollback", "grant",
    "call", "start",
];

const IDENT_FIRST: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
    'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z',
];

const IDENT_REST: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
    'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '4', '5', '6', '7',
    '8', '9', '_',
];

const TEXT_CHARS: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'B', 'Z', '0', '5', '9', ' ', '\'',
];

fn arb_ident(rng: &mut DetRng) -> String {
    loop {
        let first = *detcheck::pick(rng, IDENT_FIRST);
        let mut s = String::new();
        s.push(first);
        s.push_str(&detcheck::string_from(rng, IDENT_REST, 0, 8));
        if !RESERVED.contains(&s.as_str()) {
            return s;
        }
    }
}

fn arb_value(rng: &mut DetRng) -> Value {
    match rng.gen_range(0..6) {
        0 => Value::Null,
        1 => Value::Int(rng.gen::<i64>()),
        // Finite floats only: NaN breaks PartialEq round-trip comparison.
        2 => Value::Float((rng.gen::<f64>() - 0.5) * 2.0e12),
        3 => Value::Text(detcheck::string_from(rng, TEXT_CHARS, 0, 12)),
        4 => Value::Bool(rng.gen::<bool>()),
        _ => Value::Timestamp(rng.gen::<i64>()),
    }
}

fn arb_expr(rng: &mut DetRng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0..3) {
            0 => Expr::Literal(arb_value(rng)),
            1 => Expr::Column(ColumnRef { table: None, name: arb_ident(rng) }),
            _ => Expr::Column(ColumnRef {
                table: Some(arb_ident(rng)),
                name: arb_ident(rng),
            }),
        };
    }
    match rng.gen_range(0..4) {
        0 => {
            let op = *detcheck::pick(
                rng,
                &[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Eq,
                    BinOp::Lt,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Concat,
                ],
            );
            Expr::Binary {
                left: Box::new(arb_expr(rng, depth - 1)),
                op,
                right: Box::new(arb_expr(rng, depth - 1)),
            }
        }
        1 => Expr::IsNull { expr: Box::new(arb_expr(rng, depth - 1)), negated: rng.gen::<bool>() },
        2 => Expr::InList {
            expr: Box::new(arb_expr(rng, depth - 1)),
            list: detcheck::vec_of(rng, 0, 2, |r| arb_expr(r, depth - 1)),
            negated: rng.gen::<bool>(),
        },
        _ => Expr::Function {
            name: arb_ident(rng),
            args: detcheck::vec_of(rng, 0, 2, |r| arb_expr(r, depth - 1)),
        },
    }
}

fn arb_object_name(rng: &mut DetRng) -> ObjectName {
    ObjectName {
        database: detcheck::option_of(rng, arb_ident),
        name: arb_ident(rng),
    }
}

fn arb_select(rng: &mut DetRng) -> Select {
    let mut s = Select::empty();
    s.projections = detcheck::vec_of(rng, 1, 2, |r| SelectItem::Expr {
        expr: arb_expr(r, 3),
        alias: detcheck::option_of(r, arb_ident),
    });
    s.from = detcheck::option_of(rng, arb_object_name)
        .map(|name| replimid_sql::ast::TableRef::Table { name, alias: None });
    s.filter = detcheck::option_of(rng, |r| arb_expr(r, 3));
    if let Some((expr, asc)) = detcheck::option_of(rng, |r| (arb_expr(r, 3), r.gen::<bool>())) {
        s.order_by.push(OrderKey { expr, asc });
    }
    s.limit = detcheck::option_of(rng, |r| r.gen_range(0u64..100));
    s.offset = detcheck::option_of(rng, |r| r.gen_range(0u64..100));
    s.for_update = rng.gen::<bool>();
    s
}

fn arb_statement(rng: &mut DetRng) -> Statement {
    match rng.gen_range(0..4) {
        0 => Statement::Select(Box::new(arb_select(rng))),
        1 => {
            let table = arb_object_name(rng);
            let columns = detcheck::vec_of(rng, 0, 2, arb_ident);
            let rows =
                detcheck::vec_of(rng, 1, 2, |r| detcheck::vec_of(r, 1, 2, |r2| arb_expr(r2, 3)));
            // Column count must match each row's arity for realism; the
            // renderer/parser don't care, but keep rows uniform.
            let width = rows[0].len();
            let rows: Vec<Vec<Expr>> = rows
                .into_iter()
                .map(|mut r| {
                    r.truncate(width);
                    while r.len() < width {
                        r.push(Expr::lit(0i64));
                    }
                    r
                })
                .collect();
            let columns = if columns.len() == width { columns } else { Vec::new() };
            Statement::Insert { table, columns, source: InsertSource::Values(rows) }
        }
        2 => Statement::Update {
            table: arb_object_name(rng),
            assignments: detcheck::vec_of(rng, 1, 2, |r| (arb_ident(r), arb_expr(r, 3))),
            filter: detcheck::option_of(rng, |r| arb_expr(r, 3)),
        },
        _ => Statement::Delete {
            table: arb_object_name(rng),
            filter: detcheck::option_of(rng, |r| arb_expr(r, 3)),
        },
    }
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

fn assert_round_trip(stmt: &Statement) {
    let sql = stmt.to_string();
    let reparsed =
        parse_statement(&sql).unwrap_or_else(|e| panic!("could not re-parse {sql:?}: {e}"));
    assert_eq!(*stmt, reparsed, "render/parse mismatch for {sql}");
}

/// The statement renderer and parser are inverses: load-bearing for
/// statement-based replication and recovery-log replay.
#[test]
fn render_parse_round_trip() {
    detcheck::check("render_parse_round_trip", 256, |rng| {
        let stmt = arb_statement(rng);
        assert_round_trip(&stmt);
    });
}

/// Regression preserved from the proptest era
/// (crates/sql/tests/properties_sql.proptest-regressions, case
/// 0bfd3c56…): `INSERT INTO a VALUES (NULL + TIMESTAMP '-1')` must survive
/// the render/parse round trip.
#[test]
fn regression_insert_null_plus_timestamp_round_trips() {
    let stmt = Statement::Insert {
        table: ObjectName { database: None, name: "a".to_string() },
        columns: Vec::new(),
        source: InsertSource::Values(vec![vec![Expr::Binary {
            left: Box::new(Expr::Literal(Value::Null)),
            op: BinOp::Add,
            right: Box::new(Expr::Literal(Value::Timestamp(-1))),
        }]]),
    };
    assert_round_trip(&stmt);
}

/// LIKE matching agrees with a simple dynamic-programming oracle.
#[test]
fn like_agrees_with_oracle() {
    const LIKE_CHARS: &[char] = &['a', 'b', '_', '%'];
    detcheck::check("like_agrees_with_oracle", 256, |rng| {
        let s = detcheck::string_from(rng, LIKE_CHARS, 0, 8);
        let p = detcheck::string_from(rng, LIKE_CHARS, 0, 6);
        assert_eq!(like_match(&s, &p), like_oracle(&s, &p), "s={s:?} p={p:?}");
    });
}

/// Data checksums are insertion-order independent (replicas insert in
/// different orders under multi-master; only content may matter).
#[test]
fn checksum_order_independence() {
    detcheck::check("checksum_order_independence", 128, |rng| {
        let mut set = std::collections::BTreeSet::new();
        let n = rng.gen_range(1..20usize);
        while set.len() < n {
            set.insert(rng.gen_range(0i64..1000));
        }
        let keys: Vec<i64> = set.into_iter().collect();
        let forward = engine_with_rows(keys.iter().copied());
        let backward = engine_with_rows(keys.iter().rev().copied());
        assert_eq!(forward.checksum_data(), backward.checksum_data());
    });
}

/// Snapshot isolation: everything a transaction reads stays stable for
/// its whole lifetime, regardless of concurrent committed writes.
#[test]
fn si_reads_are_repeatable() {
    detcheck::check("si_reads_are_repeatable", 128, |rng| {
        let writes =
            detcheck::vec_of(rng, 1, 11, |r| (r.gen_range(1i64..5), r.gen_range(0i64..100)));
        let (mut e, reader) = Engine::with_database("d");
        e.execute(reader, "CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
        for id in 1..5 {
            e.execute(reader, &format!("INSERT INTO t VALUES ({id}, 0)")).unwrap();
        }
        let writer = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
        e.execute(writer, "USE d").unwrap();

        e.execute(reader, "BEGIN ISOLATION LEVEL SNAPSHOT").unwrap();
        let before = read_all(&mut e, reader);
        for (id, v) in writes {
            e.execute(writer, &format!("UPDATE t SET v = {v} WHERE id = {id}")).unwrap();
            let during = read_all(&mut e, reader);
            assert_eq!(before, during, "snapshot changed mid-transaction");
        }
        e.execute(reader, "COMMIT").unwrap();
    });
}

fn read_all(e: &mut Engine, c: replimid_sql::ConnId) -> Vec<Vec<Value>> {
    match e.execute(c, "SELECT id, v FROM t ORDER BY id").unwrap().outcome {
        Outcome::Rows(rs) => rs.rows,
        _ => unreachable!(),
    }
}

fn engine_with_rows(keys: impl Iterator<Item = i64>) -> Engine {
    let (mut e, c) = Engine::with_database("d");
    e.execute(c, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
    for k in keys {
        e.execute(c, &format!("INSERT INTO t VALUES ({k}, 'v{k}')")).unwrap();
    }
    let _ = ADMIN_PASSWORD;
    e
}

/// O(n*m) dynamic-programming LIKE oracle.
fn like_oracle(s: &str, p: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; s.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = dp[0][j - 1] && p[j - 1] == '%';
    }
    for i in 1..=s.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && s[i - 1] == c,
            };
        }
    }
    dp[s.len()][p.len()]
}
