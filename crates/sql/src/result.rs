//! Statement results and the execution cost model.

use crate::mvcc::CommitTs;
use crate::value::Value;
use crate::writeset::Writeset;

/// Rows returned by a SELECT.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// The single value of a single-row, single-column result (common in
    /// tests and aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.rows.first()) {
            (1, Some(r)) if r.len() == 1 => Some(&r[0]),
            _ => None,
        }
    }

    pub fn int(&self) -> Option<i64> {
        self.scalar().and_then(|v| v.as_int())
    }
}

/// What a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// SELECT result.
    Rows(ResultSet),
    /// DML row count.
    Affected(u64),
    /// DDL / transaction control / SET.
    Ack,
}

impl Outcome {
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            Outcome::Rows(r) => Some(r),
            _ => None,
        }
    }

    pub fn affected(&self) -> u64 {
        match self {
            Outcome::Affected(n) => *n,
            _ => 0,
        }
    }
}

/// Cost model constants, in virtual microseconds. These are the knobs the
/// cluster simulator turns into replica busy-time; their absolute values are
/// calibrated to "sub-millisecond OLTP statement" (§4.4.5), and only the
/// *ratios* matter for the reproduced experiment shapes.
pub mod cost_model {
    /// Fixed per-statement overhead (parse, plan, dispatch).
    pub const STATEMENT_BASE_US: u64 = 40;
    /// The lex+parse share of [`STATEMENT_BASE_US`]. A backend executing a
    /// pre-parsed plan (prepared-statement fan-out) skips exactly this much.
    pub const PARSE_US: u64 = 18;
    /// Per row materialized by a scan.
    pub const ROW_READ_US: u64 = 1;
    /// Per row inserted/updated/deleted (index + version maintenance).
    pub const ROW_WRITE_US: u64 = 4;
    /// Extra fixed cost for DDL.
    pub const DDL_US: u64 = 200;
    /// Commit bookkeeping (stamping, logging).
    pub const COMMIT_US: u64 = 15;
}

/// Virtual CPU cost of an executed statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    pub cpu_us: u64,
    pub rows_read: u64,
    pub rows_written: u64,
}

impl Cost {
    pub fn for_statement(rows_read: u64, rows_written: u64, ddl: bool) -> Cost {
        let cpu_us = cost_model::STATEMENT_BASE_US
            + rows_read * cost_model::ROW_READ_US
            + rows_written * cost_model::ROW_WRITE_US
            + if ddl { cost_model::DDL_US } else { 0 };
        Cost { cpu_us, rows_read, rows_written }
    }

    pub fn add(&mut self, other: Cost) {
        self.cpu_us += other.cpu_us;
        self.rows_read += other.rows_read;
        self.rows_written += other.rows_written;
    }
}

/// Information about a commit that happened while executing a statement
/// (explicit COMMIT, or autocommit of a write).
#[derive(Debug, Clone, PartialEq)]
pub struct CommitInfo {
    pub commit_ts: CommitTs,
    /// Extracted writeset (§4.3.2). Note its documented blind spots:
    /// sequence advances, AUTO_INCREMENT counters, and SET variables are
    /// *not* in here.
    pub writeset: Writeset,
}

/// Full result of `Engine::execute`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    pub outcome: Outcome,
    pub cost: Cost,
    /// The statement evaluated NOW()/RAND() — it was non-deterministic.
    pub tainted: bool,
    pub commit: Option<CommitInfo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessor() {
        let rs = ResultSet { columns: vec!["n".into()], rows: vec![vec![Value::Int(5)]] };
        assert_eq!(rs.int(), Some(5));
        let empty = ResultSet::default();
        assert_eq!(empty.scalar(), None);
    }

    #[test]
    fn cost_accumulates() {
        let mut c = Cost::for_statement(10, 2, false);
        let base = c.cpu_us;
        c.add(Cost::for_statement(0, 0, true));
        assert!(c.cpu_us > base + cost_model::DDL_US);
        assert_eq!(c.rows_read, 10);
    }
}
