//! Error taxonomy for the SQL engine.
//!
//! The paper (§4.1.2) stresses that *how* an engine reacts to a statement
//! error differs across RDBMSes (PostgreSQL poisons the transaction, MySQL
//! keeps going). The error kinds here are deliberately fine-grained so the
//! replication middleware can distinguish retryable conflicts from
//! deterministic failures that must be replayed identically on every replica.

use std::fmt;

use crate::value::DataType;

/// Any error produced while parsing or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexer/parser error: malformed SQL.
    Parse { pos: usize, message: String },
    /// Unknown database instance.
    UnknownDatabase(String),
    /// Unknown table (qualified name as written).
    UnknownTable(String),
    /// Unknown column.
    UnknownColumn(String),
    /// Unknown sequence.
    UnknownSequence(String),
    /// Unknown stored procedure.
    UnknownProcedure(String),
    /// Unknown function in an expression.
    UnknownFunction(String),
    /// Object already exists (table, database, sequence, user...).
    AlreadyExists(String),
    /// Value/type mismatch on insert, update or comparison.
    TypeMismatch { expected: DataType, got: String },
    /// NOT NULL or primary-key constraint violated.
    ConstraintViolation(String),
    /// Duplicate primary key.
    DuplicateKey(String),
    /// Write-write conflict under snapshot isolation (first-committer-wins)
    /// or a concurrent uncommitted writer holds the row. Retryable.
    WriteConflict { table: String, detail: String },
    /// Serializable (1SR) commit-time read validation failed. Retryable.
    SerializationFailure(String),
    /// Statement issued outside/inside a transaction where not permitted,
    /// or the transaction was already aborted (PostgreSQL-style poisoning).
    TransactionState(String),
    /// Authentication / privilege failure.
    AccessDenied(String),
    /// Wrong number/type of arguments to a function or procedure.
    Arity { name: String, expected: usize, got: usize },
    /// Division by zero or similar arithmetic fault.
    Arithmetic(String),
    /// Feature genuinely unsupported by this engine *version* — used to
    /// model version-skewed heterogeneous clusters (§4.1.3).
    Unsupported(String),
    /// Internal invariant violation; indicates an engine bug.
    Internal(String),
}

impl SqlError {
    pub fn parse(pos: usize, message: impl Into<String>) -> Self {
        SqlError::Parse { pos, message: message.into() }
    }

    /// Errors after which a client may retry the whole transaction and
    /// reasonably expect success (concurrency artifacts, not logic errors).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SqlError::WriteConflict { .. } | SqlError::SerializationFailure(_)
        )
    }

    /// Errors that are *deterministic*: replaying the same statement against
    /// the same state fails the same way on every replica, so a replicated
    /// system may broadcast them safely.
    pub fn is_deterministic(&self) -> bool {
        !self.is_retryable()
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            SqlError::UnknownDatabase(n) => write!(f, "unknown database '{n}'"),
            SqlError::UnknownTable(n) => write!(f, "unknown table '{n}'"),
            SqlError::UnknownColumn(n) => write!(f, "unknown column '{n}'"),
            SqlError::UnknownSequence(n) => write!(f, "unknown sequence '{n}'"),
            SqlError::UnknownProcedure(n) => write!(f, "unknown procedure '{n}'"),
            SqlError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            SqlError::AlreadyExists(n) => write!(f, "object '{n}' already exists"),
            SqlError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            SqlError::ConstraintViolation(m) => write!(f, "constraint violation: {m}"),
            SqlError::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            SqlError::WriteConflict { table, detail } => {
                write!(f, "write conflict on '{table}': {detail}")
            }
            SqlError::SerializationFailure(m) => write!(f, "serialization failure: {m}"),
            SqlError::TransactionState(m) => write!(f, "transaction state: {m}"),
            SqlError::AccessDenied(m) => write!(f, "access denied: {m}"),
            SqlError::Arity { name, expected, got } => {
                write!(f, "{name} expects {expected} argument(s), got {got}")
            }
            SqlError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SqlError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(SqlError::WriteConflict { table: "t".into(), detail: String::new() }
            .is_retryable());
        assert!(SqlError::SerializationFailure("r".into()).is_retryable());
        assert!(!SqlError::DuplicateKey("k".into()).is_retryable());
        assert!(SqlError::DuplicateKey("k".into()).is_deterministic());
    }
}
