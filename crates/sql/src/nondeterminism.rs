//! Static non-determinism analysis of statements (§4.3.2) and the query
//! rewriting that statement-based replication applies before broadcast.
//!
//! Three hazard classes from the paper:
//!
//! 1. **Time macros** (`NOW()`, `CURRENT_TIMESTAMP`) — rewritable: replace
//!    with a literal evaluated once at the middleware.
//! 2. **Random macros** (`RAND()`) — rewritable only when the macro yields a
//!    single value for the whole statement; `UPDATE t SET x = rand()`
//!    assigns per-row values, so hardcoding one value changes semantics.
//!    We classify per-row-context RAND as *unrewritable*.
//! 3. **Under-ordered LIMIT** — `SELECT ... LIMIT n` without an ORDER BY on
//!    a (unique) key feeding a write makes each replica pick different rows.
//!    Not rewritable in general; flagged so the middleware can fall back to
//!    writeset replication or reject.

use crate::ast::{Expr, InsertSource, Select, Statement};
use crate::value::Value;

/// Result of scanning a statement for replication-hazardous constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaintReport {
    /// Uses NOW()/CURRENT_TIMESTAMP.
    pub uses_now: bool,
    /// Uses RAND() in a single-value position (rewritable).
    pub uses_rand_scalar: bool,
    /// Uses RAND() in a per-row position (NOT rewritable).
    pub uses_rand_per_row: bool,
    /// A write statement depends on a SELECT with LIMIT but no ORDER BY.
    pub unordered_limit: bool,
}

impl TaintReport {
    pub fn is_deterministic(&self) -> bool {
        !(self.uses_now
            || self.uses_rand_scalar
            || self.uses_rand_per_row
            || self.unordered_limit)
    }

    /// Safe to broadcast after [`rewrite_time_macros`] — i.e. all hazards
    /// are rewritable ones.
    pub fn rewritable(&self) -> bool {
        !self.uses_rand_per_row && !self.unordered_limit
    }
}

/// Scan a statement. Only *write* statements matter for replication safety;
/// reads are never broadcast. Read-only statements still get a report (all
/// flags may be set) — callers decide.
pub fn analyze(stmt: &Statement) -> TaintReport {
    let mut report = TaintReport::default();
    match stmt {
        Statement::Update { assignments, filter, .. } => {
            // Assignment expressions are evaluated per affected row.
            for (_, e) in assignments {
                scan_expr(e, true, &mut report);
            }
            if let Some(w) = filter {
                scan_expr(w, false, &mut report);
            }
        }
        Statement::Insert { source, .. } => match source {
            InsertSource::Values(rows) => {
                for row in rows {
                    for e in row {
                        // Each VALUES cell is evaluated once: scalar context.
                        scan_expr(e, false, &mut report);
                    }
                }
            }
            InsertSource::Select(s) => scan_select(s, &mut report),
        },
        Statement::Delete { filter: Some(w), .. } => scan_expr(w, false, &mut report),
        Statement::Select(s) => scan_select(s, &mut report),
        Statement::Call { args, name: _ } => {
            for a in args {
                scan_expr(a, false, &mut report);
            }
            // The body is opaque; the middleware cannot prove determinism.
            // (Body-level analysis happens at CREATE PROCEDURE time via
            // `analyze_body`.)
        }
        Statement::CreateProcedure { body, .. } | Statement::CreateTrigger { body, .. } => {
            for st in body {
                let r = analyze(st);
                merge(&mut report, r);
            }
        }
        Statement::Set { value, .. } => scan_expr(value, false, &mut report),
        _ => {}
    }
    report
}

fn merge(into: &mut TaintReport, from: TaintReport) {
    into.uses_now |= from.uses_now;
    into.uses_rand_scalar |= from.uses_rand_scalar;
    into.uses_rand_per_row |= from.uses_rand_per_row;
    into.unordered_limit |= from.unordered_limit;
}

fn scan_select(s: &Select, report: &mut TaintReport) {
    if s.limit.is_some() && s.order_by.is_empty() {
        report.unordered_limit = true;
    }
    s.walk_exprs(&mut |e| match e {
        Expr::Function { name, .. } if name == "now" || name == "current_timestamp" => {
            report.uses_now = true;
        }
        Expr::Function { name, .. } if name == "rand" || name == "random" => {
            // Inside a select, RAND is per-row whenever there is a FROM.
            if s.from.is_some() {
                report.uses_rand_per_row = true;
            } else {
                report.uses_rand_scalar = true;
            }
        }
        Expr::InSelect { select, .. }
        | Expr::ScalarSubquery(select)
        | Expr::Exists { select, .. }
            if select.limit.is_some() && select.order_by.is_empty() =>
        {
            report.unordered_limit = true;
        }
        _ => {}
    });
}

fn scan_expr(e: &Expr, per_row: bool, report: &mut TaintReport) {
    e.walk(&mut |node| match node {
        Expr::Function { name, .. } if name == "now" || name == "current_timestamp" => {
            report.uses_now = true;
        }
        Expr::Function { name, .. } if name == "rand" || name == "random" => {
            if per_row {
                report.uses_rand_per_row = true;
            } else {
                report.uses_rand_scalar = true;
            }
        }
        Expr::InSelect { select, .. }
        | Expr::ScalarSubquery(select)
        | Expr::Exists { select, .. } => {
            if select.limit.is_some() && select.order_by.is_empty() {
                report.unordered_limit = true;
            }
            let mut sub = TaintReport::default();
            scan_select(select, &mut sub);
            report.uses_now |= sub.uses_now;
            report.uses_rand_per_row |= sub.uses_rand_per_row;
            report.uses_rand_scalar |= sub.uses_rand_scalar;
            report.unordered_limit |= sub.unordered_limit;
        }
        _ => {}
    });
}

/// Rewrite time macros to literals: NOW()/CURRENT_TIMESTAMP become the given
/// timestamp. Returns the number of substitutions. This is the "simple query
/// rewriting" of §4.3.2; it requires all replicas to be in the same timezone,
/// which our virtual clock trivially satisfies.
pub fn rewrite_time_macros(stmt: &mut Statement, now_us: i64) -> usize {
    let mut n = 0;
    stmt.walk_exprs_mut(&mut |e| {
        if let Expr::Function { name, .. } = e {
            if name == "now" || name == "current_timestamp" {
                *e = Expr::Literal(Value::Timestamp(now_us));
                n += 1;
            }
        }
    });
    n
}

/// Rewrite *scalar-context* RAND() calls to a literal drawn once at the
/// middleware. Per-row RAND must not be rewritten (the paper's
/// `UPDATE t SET x=rand()` example); callers must check
/// [`TaintReport::uses_rand_per_row`] first.
pub fn rewrite_scalar_rand(stmt: &mut Statement, value: f64) -> usize {
    let mut n = 0;
    match stmt {
        Statement::Insert { source: InsertSource::Values(rows), .. } => {
            for row in rows {
                for e in row {
                    e.walk_mut(&mut |node| {
                        if let Expr::Function { name, .. } = node {
                            if name == "rand" || name == "random" {
                                *node = Expr::Literal(Value::Float(value));
                                n += 1;
                            }
                        }
                    });
                }
            }
        }
        Statement::Set { value: v, .. } => {
            v.walk_mut(&mut |node| {
                if let Expr::Function { name, .. } = node {
                    if name == "rand" || name == "random" {
                        *node = Expr::Literal(Value::Float(value));
                        n += 1;
                    }
                }
            });
        }
        _ => {}
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn report(sql: &str) -> TaintReport {
        analyze(&parse_statement(sql).unwrap())
    }

    #[test]
    fn clean_statement() {
        let r = report("UPDATE t SET x = 1 WHERE id = 3");
        assert!(r.is_deterministic());
        assert!(r.rewritable());
    }

    #[test]
    fn now_is_rewritable() {
        let r = report("INSERT INTO t (ts) VALUES (now())");
        assert!(r.uses_now && !r.uses_rand_per_row);
        assert!(r.rewritable());
    }

    #[test]
    fn per_row_rand_is_not_rewritable() {
        // The paper's example: UPDATE t SET x=rand().
        let r = report("UPDATE t SET x = rand()");
        assert!(r.uses_rand_per_row);
        assert!(!r.rewritable());
    }

    #[test]
    fn scalar_rand_is_rewritable() {
        let r = report("INSERT INTO t (x) VALUES (rand())");
        assert!(r.uses_rand_scalar && !r.uses_rand_per_row);
        assert!(r.rewritable());
    }

    #[test]
    fn unordered_limit_in_update_subquery() {
        // The paper's §4.3.2 SELECT ... LIMIT example.
        let r = report(
            "UPDATE foo SET keyvalue = 'x' WHERE id IN \
             (SELECT id FROM foo WHERE keyvalue IS NULL LIMIT 10)",
        );
        assert!(r.unordered_limit);
        assert!(!r.rewritable());
    }

    #[test]
    fn ordered_limit_is_fine() {
        let r = report(
            "UPDATE foo SET keyvalue = 'x' WHERE id IN \
             (SELECT id FROM foo WHERE keyvalue IS NULL ORDER BY id LIMIT 10)",
        );
        assert!(!r.unordered_limit);
        assert!(r.rewritable());
    }

    #[test]
    fn rewrite_time() {
        let mut stmt = parse_statement("INSERT INTO t (ts, x) VALUES (now(), 1)").unwrap();
        let n = rewrite_time_macros(&mut stmt, 123_000);
        assert_eq!(n, 1);
        assert!(stmt.to_string().contains("TIMESTAMP 123000"));
        assert!(analyze(&stmt).is_deterministic());
    }

    #[test]
    fn rewrite_rand_scalar_only() {
        let mut ins = parse_statement("INSERT INTO t (x) VALUES (rand())").unwrap();
        assert_eq!(rewrite_scalar_rand(&mut ins, 0.25), 1);
        assert!(analyze(&ins).is_deterministic());
        // Per-row update is untouched by design.
        let mut upd = parse_statement("UPDATE t SET x = rand()").unwrap();
        assert_eq!(rewrite_scalar_rand(&mut upd, 0.25), 0);
    }

    #[test]
    fn procedure_bodies_are_scanned_at_create_time() {
        let r = report(
            "CREATE PROCEDURE p() AS BEGIN UPDATE t SET x = rand(); END",
        );
        assert!(r.uses_rand_per_row);
    }
}
