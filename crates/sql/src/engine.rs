//! The database engine: sessions, transaction lifecycle, DDL, privileges,
//! binlog, writeset capture, dump/restore, and writeset application.
//!
//! One `Engine` models one replica's RDBMS process, hosting multiple
//! database instances (§4.1.1). It is deliberately configurable to imitate
//! the behavioural differences the paper catalogues: error handling modes
//! (§4.1.2), missing snapshot isolation (§4.1.2), temp-table restrictions
//! (§4.1.4), and version-gated features (§4.1.3).

use std::collections::{BTreeMap, HashMap};

use crate::ast::{IsolationLevel, ObjectName, Privilege, Statement};
use crate::auth::{AuthRegistry, ADMIN_USER};
use crate::binlog::{Binlog, Lsn};
use crate::catalog::{Catalog, ProcedureDef, TriggerDef};
use crate::checksum::Fnv64;
use crate::det::Determinism;
use crate::dump::{DatabaseDump, Dump, DumpOptions, TableDump};
use crate::error::SqlError;
use crate::exec::{self, StmtCtx};
use crate::mvcc::{CommitTs, Snapshot, TxId, TxManager, WriteKind};
use crate::parser::parse_statement;
use crate::result::{CommitInfo, Cost, ExecResult, Outcome};
use crate::sequence::Sequences;
use crate::storage::{Table, TableSchema};
use crate::value::Value;
use crate::wal::WalMaintain;
use crate::writeset::{CounterSync, Writeset};

/// How the engine reacts to a failed statement inside an explicit
/// transaction (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMode {
    /// PostgreSQL: the transaction is poisoned; only ROLLBACK (or COMMIT,
    /// which rolls back) is accepted afterwards.
    AbortTransaction,
    /// MySQL: the transaction continues; the client decides.
    ContinueTransaction,
}

/// Feature switches modelling cross-engine differences (§4.1.2–§4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    /// Sybase and (per the paper) MySQL lack snapshot isolation.
    pub snapshot_isolation: bool,
    /// Sybase does not authorize temporary tables within transactions.
    pub temp_tables_in_tx: bool,
}

impl Default for FeatureSet {
    fn default() -> Self {
        FeatureSet { snapshot_isolation: true, temp_tables_in_tx: true }
    }
}

/// Engine configuration. The default models a PostgreSQL-flavoured engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Replica name, for diagnostics.
    pub name: String,
    /// Seed for RAND(); give each replica a different one.
    pub seed: u64,
    pub default_isolation: IsolationLevel,
    pub error_mode: ErrorMode,
    /// Record committed write transactions in the binlog.
    pub binlog: bool,
    /// Ship sequence/auto-increment counters inside writesets (the paper's
    /// industrial-agenda fix; off by default to reproduce the gap).
    pub capture_counters: bool,
    /// Honor [`CounterSync`] when applying writesets.
    pub apply_counter_sync: bool,
    pub features: FeatureSet,
    /// Engine major version, for heterogeneous-cluster experiments: queries
    /// can be gated on replica versions by the middleware.
    pub version: u32,
    /// Durable storage ([`crate::wal`]): committed transactions mirror into
    /// an on-"disk" WAL, periodic checkpoints truncate it, and crash
    /// recovery replays the suffix. `None` (the default) keeps the
    /// pre-durability behavior where state survives crashes by fiat.
    pub durability: Option<crate::wal::DurabilityConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            name: "replica".into(),
            seed: 0,
            default_isolation: IsolationLevel::ReadCommitted,
            error_mode: ErrorMode::AbortTransaction,
            binlog: true,
            capture_counters: false,
            apply_counter_sync: false,
            features: FeatureSet::default(),
            version: 1,
            durability: None,
        }
    }
}

impl EngineConfig {
    /// MySQL-flavoured: continues after errors, no snapshot isolation.
    pub fn mysqlish(name: impl Into<String>, seed: u64) -> Self {
        EngineConfig {
            name: name.into(),
            seed,
            error_mode: ErrorMode::ContinueTransaction,
            features: FeatureSet { snapshot_isolation: false, temp_tables_in_tx: true },
            ..Default::default()
        }
    }

    /// Sybase-flavoured: no SI, no temp tables inside transactions.
    pub fn sybasish(name: impl Into<String>, seed: u64) -> Self {
        EngineConfig {
            name: name.into(),
            seed,
            features: FeatureSet { snapshot_isolation: false, temp_tables_in_tx: false },
            ..Default::default()
        }
    }
}

/// Connection identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

#[derive(Debug)]
struct Session {
    user: String,
    current_db: Option<String>,
    tx: Option<TxId>,
    /// True when the open transaction was started with BEGIN.
    explicit: bool,
    vars: BTreeMap<String, Value>,
    /// Connection-local temporary tables (§4.1.4).
    temp: BTreeMap<String, Table>,
    /// SQL texts of write statements in the open transaction (binlog).
    tx_statements: Vec<String>,
}

/// One replica's database engine.
#[derive(Debug)]
pub struct Engine {
    pub config: EngineConfig,
    catalog: Catalog,
    seqs: Sequences,
    txm: TxManager,
    auth: AuthRegistry,
    det: Determinism,
    binlog: Binlog,
    sessions: HashMap<ConnId, Session>,
    next_conn: u64,
    durable: Option<crate::wal::DurableStore>,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        let det = Determinism::new(config.seed);
        let durable = config.durability.map(crate::wal::DurableStore::new);
        Engine {
            config,
            catalog: Catalog::new(),
            seqs: Sequences::new(),
            txm: TxManager::new(),
            auth: AuthRegistry::new(),
            det,
            binlog: Binlog::new(),
            sessions: HashMap::new(),
            next_conn: 1,
            durable,
        }
    }

    /// Convenience: a default engine with an admin connection and one
    /// database selected.
    pub fn with_database(name: &str) -> (Engine, ConnId) {
        let mut e = Engine::new(EngineConfig::default());
        let conn = e.connect(ADMIN_USER, crate::auth::ADMIN_PASSWORD).expect("admin login");
        e.execute(conn, &format!("CREATE DATABASE {name}")).expect("create db");
        e.execute(conn, &format!("USE {name}")).expect("use db");
        (e, conn)
    }

    /// Set the engine's virtual wall clock (driven by the simulator).
    pub fn set_clock(&mut self, now_us: i64) {
        self.det.set_now(now_us);
    }

    pub fn connect(&mut self, user: &str, password: &str) -> Result<ConnId, SqlError> {
        let user = self.auth.authenticate(user, password)?;
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.sessions.insert(
            id,
            Session {
                user,
                current_db: None,
                tx: None,
                explicit: false,
                vars: BTreeMap::new(),
                temp: BTreeMap::new(),
                tx_statements: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Close a connection: abort any open transaction and drop its
    /// temporary tables (the implicit cleanup §4.1.4 describes).
    pub fn disconnect(&mut self, conn: ConnId) {
        if let Some(mut session) = self.sessions.remove(&conn) {
            if let Some(tx) = session.tx.take() {
                let _ = abort_tx(&mut self.catalog, &mut session.temp, &mut self.txm, tx);
            }
        }
    }

    pub fn connection_count(&self) -> usize {
        self.sessions.len()
    }

    pub fn active_transactions(&self) -> usize {
        self.txm.active_count()
    }

    /// Parse and execute one statement on a connection.
    pub fn execute(&mut self, conn: ConnId, sql: &str) -> Result<ExecResult, SqlError> {
        let stmt = parse_statement(sql)?;
        self.execute_parsed(conn, &stmt, Some(sql))
    }

    /// Execute an already-parsed statement (the middleware "wire format").
    pub fn execute_ast(&mut self, conn: ConnId, stmt: &Statement) -> Result<ExecResult, SqlError> {
        self.execute_parsed(conn, stmt, None)
    }

    /// Execute a pre-parsed plan shipped by the middleware's plan cache. The
    /// backend never sees SQL text, so the lex+parse share of the fixed
    /// per-statement cost is not charged.
    pub fn execute_prepared(
        &mut self,
        conn: ConnId,
        stmt: &Statement,
    ) -> Result<ExecResult, SqlError> {
        let mut res = self.execute_parsed(conn, stmt, None)?;
        res.cost.cpu_us = res.cost.cpu_us.saturating_sub(crate::result::cost_model::PARSE_US);
        Ok(res)
    }

    fn execute_parsed(
        &mut self,
        conn: ConnId,
        stmt: &Statement,
        sql_text: Option<&str>,
    ) -> Result<ExecResult, SqlError> {
        self.det.begin_statement();
        let mut session = self
            .sessions
            .remove(&conn)
            .ok_or_else(|| SqlError::AccessDenied(format!("no such connection {conn:?}")))?;
        let result = self.dispatch(&mut session, stmt, sql_text);
        self.sessions.insert(conn, session);
        result
    }

    fn dispatch(
        &mut self,
        session: &mut Session,
        stmt: &Statement,
        sql_text: Option<&str>,
    ) -> Result<ExecResult, SqlError> {
        // Poisoned-transaction protocol (PostgreSQL mode, §4.1.2).
        if let Some(tx) = session.tx {
            let poisoned = self.txm.state(tx).map(|s| s.poisoned).unwrap_or(false);
            if poisoned {
                match stmt {
                    Statement::Rollback | Statement::Commit => {
                        abort_tx(&mut self.catalog, &mut session.temp, &mut self.txm, tx)?;
                        session.tx = None;
                        session.explicit = false;
                        session.tx_statements.clear();
                        return Ok(ack(Cost::for_statement(0, 0, false), false));
                    }
                    _ => {
                        return Err(SqlError::TransactionState(
                            "transaction is aborted; issue ROLLBACK first".into(),
                        ))
                    }
                }
            }
        }

        match stmt {
            Statement::Begin { isolation } => self.do_begin(session, *isolation),
            Statement::Commit => self.do_commit(session),
            Statement::Rollback => self.do_rollback(session),
            Statement::UseDatabase { name } => {
                self.catalog.database(name)?;
                self.auth.check(&session.user, name, Privilege::Read)?;
                session.current_db = Some(name.clone());
                Ok(ack(Cost::for_statement(0, 0, false), false))
            }
            Statement::CreateDatabase { .. }
            | Statement::DropDatabase { .. }
            | Statement::CreateSequence { .. }
            | Statement::DropSequence { .. }
            | Statement::CreateUser { .. }
            | Statement::DropUser { .. }
            | Statement::Grant { .. }
            | Statement::CreateTrigger { .. }
            | Statement::DropTrigger { .. }
            | Statement::CreateProcedure { .. }
            | Statement::DropProcedure { .. }
            | Statement::DropTable { .. }
            | Statement::CreateTable { .. } => self.do_ddl(session, stmt, sql_text),
            _ => self.do_dml(session, stmt, sql_text),
        }
    }

    fn do_begin(
        &mut self,
        session: &mut Session,
        isolation: Option<IsolationLevel>,
    ) -> Result<ExecResult, SqlError> {
        if session.tx.is_some() && session.explicit {
            return Err(SqlError::TransactionState("transaction already open".into()));
        }
        let isolation = isolation.unwrap_or(self.config.default_isolation);
        if matches!(isolation, IsolationLevel::SnapshotIsolation | IsolationLevel::Serializable)
            && !self.config.features.snapshot_isolation
        {
            return Err(SqlError::Unsupported(format!(
                "engine '{}' does not provide {isolation}",
                self.config.name
            )));
        }
        let tx = self.txm.begin(isolation, false);
        session.tx = Some(tx);
        session.explicit = true;
        session.tx_statements.clear();
        Ok(ack(Cost::for_statement(0, 0, false), false))
    }

    fn do_commit(&mut self, session: &mut Session) -> Result<ExecResult, SqlError> {
        let Some(tx) = session.tx.take() else {
            // Committing with no transaction open is a no-op warning in most
            // engines.
            return Ok(ack(Cost::for_statement(0, 0, false), false));
        };
        session.explicit = false;
        let statements = std::mem::take(&mut session.tx_statements);
        let commit = commit_tx(
            &mut self.catalog,
            &mut session.temp,
            &mut self.txm,
            &mut self.seqs,
            &mut self.binlog,
            &self.config,
            tx,
            session.current_db.clone(),
            statements,
        )?;
        let mut cost = Cost::for_statement(0, 0, false);
        cost.cpu_us += crate::result::cost_model::COMMIT_US;
        Ok(ExecResult { outcome: Outcome::Ack, cost, tainted: false, commit: Some(commit) })
    }

    fn do_rollback(&mut self, session: &mut Session) -> Result<ExecResult, SqlError> {
        if let Some(tx) = session.tx.take() {
            abort_tx(&mut self.catalog, &mut session.temp, &mut self.txm, tx)?;
        }
        session.explicit = false;
        session.tx_statements.clear();
        Ok(ack(Cost::for_statement(0, 0, false), false))
    }

    /// DDL executes immediately and is **not transactional**: it commits on
    /// its own and is not undone by ROLLBACK (§4.3.2). It is still recorded
    /// in the binlog for replication.
    fn do_ddl(
        &mut self,
        session: &mut Session,
        stmt: &Statement,
        sql_text: Option<&str>,
    ) -> Result<ExecResult, SqlError> {
        let current = session.current_db.clone();
        let resolve_db = |name: &ObjectName| -> Result<String, SqlError> {
            match &name.database {
                Some(d) => Ok(d.clone()),
                None => current
                    .clone()
                    .ok_or_else(|| SqlError::UnknownDatabase("(none selected)".into())),
            }
        };
        let mut replicate = true;
        match stmt {
            Statement::CreateDatabase { name, if_not_exists } => {
                self.require_admin(session)?;
                self.catalog.create_database(name, *if_not_exists)?;
            }
            Statement::DropDatabase { name } => {
                self.require_admin(session)?;
                self.catalog.drop_database(name)?;
                self.seqs.drop_database(name);
            }
            Statement::CreateTable { name, columns, temporary, if_not_exists } => {
                if *temporary {
                    // Temp tables are session-local DDL: never replicated.
                    replicate = false;
                    if session.tx.is_some() && !self.config.features.temp_tables_in_tx {
                        return Err(SqlError::Unsupported(format!(
                            "engine '{}' does not authorize temporary tables within transactions",
                            self.config.name
                        )));
                    }
                    if session.temp.contains_key(&name.name) {
                        if *if_not_exists {
                            return Ok(ack(Cost::for_statement(0, 0, true), false));
                        }
                        return Err(SqlError::AlreadyExists(name.name.clone()));
                    }
                    let schema = TableSchema::new(name.name.clone(), columns.clone());
                    session.temp.insert(name.name.clone(), Table::new(schema));
                } else {
                    let db = resolve_db(name)?;
                    self.auth.check(&session.user, &db, Privilege::Write)?;
                    let database = self.catalog.database_mut(&db)?;
                    if database.tables.contains_key(&name.name) {
                        if *if_not_exists {
                            return Ok(ack(Cost::for_statement(0, 0, true), false));
                        }
                        return Err(SqlError::AlreadyExists(name.to_string()));
                    }
                    let schema = TableSchema::new(name.name.clone(), columns.clone());
                    database.tables.insert(name.name.clone(), Table::new(schema));
                }
            }
            Statement::DropTable { name, if_exists } => {
                if name.database.is_none() && session.temp.remove(&name.name).is_some() {
                    replicate = false;
                } else {
                    let db = resolve_db(name)?;
                    self.auth.check(&session.user, &db, Privilege::Write)?;
                    let database = self.catalog.database_mut(&db)?;
                    if database.tables.remove(&name.name).is_none() && !*if_exists {
                        return Err(SqlError::UnknownTable(name.to_string()));
                    }
                }
            }
            Statement::CreateSequence { name, start, if_not_exists } => {
                let db = resolve_db(name)?;
                self.auth.check(&session.user, &db, Privilege::Write)?;
                self.catalog.database(&db)?;
                self.seqs.create(&db, &name.name, *start, *if_not_exists)?;
            }
            Statement::DropSequence { name } => {
                let db = resolve_db(name)?;
                self.auth.check(&session.user, &db, Privilege::Write)?;
                self.seqs.drop(&db, &name.name)?;
            }
            Statement::CreateUser { name, password } => {
                self.require_admin(session)?;
                self.auth.create_user(name, password)?;
            }
            Statement::DropUser { name } => {
                self.require_admin(session)?;
                self.auth.drop_user(name)?;
            }
            Statement::Grant { privilege, database, user } => {
                self.require_admin(session)?;
                self.catalog.database(database)?;
                self.auth.grant(user, database, *privilege)?;
            }
            Statement::CreateTrigger { name, event, table, body } => {
                let db = resolve_db(table)?;
                self.auth.check(&session.user, &db, Privilege::Write)?;
                let database = self.catalog.database_mut(&db)?;
                database.table(&table.name)?;
                if database.triggers.iter().any(|t| t.name == *name) {
                    return Err(SqlError::AlreadyExists(format!("trigger {name}")));
                }
                database.triggers.push(TriggerDef {
                    name: name.clone(),
                    event: *event,
                    table: table.name.clone(),
                    body: body.clone(),
                });
            }
            Statement::DropTrigger { name, table } => {
                let db = resolve_db(table)?;
                self.auth.check(&session.user, &db, Privilege::Write)?;
                let database = self.catalog.database_mut(&db)?;
                let before = database.triggers.len();
                database.triggers.retain(|t| t.name != *name);
                if database.triggers.len() == before {
                    return Err(SqlError::UnknownTable(format!("trigger {name}")));
                }
            }
            Statement::CreateProcedure { name, params, body } => {
                let db = resolve_db(name)?;
                self.auth.check(&session.user, &db, Privilege::Write)?;
                let database = self.catalog.database_mut(&db)?;
                if database.procedures.contains_key(&name.name) {
                    return Err(SqlError::AlreadyExists(name.to_string()));
                }
                database.procedures.insert(
                    name.name.clone(),
                    ProcedureDef {
                        name: name.name.clone(),
                        params: params.clone(),
                        body: body.clone(),
                    },
                );
            }
            Statement::DropProcedure { name } => {
                let db = resolve_db(name)?;
                self.auth.check(&session.user, &db, Privilege::Write)?;
                let database = self.catalog.database_mut(&db)?;
                database
                    .procedures
                    .remove(&name.name)
                    .ok_or_else(|| SqlError::UnknownProcedure(name.to_string()))?;
            }
            other => return Err(SqlError::Internal(format!("not DDL: {other}"))),
        }
        // DDL auto-commits: record it in the binlog as a statement-only
        // entry so log-shipping slaves replay it.
        if replicate && self.config.binlog {
            let text = sql_text.map(str::to_string).unwrap_or_else(|| stmt.to_string());
            let ts = self.bump_ddl_ts();
            self.binlog
                .append(ts, session.current_db.clone(), vec![text], Writeset::default());
        }
        Ok(ack(Cost::for_statement(0, 0, true), false))
    }

    /// Allocate a commit timestamp for a DDL operation (so later snapshots
    /// order after it).
    fn bump_ddl_ts(&mut self) -> CommitTs {
        let tx = self.txm.begin(IsolationLevel::ReadCommitted, true);
        let (ts, _) = self.txm.finish_commit(tx).expect("fresh tx");
        ts
    }

    fn require_admin(&self, session: &Session) -> Result<(), SqlError> {
        if session.user == ADMIN_USER {
            Ok(())
        } else {
            Err(SqlError::AccessDenied(format!(
                "user {} is not the administrator",
                session.user
            )))
        }
    }

    /// DML / SELECT / CALL / SET: runs inside a transaction (implicit when
    /// none is open).
    fn do_dml(
        &mut self,
        session: &mut Session,
        stmt: &Statement,
        sql_text: Option<&str>,
    ) -> Result<ExecResult, SqlError> {
        self.check_privileges(session, stmt)?;

        let (tx, implicit) = match session.tx {
            Some(tx) => (tx, false),
            None => {
                let tx = self.txm.begin(self.config.default_isolation, true);
                session.tx = Some(tx);
                (tx, true)
            }
        };

        let mut ctx = StmtCtx {
            catalog: &mut self.catalog,
            temp: &mut session.temp,
            seqs: &mut self.seqs,
            det: &mut self.det,
            txm: &mut self.txm,
            tx,
            current_db: session.current_db.clone(),
            vars: session.vars.clone(),
            depth: 0,
            rows_read: 0,
            rows_written: 0,
        };
        let exec_result = exec::stmt::execute_inner(&mut ctx, stmt);
        let (rows_read, rows_written) = (ctx.rows_read, ctx.rows_written);
        let vars_after = std::mem::take(&mut ctx.vars);
        drop(ctx);
        if matches!(stmt, Statement::Set { .. }) {
            session.vars = vars_after;
        }
        let tainted = self.det.tainted;

        match exec_result {
            Ok(outcome) => {
                if !stmt.is_read_only() {
                    let text =
                        sql_text.map(str::to_string).unwrap_or_else(|| stmt.to_string());
                    session.tx_statements.push(text);
                }
                let cost = Cost::for_statement(rows_read, rows_written, false);
                let commit = if implicit {
                    session.tx = None;
                    let statements = std::mem::take(&mut session.tx_statements);
                    Some(commit_tx(
                        &mut self.catalog,
                        &mut session.temp,
                        &mut self.txm,
                        &mut self.seqs,
                        &mut self.binlog,
                        &self.config,
                        tx,
                        session.current_db.clone(),
                        statements,
                    )?)
                } else {
                    None
                };
                Ok(ExecResult { outcome, cost, tainted, commit })
            }
            Err(e) => {
                if implicit {
                    session.tx = None;
                    session.tx_statements.clear();
                    abort_tx(&mut self.catalog, &mut session.temp, &mut self.txm, tx)?;
                } else if self.config.error_mode == ErrorMode::AbortTransaction {
                    self.txm.state_mut(tx)?.poisoned = true;
                }
                Err(e)
            }
        }
    }

    fn check_privileges(&self, session: &Session, stmt: &Statement) -> Result<(), SqlError> {
        let resolve = |t: &ObjectName| -> Option<String> {
            match &t.database {
                Some(d) => Some(d.clone()),
                None => {
                    // Unqualified names may be temp tables (no privilege
                    // needed) or live in the current database.
                    if session.temp.contains_key(&t.name) {
                        None
                    } else {
                        session.current_db.clone()
                    }
                }
            }
        };
        for t in stmt.read_tables() {
            if let Some(db) = resolve(&t) {
                self.auth.check(&session.user, &db, Privilege::Read)?;
            }
        }
        for t in stmt.written_tables() {
            if let Some(db) = resolve(&t) {
                self.auth.check(&session.user, &db, Privilege::Write)?;
            }
        }
        // CALL needs write on its database: bodies are opaque (§4.2.1).
        if let Statement::Call { name, .. } = stmt {
            if let Some(db) = resolve(name) {
                self.auth.check(&session.user, &db, Privilege::Write)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Replication support APIs (used by the middleware)
    // ------------------------------------------------------------------

    /// Apply an extracted writeset as one transaction (transaction-based
    /// replication, §4.3.2). Rows are located by primary key. Sequence and
    /// auto-increment counters are **not** touched — the paper's documented
    /// divergence channel — unless the writeset carries a [`CounterSync`]
    /// and this engine is configured with `apply_counter_sync`.
    pub fn apply_writeset(&mut self, ws: &Writeset) -> Result<ExecResult, SqlError> {
        let tx = self.txm.begin(IsolationLevel::SnapshotIsolation, true);
        let snap = self.txm.statement_snapshot(tx)?;
        let result = self.apply_writeset_inner(ws, snap);
        match result {
            Ok(()) => {
                let mut empty_temp = BTreeMap::new();
                let commit = commit_tx(
                    &mut self.catalog,
                    &mut empty_temp,
                    &mut self.txm,
                    &mut self.seqs,
                    &mut self.binlog,
                    &self.config,
                    tx,
                    None,
                    vec![format!("-- applied writeset ({} rows)", ws.len())],
                )?;
                if self.config.apply_counter_sync {
                    if let Some(cs) = &ws.counters {
                        self.apply_counter_sync(cs)?;
                    }
                }
                Ok(ExecResult {
                    outcome: Outcome::Affected(ws.len() as u64),
                    cost: Cost::for_statement(0, ws.len() as u64, false),
                    tainted: false,
                    commit: Some(commit),
                })
            }
            Err(e) => {
                let mut empty_temp = BTreeMap::new();
                abort_tx(&mut self.catalog, &mut empty_temp, &mut self.txm, tx)?;
                Err(e)
            }
        }
    }

    fn apply_writeset_inner(&mut self, ws: &Writeset, snap: Snapshot) -> Result<(), SqlError> {
        for entry in &ws.entries {
            if entry.temp {
                continue;
            }
            let table = self
                .catalog
                .database_mut(&entry.database)?
                .table_mut(&entry.table)?;
            let pk = table.schema.primary_key;
            let locate = |table: &Table, image: &[Value]| -> Option<crate::mvcc::RowId> {
                match pk {
                    Some(pk) => table.lookup_pk(&image[pk], snap),
                    None => table
                        .scan(snap)
                        .find(|(_, vals)| *vals == image)
                        .map(|(id, _)| id),
                }
            };
            let applied_row = match entry.kind {
                WriteKind::Insert => {
                    let new = entry.new.clone().ok_or_else(|| {
                        SqlError::Internal("insert writeset entry without image".into())
                    })?;
                    table.insert(new, snap)?
                }
                WriteKind::Update => {
                    let old = entry.old.as_ref().ok_or_else(|| {
                        SqlError::Internal("update writeset entry without before-image".into())
                    })?;
                    let new = entry.new.clone().ok_or_else(|| {
                        SqlError::Internal("update writeset entry without after-image".into())
                    })?;
                    let id = locate(table, old).ok_or_else(|| SqlError::WriteConflict {
                        table: entry.table.clone(),
                        detail: "row to update not found (divergence?)".into(),
                    })?;
                    table.update(id, new, snap, true).map_err(|e| match e {
                        crate::storage::ConflictOrError::Conflict(k) => SqlError::WriteConflict {
                            table: entry.table.clone(),
                            detail: format!("{k:?}"),
                        },
                        crate::storage::ConflictOrError::Error(e) => e,
                    })?;
                    id
                }
                WriteKind::Delete => {
                    let old = entry.old.as_ref().ok_or_else(|| {
                        SqlError::Internal("delete writeset entry without before-image".into())
                    })?;
                    let id = locate(table, old).ok_or_else(|| SqlError::WriteConflict {
                        table: entry.table.clone(),
                        detail: "row to delete not found (divergence?)".into(),
                    })?;
                    table.delete(id, snap, true).map_err(|e| match e {
                        crate::storage::ConflictOrError::Conflict(k) => SqlError::WriteConflict {
                            table: entry.table.clone(),
                            detail: format!("{k:?}"),
                        },
                        crate::storage::ConflictOrError::Error(e) => e,
                    })?;
                    id
                }
            };
            // Register the write so commit stamping finds the versions.
            self.txm.state_mut(snap.tx)?.writes.push(crate::mvcc::WriteRecord {
                database: entry.database.clone(),
                table: entry.table.clone(),
                row: applied_row,
                kind: entry.kind,
                old: entry.old.clone(),
                new: entry.new.clone(),
                temp: false,
            });
        }
        Ok(())
    }

    fn apply_counter_sync(&mut self, cs: &CounterSync) -> Result<(), SqlError> {
        for ((db, seq), v) in &cs.sequences {
            self.seqs.set(db, seq, *v);
        }
        for ((db, table), v) in &cs.auto_increments {
            if let Ok(t) = self.catalog.database_mut(db).and_then(|d| d.table_mut(table)) {
                t.auto_inc = (*v).max(t.auto_inc);
            }
        }
        Ok(())
    }

    /// Extract the writeset of a connection's *open* transaction without
    /// committing it — what a certification-based middleware needs at the
    /// client's COMMIT, before deciding the transaction's fate (§4.3.2).
    pub fn pending_writeset(&self, conn: ConnId) -> Result<Writeset, SqlError> {
        let session = self
            .sessions
            .get(&conn)
            .ok_or_else(|| SqlError::AccessDenied(format!("no such connection {conn:?}")))?;
        let tx = session
            .tx
            .ok_or_else(|| SqlError::TransactionState("no open transaction".into()))?;
        let st = self.txm.state(tx)?;
        let entries: Vec<_> = st.writes.iter().filter(|w| !w.temp).cloned().collect();
        Ok(Writeset { entries, counters: None })
    }

    /// Read binlog entries after `after`; `None` means the log was purged
    /// past that point and the consumer must resynchronize from a dump.
    pub fn binlog_after(&self, after: Lsn) -> Option<Vec<crate::binlog::BinlogEntry>> {
        self.binlog.read_after(after).map(|s| s.to_vec())
    }

    pub fn binlog_head(&self) -> Lsn {
        self.binlog.head()
    }

    pub fn truncate_binlog(&mut self, up_to: Lsn) {
        self.binlog.truncate(up_to);
    }

    /// Checksum of committed table data (divergence detection).
    pub fn checksum_data(&self) -> u64 {
        let ts = self.txm.latest_ts();
        let mut h = Fnv64::new();
        for (name, db) in &self.catalog.databases {
            h.write_str(name);
            for table in db.tables.values() {
                table.checksum_into(ts, &mut h);
            }
        }
        h.finish()
    }

    /// Checksum including the non-versioned state the paper flags as
    /// divergence channels: sequences and auto-increment counters.
    pub fn checksum_full(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.checksum_data());
        for ((db, name), v) in self.seqs.iter() {
            h.write_str(db);
            h.write_str(name);
            h.write_u64(v as u64);
        }
        for (name, db) in &self.catalog.databases {
            h.write_str(name);
            for (tname, t) in &db.tables {
                h.write_str(tname);
                h.write_u64(t.auto_inc as u64);
            }
        }
        h.finish()
    }

    /// Take a consistent dump of committed state (§4.4.1).
    pub fn dump(&self, opts: DumpOptions) -> Dump {
        let at_ts = self.txm.latest_ts();
        let mut databases = Vec::new();
        for (name, db) in &self.catalog.databases {
            let tables = db
                .tables
                .values()
                .map(|t| TableDump {
                    name: t.schema.name.clone(),
                    columns: t.schema.columns.clone(),
                    rows: t.committed_rows(at_ts),
                    auto_inc: t.auto_inc,
                })
                .collect();
            databases.push(DatabaseDump {
                name: name.clone(),
                tables,
                sequences: self.seqs.in_database(name).map(|(n, v)| (n.to_string(), v)).collect(),
                triggers: if opts.include_programs { db.triggers.clone() } else { Vec::new() },
                procedures: if opts.include_programs {
                    db.procedures.values().cloned().collect()
                } else {
                    Vec::new()
                },
            });
        }
        let users = if opts.include_principals {
            Some(self.auth.users().cloned().collect())
        } else {
            None
        };
        Dump { at_ts, databases, users, checksum: self.checksum_data() }
    }

    /// Restore a dump, replacing the databases it contains. Principals are
    /// only restored when the dump carries them — otherwise the §4.1.5 gap
    /// bites: the restored clone has no application users.
    pub fn restore(&mut self, dump: &Dump) -> Result<(), SqlError> {
        // Allocate one commit timestamp covering the whole restore so the
        // loaded rows are visible to every later snapshot.
        let tx = self.txm.begin(IsolationLevel::ReadCommitted, true);
        let (restore_ts, _) = self.txm.finish_commit(tx)?;
        for dbd in &dump.databases {
            self.catalog.databases.remove(&dbd.name);
            self.seqs.drop_database(&dbd.name);
            let mut db = crate::catalog::Database::new(dbd.name.clone());
            for td in &dbd.tables {
                let schema = TableSchema::new(td.name.clone(), td.columns.clone());
                let mut table = Table::new(schema);
                let snap = Snapshot { ts: CommitTs::ZERO, tx };
                let mut inserted = Vec::with_capacity(td.rows.len());
                for row in &td.rows {
                    inserted.push(table.insert(row.clone(), snap)?);
                }
                for id in inserted {
                    table.commit_stamp(id, tx, restore_ts);
                }
                table.auto_inc = td.auto_inc;
                db.tables.insert(td.name.clone(), table);
            }
            db.triggers = dbd.triggers.clone();
            for p in &dbd.procedures {
                db.procedures.insert(p.name.clone(), p.clone());
            }
            for (name, v) in &dbd.sequences {
                self.seqs.set(&dbd.name, name, *v);
            }
            self.catalog.databases.insert(dbd.name.clone(), db);
        }
        if let Some(users) = &dump.users {
            self.auth.restore_users(users.clone());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Durable storage (crate::wal): WAL mirroring, checkpoints, recovery
    // ------------------------------------------------------------------

    pub fn has_durability(&self) -> bool {
        self.durable.is_some()
    }

    /// Mirror newly committed binlog entries into the WAL, record changed
    /// replication positions, fsync per policy, and checkpoint per policy.
    /// The node actor calls this after every operation and converts the
    /// accumulated [`IoCounters`] into virtual time. No-op without
    /// durability.
    pub fn wal_maintain(&mut self, applied_lsn: u64, ordered_applied: u64) -> WalMaintain {
        let mut out = WalMaintain::default();
        if self.durable.is_none() {
            return out;
        }
        let counters = self.current_counters();
        let store = self.durable.as_mut().expect("checked above");
        // Phase 2 of a two-phase install staged last round: the staged
        // image covers everything currently in the WAL, so it must
        // complete before this round appends anything new. No-op (and no
        // IO) unless an install is pending.
        store.complete_checkpoint();
        let head = self.binlog.head().0;
        if head > store.logged_head {
            match self.binlog.read_after(Lsn(store.logged_head)) {
                Some(entries) => {
                    for e in entries {
                        store.append_commit(e, applied_lsn, ordered_applied);
                        out.appended += 1;
                    }
                }
                // The binlog was purged past the mirror cursor (maintenance
                // skipped across a truncation): resume at the current head.
                None => store.logged_head = head,
            }
        } else if store.meta_changed(applied_lsn, ordered_applied) {
            store.append_meta(applied_lsn, ordered_applied);
            out.appended += 1;
        }
        // §4.2.3: sequence/AUTO_INCREMENT bumps are non-transactional, so
        // commit records alone cannot recover them. Mirror them whenever
        // they moved — after the commits of this round, so replay applies
        // data first, then the counter positions that followed it.
        if store.counters_changed(&counters) {
            store.append_counters(&counters);
            out.appended += 1;
        }
        store.maybe_fsync();
        if store.should_checkpoint() {
            out.checkpoint_rows = Some(self.wal_force_checkpoint(applied_lsn, ordered_applied));
        }
        out
    }

    /// Snapshot current state to the checkpoint device and truncate the
    /// WAL, regardless of the periodic policy. Returns rows snapshotted
    /// (for CPU cost accounting). No-op without durability.
    pub fn wal_force_checkpoint(&mut self, applied_lsn: u64, ordered_applied: u64) -> u64 {
        if self.durable.is_none() {
            return 0;
        }
        let dump = self.dump(DumpOptions::full());
        let rows = dump.row_count();
        let c = crate::wal::Checkpoint {
            dump,
            applied_lsn,
            ordered_applied,
            binlog_head: self.binlog.head().0,
        };
        let counters = self.current_counters();
        if let Some(store) = self.durable.as_mut() {
            store.install_checkpoint(&c);
            // The checkpoint's dump carries the counters; the WAL no longer
            // needs a record until they move again.
            store.note_counters(counters);
        }
        rows
    }

    /// Snapshot of the non-transactional counters recovery must preserve:
    /// every sequence, plus the AUTO_INCREMENT position of every table that
    /// declares an auto-increment column. Empty for schemas using neither,
    /// so counter-free workloads write no extra WAL records.
    pub fn current_counters(&self) -> CounterSync {
        let mut cs = CounterSync::default();
        for (key, v) in self.seqs.iter() {
            cs.sequences.push((key.clone(), v));
        }
        for (db_name, db) in &self.catalog.databases {
            for (t_name, t) in &db.tables {
                if t.schema.columns.iter().any(|c| c.auto_increment) {
                    cs.auto_increments.push(((db_name.clone(), t_name.clone()), t.auto_inc));
                }
            }
        }
        cs
    }

    /// Drain IO work performed since the last drain (node actors convert
    /// this to virtual disk time).
    pub fn take_io(&mut self) -> crate::wal::IoCounters {
        self.durable.as_mut().map(|s| s.take_io()).unwrap_or_default()
    }

    pub fn wal_stats(&self) -> Option<crate::wal::WalStats> {
        self.durable.as_ref().map(|s| s.stats())
    }

    /// Die and come back: apply crash semantics to the durable devices,
    /// rebuild the engine from the latest checkpoint, truncate any torn
    /// tail at the first bad checksum, and replay the surviving WAL suffix.
    /// Returns what recovery measured; the caller charges IO + CPU time
    /// and resyncs the remainder from peers.
    pub fn crash_recover(
        &mut self,
        kind: crate::wal::CrashKind,
        entropy: u64,
    ) -> crate::wal::RecoveryReport {
        let mut store = self.durable.take().expect("crash_recover requires durability");
        store.crash(kind, entropy);
        let (checkpoint, records, torn, ckpt_fallback) = store.load();

        // Rebirth: every byte of volatile state is gone; only the two
        // device images survive.
        let config = self.config.clone();
        *self = Engine::new(EngineConfig { durability: None, ..config.clone() });
        self.config = config;

        let mut report = crate::wal::RecoveryReport {
            torn_truncated: torn,
            checkpoint_fallback: ckpt_fallback,
            ..Default::default()
        };
        if let Some(c) = &checkpoint {
            self.restore(&c.dump).expect("checkpoint restore");
            self.binlog.rebase(c.binlog_head);
            report.checkpoint_loaded = true;
            report.checkpoint_rows = c.dump.row_count();
            report.applied_lsn = c.applied_lsn;
            report.ordered_applied = c.ordered_applied;
        }

        // Replay the suffix with binlog appends suppressed: each replayed
        // entry is re-pushed verbatim afterwards, so the reborn binlog
        // holds the original statements/writesets, not a paraphrase.
        let binlog_was = self.config.binlog;
        self.config.binlog = false;
        let mut replay_conn: Option<ConnId> = None;
        for rec in &records {
            match rec {
                crate::wal::WalRecord::Commit { entry, applied_lsn, ordered_applied } => {
                    if entry.lsn.0 > self.binlog.head().0 {
                        if !entry.writeset.is_empty() {
                            let r = self
                                .apply_writeset(&entry.writeset)
                                .expect("WAL writeset replay against own checkpoint");
                            report.replay_cpu_us +=
                                r.cost.cpu_us.max(entry.writeset.len() as u64 * 4);
                        } else {
                            // Statement-only entries are auto-committed DDL.
                            let conn = match replay_conn {
                                Some(c) => c,
                                None => {
                                    let c = self
                                        .connect(ADMIN_USER, crate::auth::ADMIN_PASSWORD)
                                        .expect("replay connection");
                                    replay_conn = Some(c);
                                    c
                                }
                            };
                            if let Some(db) = &entry.default_db {
                                self.execute(conn, &format!("USE {db}"))
                                    .expect("WAL replay USE");
                            }
                            for stmt in &entry.statements {
                                let r =
                                    self.execute(conn, stmt).expect("WAL DDL replay");
                                report.replay_cpu_us += r.cost.cpu_us;
                            }
                        }
                        self.binlog.push_raw(entry.clone());
                        report.entries_replayed += 1;
                    }
                    report.applied_lsn = report.applied_lsn.max(*applied_lsn);
                    report.ordered_applied = report.ordered_applied.max(*ordered_applied);
                }
                crate::wal::WalRecord::Meta { applied_lsn, ordered_applied } => {
                    report.applied_lsn = report.applied_lsn.max(*applied_lsn);
                    report.ordered_applied = report.ordered_applied.max(*ordered_applied);
                }
                // Counter records are a local redo of non-transactional
                // state; unconditional, unlike the writeset-carried
                // `CounterSync` which is gated on `apply_counter_sync`.
                crate::wal::WalRecord::Counters(cs) => {
                    // Under two-phase checkpoints the surviving WAL can
                    // hold records the restored snapshot already covers;
                    // counters only move forward, so a monotonic merge
                    // ignores the stale ones. (Forward-only replay makes
                    // the merge an identity in atomic mode.)
                    let cur = self.current_counters();
                    let mut merged = cs.clone();
                    for (key, v) in merged.sequences.iter_mut() {
                        if let Some((_, c)) = cur.sequences.iter().find(|(k, _)| k == key) {
                            *v = (*v).max(*c);
                        }
                    }
                    self.apply_counter_sync(&merged).expect("counter replay");
                }
            }
        }
        if let Some(c) = replay_conn {
            self.disconnect(c);
        }
        self.config.binlog = binlog_was;
        store.rearm(self.binlog.head().0, report.applied_lsn, report.ordered_applied);
        store.note_counters(self.current_counters());
        self.durable = Some(store);
        report
    }

    /// Operator-facing backup: the full engine state in the exact byte
    /// format crash recovery consumes ([`crate::wal::Checkpoint`]).
    pub fn snapshot_bytes(&self, applied_lsn: u64, ordered_applied: u64) -> Vec<u8> {
        let c = crate::wal::Checkpoint {
            dump: self.dump(DumpOptions::full()),
            applied_lsn,
            ordered_applied,
            binlog_head: self.binlog.head().0,
        };
        crate::wal::encode_checkpoint(&c)
    }

    /// Operator-facing restore from [`Engine::snapshot_bytes`] output (or a
    /// checkpoint image lifted off a replica's durable device). Returns the
    /// `(applied_lsn, ordered_applied)` positions the snapshot covers.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(u64, u64), SqlError> {
        let c = crate::wal::decode_checkpoint(bytes)
            .map_err(|e| SqlError::Internal(format!("snapshot decode: {e}")))?;
        self.restore(&c.dump)?;
        Ok((c.applied_lsn, c.ordered_applied))
    }

    /// Vacuum all tables (routine maintenance, §4.4.4). Returns versions
    /// reclaimed.
    pub fn vacuum(&mut self) -> usize {
        let horizon = self.txm.gc_horizon();
        let mut reclaimed = 0;
        for db in self.catalog.databases.values_mut() {
            for t in db.tables.values_mut() {
                reclaimed += t.vacuum(horizon);
            }
        }
        reclaimed
    }

    /// Introspection for tests and the middleware's schema cache.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn sequences(&self) -> &Sequences {
        &self.seqs
    }

    /// Primary-key column index of a table, if any (used by certifiers).
    pub fn pk_of(&self, db: &str, table: &str) -> Option<usize> {
        self.catalog
            .database(db)
            .ok()
            .and_then(|d| d.table(table).ok())
            .and_then(|t| t.schema.primary_key)
    }
}

fn ack(cost: Cost, tainted: bool) -> ExecResult {
    ExecResult { outcome: Outcome::Ack, cost, tainted, commit: None }
}

/// Commit a transaction: serializable validation, version stamping, writeset
/// extraction, binlog append.
#[allow(clippy::too_many_arguments)]
fn commit_tx(
    catalog: &mut Catalog,
    temp: &mut BTreeMap<String, Table>,
    txm: &mut TxManager,
    seqs: &mut Sequences,
    binlog: &mut Binlog,
    config: &EngineConfig,
    tx: TxId,
    default_db: Option<String>,
    statements: Vec<String>,
) -> Result<CommitInfo, SqlError> {
    // Serializable: table-level optimistic read validation.
    {
        let st = txm.state(tx)?;
        if st.isolation == IsolationLevel::Serializable {
            let snapshot_ts = st.snapshot_ts;
            for (db, table) in &st.read_tables {
                if let Ok(d) = catalog.database(db) {
                    if let Ok(t) = d.table(table) {
                        if t.last_commit_ts > snapshot_ts {
                            // Abort before allocating a commit timestamp.
                            let reads = format!("{db}.{table}");
                            abort_tx(catalog, temp, txm, tx)?;
                            return Err(SqlError::SerializationFailure(format!(
                                "table {reads} changed after snapshot"
                            )));
                        }
                    }
                }
            }
        }
    }

    let (ts, state) = txm.finish_commit(tx)?;
    for w in &state.writes {
        if w.temp {
            if let Some(t) = temp.get_mut(&w.table) {
                t.commit_stamp(w.row, tx, ts);
            }
        } else if let Ok(d) = catalog.database_mut(&w.database) {
            if let Ok(t) = d.table_mut(&w.table) {
                t.commit_stamp(w.row, tx, ts);
            }
        }
    }

    let entries: Vec<_> = state.writes.iter().filter(|w| !w.temp).cloned().collect();
    let counters = if config.capture_counters && !entries.is_empty() {
        let mut cs = CounterSync::default();
        for (key, v) in seqs.iter() {
            cs.sequences.push((key.clone(), v));
        }
        for (db, table) in (Writeset { entries: entries.clone(), counters: None }).tables() {
            if let Ok(t) = catalog.database(&db).and_then(|d| d.table(&table)) {
                cs.auto_increments.push(((db, table), t.auto_inc));
            }
        }
        Some(cs)
    } else {
        None
    };
    let writeset = Writeset { entries, counters };

    if config.binlog && !writeset.is_empty() {
        binlog.append(ts, default_db, statements, writeset.clone());
    }
    Ok(CommitInfo { commit_ts: ts, writeset })
}

/// Abort a transaction: unwind version chains. Sequences, auto-increment
/// counters and DDL are *not* restored (§4.2.3/§4.3.2).
fn abort_tx(
    catalog: &mut Catalog,
    temp: &mut BTreeMap<String, Table>,
    txm: &mut TxManager,
    tx: TxId,
) -> Result<(), SqlError> {
    let state = txm.finish_abort(tx)?;
    for w in state.writes.iter().rev() {
        if w.temp {
            if let Some(t) = temp.get_mut(&w.table) {
                t.abort_unwind(w.row, tx);
            }
        } else if let Ok(d) = catalog.database_mut(&w.database) {
            if let Ok(t) = d.table_mut(&w.table) {
                t.abort_unwind(w.row, tx);
            }
        }
    }
    Ok(())
}
