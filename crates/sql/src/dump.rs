//! Dump/restore — the backup substrate (§4.4.1, §4.1.5).
//!
//! A dump is a consistent snapshot of committed data at one commit
//! timestamp. The paper's two backup gaps are modelled explicitly:
//!
//! * **Principals are optional and off by default** (`include_principals`) —
//!   like real ETL tools, a default dump loses users and grants, so a clone
//!   restored from it refuses application logins (§4.1.5).
//! * **Programs (triggers, procedures) are optional and off by default**
//!   (`include_programs`) — restoring without them silently changes write
//!   behaviour on the clone.
//!
//! Temporary tables are never dumped: they are connection-local state that
//! "cannot be made part of the snapshot" (§4.1.4).

use crate::ast::ColumnDef;
use crate::auth::User;
use crate::catalog::{ProcedureDef, TriggerDef};
use crate::mvcc::CommitTs;
use crate::value::Value;

/// What to include in a dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DumpOptions {
    /// Users and grants. Default **false** (the §4.1.5 gap).
    pub include_principals: bool,
    /// Triggers and stored procedures. Default **false**.
    pub include_programs: bool,
}

impl DumpOptions {
    /// Everything — what the paper argues backup tools *should* capture.
    pub fn full() -> Self {
        DumpOptions { include_principals: true, include_programs: true }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableDump {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    pub rows: Vec<Vec<Value>>,
    /// AUTO_INCREMENT counter at dump time.
    pub auto_inc: i64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseDump {
    pub name: String,
    pub tables: Vec<TableDump>,
    /// (sequence name, next value).
    pub sequences: Vec<(String, i64)>,
    pub triggers: Vec<TriggerDef>,
    pub procedures: Vec<ProcedureDef>,
}

/// A complete engine dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Dump {
    /// Commit timestamp the snapshot is consistent at.
    pub at_ts: CommitTs,
    pub databases: Vec<DatabaseDump>,
    /// Present only with `include_principals`.
    pub users: Option<Vec<User>>,
    /// Data checksum at `at_ts`, for restore verification.
    pub checksum: u64,
}

impl Dump {
    /// Approximate size in rows, for transfer-time modelling.
    pub fn row_count(&self) -> u64 {
        self.databases
            .iter()
            .flat_map(|d| d.tables.iter())
            .map(|t| t.rows.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_reproduce_the_gap() {
        let opts = DumpOptions::default();
        assert!(!opts.include_principals);
        assert!(!opts.include_programs);
        let full = DumpOptions::full();
        assert!(full.include_principals && full.include_programs);
    }
}
