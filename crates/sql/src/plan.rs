//! Prepared-statement normalization and plan caching.
//!
//! The middleware pays a "practice tax" the theory ignores (PAPER §4): every
//! statement arriving as SQL text is lexed and parsed at admission, and — in
//! a naive implementation — re-parsed for table extraction, certification and
//! on every backend. This module provides the parse-once fast path:
//!
//! 1. [`normalize`] tokenizes a statement and extracts its literals into a
//!    params vector, producing a *template key* (`SELECT v FROM t WHERE k = 7`
//!    → `select v from t where k = ?`, params `[7]`). Only plain DML
//!    (SELECT/INSERT/UPDATE/DELETE) is normalized; DDL, transaction control
//!    and procedure calls are rare enough to take the slow path.
//! 2. [`PlanCache`] is a bounded LRU from template key to the parsed template
//!    AST plus precomputed routing facts (read-only classification, written
//!    tables). A hit skips the parser entirely.
//! 3. [`bind`] clones the template and substitutes `Expr::Param(i)` nodes
//!    with the extracted literals, reconstructing the statement the client
//!    sent without ever re-reading its text.
//!
//! Normalization is *conservative*: any statement whose template would parse
//! differently from the original text is left un-normalized (returns `None`)
//! and flows through the existing parse path. The guards below encode the
//! grammar positions where a literal is load-bearing:
//!
//! * `LIMIT`/`OFFSET` counts and `TIMESTAMP <int>` literals stay inline —
//!   the parser requires an integer token there, `?` would not parse;
//! * a unary minus directly before a number folds into a single negative
//!   parameter (matching the parser's literal folding) only in positions
//!   where the minus is unambiguously unary;
//! * `NULL` is a keyword, not a literal token, so it stays in the key:
//!   `... = NULL` and `... = 'NULL'` normalize to different templates.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::ast::{ObjectName, Statement};
use crate::error::SqlError;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::parser::parse_statement;
use crate::value::Value;

/// A statement reduced to its parameterized shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalForm {
    /// Cache key: the statement with literals replaced by `?`, idents
    /// lowercased, tokens space-separated. Parseable SQL in its own right.
    pub key: String,
    /// Extracted literals, in textual order (matching `Expr::Param` indices).
    pub params: Vec<Value>,
}

/// Normalize a statement for cache lookup. Returns `None` when the statement
/// is not safely cacheable (non-DML, tokenizer error, or a raw `?` already
/// present — parameter indices would misalign).
pub fn normalize(sql: &str) -> Option<NormalForm> {
    let toks = tokenize(sql).ok()?;
    match toks.first().map(|t| &t.kind) {
        Some(TokenKind::Ident(w))
            if ["select", "insert", "update", "delete"]
                .iter()
                .any(|k| w.eq_ignore_ascii_case(k)) => {}
        _ => return None,
    }

    let mut key = String::with_capacity(sql.len());
    let mut params = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !key.is_empty() {
            key.push(' ');
        }
        match &toks[i].kind {
            // A raw placeholder in client SQL: refuse, the extracted params
            // would not line up with the template's indices.
            TokenKind::Question => return None,
            TokenKind::Int(v) => {
                if int_must_stay_inline(&toks, i) {
                    key.push_str(&v.to_string());
                } else {
                    key.push('?');
                    params.push(Value::Int(*v));
                }
            }
            TokenKind::Float(x) => {
                key.push('?');
                params.push(Value::Float(*x));
            }
            TokenKind::Str(s) => {
                key.push('?');
                params.push(Value::Text(s.clone()));
            }
            TokenKind::Minus
                if unary_position(&toks, i) && folds_to_negative(&toks, i) =>
            {
                // `(-5)` parses as the literal -5, not NEG(5); fold the sign
                // into the parameter so binding reproduces the same AST.
                match &toks[i + 1].kind {
                    TokenKind::Int(v) => params.push(Value::Int(-v)),
                    TokenKind::Float(x) => params.push(Value::Float(-x)),
                    _ => unreachable!("folds_to_negative checked the lookahead"),
                }
                key.push('?');
                i += 1; // consume the number as well
            }
            other => key.push_str(&token_text(other)),
        }
        i += 1;
    }
    Some(NormalForm { key, params })
}

/// Integer literals the grammar requires to be inline integer tokens:
/// `LIMIT n`, `OFFSET n`, `TIMESTAMP n` and `TIMESTAMP -n`.
fn int_must_stay_inline(toks: &[Token], i: usize) -> bool {
    let kw_at = |j: usize, kws: &[&str]| {
        matches!(&toks[j].kind, TokenKind::Ident(w)
            if kws.iter().any(|k| w.eq_ignore_ascii_case(k)))
    };
    if i >= 1 && kw_at(i - 1, &["limit", "offset", "timestamp"]) {
        return true;
    }
    // `TIMESTAMP - 5`: the sign is part of the timestamp literal.
    i >= 2 && toks[i - 1].kind == TokenKind::Minus && kw_at(i - 2, &["timestamp"])
}

/// True when the minus at `toks[i]` is unambiguously a unary sign: at the
/// start of an expression position. After an ident/number/`)` it is (or may
/// be) binary subtraction and must stay an operator in the key.
fn unary_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    matches!(
        toks[i - 1].kind,
        TokenKind::LParen
            | TokenKind::Comma
            | TokenKind::Eq
            | TokenKind::Neq
            | TokenKind::Lt
            | TokenKind::Le
            | TokenKind::Gt
            | TokenKind::Ge
    )
}

/// True when the token after the minus is a plain number literal.
fn folds_to_negative(toks: &[Token], i: usize) -> bool {
    matches!(
        toks.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Int(_) | TokenKind::Float(_))
    )
}

fn token_text(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(s) => s.to_ascii_lowercase(),
        TokenKind::LParen => "(".into(),
        TokenKind::RParen => ")".into(),
        TokenKind::Comma => ",".into(),
        TokenKind::Dot => ".".into(),
        TokenKind::Semicolon => ";".into(),
        TokenKind::Star => "*".into(),
        TokenKind::Plus => "+".into(),
        TokenKind::Minus => "-".into(),
        TokenKind::Slash => "/".into(),
        TokenKind::Percent => "%".into(),
        TokenKind::Eq => "=".into(),
        TokenKind::Neq => "<>".into(),
        TokenKind::Lt => "<".into(),
        TokenKind::Le => "<=".into(),
        TokenKind::Gt => ">".into(),
        TokenKind::Ge => ">=".into(),
        TokenKind::Concat => "||".into(),
        TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) | TokenKind::Question => {
            unreachable!("literals handled by the caller")
        }
    }
}

/// A parsed template plus the routing facts the middleware needs per
/// statement, computed once at insert time.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// Template AST with `Expr::Param` placeholders. Shared: binding clones
    /// the statement, fan-out shares the `Arc`.
    pub template: Arc<Statement>,
    /// Number of parameters the template expects.
    pub n_params: usize,
    /// `Statement::is_read_only()` of the template (parameter positions do
    /// not affect read/write classification).
    pub is_read: bool,
    /// `Statement::written_tables()` of the template.
    pub written_tables: Vec<ObjectName>,
}

impl CachedPlan {
    /// Parse a normal form's key into a cached plan. Fails when the template
    /// does not parse (a normalization guard miss) — callers fall back to
    /// parsing the original text and do not cache.
    pub fn prepare(nf: &NormalForm) -> Result<CachedPlan, SqlError> {
        let template = parse_statement(&nf.key)?;
        // The template must expect exactly the params we extracted; anything
        // else means a `?` landed in a non-expression position.
        let mut max_param = None;
        template.walk_exprs(&mut |e| {
            if let crate::ast::Expr::Param(i) = e {
                max_param = Some(max_param.map_or(*i, |m: usize| m.max(*i)));
            }
        });
        let expected = max_param.map_or(0, |m| m + 1);
        if expected != nf.params.len() {
            return Err(SqlError::Internal(format!(
                "template expects {expected} params, normalizer extracted {}",
                nf.params.len()
            )));
        }
        Ok(CachedPlan {
            is_read: template.is_read_only(),
            written_tables: template.written_tables(),
            n_params: nf.params.len(),
            template: Arc::new(template),
        })
    }
}

/// Substitute parameters into a template, reconstructing the statement the
/// client sent.
pub fn bind(template: &Statement, params: &[Value]) -> Result<Statement, SqlError> {
    let mut stmt = template.clone();
    let mut err = None;
    stmt.walk_exprs_mut(&mut |e| {
        if let crate::ast::Expr::Param(i) = e {
            match params.get(*i) {
                Some(v) => *e = crate::ast::Expr::Literal(v.clone()),
                None => err = Some(*i),
            }
        }
    });
    match err {
        Some(i) => Err(SqlError::Internal(format!("unbound parameter ?{i}"))),
        None => Ok(stmt),
    }
}

/// Bounded LRU cache from normalized SQL to parsed plans.
///
/// Deterministic by construction: `BTreeMap` iteration breaks last-used ties
/// by key order, and recency is a logical tick, not wall time.
#[derive(Debug, Default)]
pub struct PlanCache {
    cap: usize,
    map: BTreeMap<String, Entry>,
    tick: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    plan: CachedPlan,
    last_used: u64,
}

impl PlanCache {
    /// A cache holding at most `cap` templates. `cap == 0` disables caching
    /// (lookups miss, inserts are dropped).
    pub fn new(cap: usize) -> PlanCache {
        PlanCache { cap, ..PlanCache::default() }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn get(&mut self, key: &str) -> Option<CachedPlan> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(e.plan.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn insert(&mut self, key: String, plan: CachedPlan) {
        if self.cap == 0 {
            return;
        }
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            // Evict the least-recently-used entry (first key in BTreeMap
            // order on ties, which cannot happen: ticks are unique).
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.tick += 1;
        self.map.insert(key, Entry { plan, last_used: self.tick });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nf(sql: &str) -> NormalForm {
        normalize(sql).unwrap_or_else(|| panic!("{sql:?} should normalize"))
    }

    /// The load-bearing invariant: binding the template's params must
    /// reproduce exactly the AST of parsing the original text.
    fn assert_roundtrip(sql: &str) {
        let direct = parse_statement(sql).unwrap();
        let form = nf(sql);
        let plan = CachedPlan::prepare(&form).unwrap();
        let bound = bind(&plan.template, &form.params).unwrap();
        assert_eq!(bound, direct, "bind(template, params) diverged for {sql:?}");
        assert_eq!(plan.is_read, direct.is_read_only());
        assert_eq!(plan.written_tables, direct.written_tables());
    }

    #[test]
    fn basic_shapes_roundtrip() {
        for sql in [
            "SELECT v FROM t WHERE k = 7",
            "SELECT a, b FROM t WHERE x > 3 AND y LIKE 'a%' ORDER BY a DESC LIMIT 5 OFFSET 2",
            "INSERT INTO db1.t (a, b) VALUES (1, 'x'), (2, 'o''brien')",
            "UPDATE t SET x = x + 1, s = 'z' WHERE id IN (1, 2, 3)",
            "DELETE FROM t WHERE a BETWEEN 1 AND 5",
            "SELECT COUNT(*) FROM t GROUP BY region HAVING COUNT(*) > 2",
            "SELECT * FROM a JOIN b ON a.id = b.aid WHERE a.x = 1.5",
            "SELECT * FROM t WHERE ts < TIMESTAMP 1700000000",
        ] {
            assert_roundtrip(sql);
        }
    }

    #[test]
    fn same_shape_same_key_different_params() {
        let a = nf("SELECT v FROM t WHERE k = 1");
        let b = nf("select V from T where K = 250");
        assert_eq!(a.key, b.key);
        assert_eq!(a.params, vec![Value::Int(1)]);
        assert_eq!(b.params, vec![Value::Int(250)]);
    }

    #[test]
    fn question_in_string_literal_is_text() {
        // A `?` inside a string is data, not a placeholder; it must become a
        // parameter carrying the text verbatim.
        let form = nf("SELECT v FROM t WHERE s = 'is it? maybe?'");
        assert_eq!(form.params, vec![Value::Text("is it? maybe?".into())]);
        assert_roundtrip("SELECT v FROM t WHERE s = 'is it? maybe?'");
        // A raw placeholder outside a string is not cacheable client SQL.
        assert!(normalize("SELECT v FROM t WHERE k = ?").is_none());
    }

    #[test]
    fn negative_numerics_fold_into_params() {
        let form = nf("INSERT INTO t (a, b) VALUES (-5, -2.5)");
        assert_eq!(form.params, vec![Value::Int(-5), Value::Float(-2.5)]);
        assert_roundtrip("INSERT INTO t (a, b) VALUES (-5, -2.5)");
        assert_roundtrip("SELECT v FROM t WHERE k = -7");
        assert_roundtrip("UPDATE t SET x = (-1) WHERE k < -3");
        // Binary minus stays an operator; only the operand parameterizes.
        let form = nf("SELECT a - 1 FROM t");
        assert!(form.key.contains('-'));
        assert_eq!(form.params, vec![Value::Int(1)]);
    }

    #[test]
    fn null_keyword_differs_from_null_string() {
        let kw = nf("SELECT v FROM t WHERE s = NULL");
        let st = nf("SELECT v FROM t WHERE s = 'NULL'");
        assert_ne!(kw.key, st.key, "NULL keyword and 'NULL' string must not collide");
        assert!(kw.params.is_empty());
        assert_eq!(st.params, vec![Value::Text("NULL".into())]);
        assert_roundtrip("SELECT v FROM t WHERE s = 'NULL'");
        assert_roundtrip("SELECT v FROM t WHERE s = NULL");
    }

    #[test]
    fn limit_offset_stay_inline() {
        let form = nf("SELECT v FROM t WHERE k > 10 ORDER BY v LIMIT 5 OFFSET 3");
        assert!(form.key.contains("limit 5"), "key: {}", form.key);
        assert!(form.key.contains("offset 3"), "key: {}", form.key);
        assert_eq!(form.params, vec![Value::Int(10)]);
    }

    #[test]
    fn non_dml_is_not_cacheable() {
        for sql in [
            "CREATE TABLE t (k INT PRIMARY KEY)",
            "BEGIN",
            "COMMIT",
            "SET tz = 'UTC'",
            "CALL bump(10)",
            "CREATE SEQUENCE s START 100",
        ] {
            assert!(normalize(sql).is_none(), "{sql:?} must not normalize");
        }
    }

    #[test]
    fn lru_evicts_deterministically() {
        let mut cache = PlanCache::new(2);
        let plan = |sql: &str| CachedPlan::prepare(&nf(sql)).unwrap();
        let (a, b, c) = (
            nf("SELECT v FROM a WHERE k = 1"),
            nf("SELECT v FROM b WHERE k = 1"),
            nf("SELECT v FROM c WHERE k = 1"),
        );
        cache.insert(a.key.clone(), plan("SELECT v FROM a WHERE k = 1"));
        cache.insert(b.key.clone(), plan("SELECT v FROM b WHERE k = 1"));
        assert!(cache.get(&a.key).is_some()); // refresh a; b is now LRU
        cache.insert(c.key.clone(), plan("SELECT v FROM c WHERE k = 1"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 1);
        assert!(cache.get(&b.key).is_none(), "b should have been evicted");
        assert!(cache.get(&a.key).is_some());
        assert!(cache.get(&c.key).is_some());
        assert_eq!(cache.hits, 3);
        assert_eq!(cache.misses, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = PlanCache::new(0);
        let form = nf("SELECT v FROM t WHERE k = 1");
        cache.insert(form.key.clone(), CachedPlan::prepare(&form).unwrap());
        assert!(cache.get(&form.key).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn bind_rejects_missing_params() {
        let form = nf("SELECT v FROM t WHERE k = 1 AND x = 2");
        let plan = CachedPlan::prepare(&form).unwrap();
        assert_eq!(plan.n_params, 2);
        assert!(bind(&plan.template, &form.params[..1]).is_err());
    }
}
