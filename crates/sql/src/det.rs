//! Sources of non-determinism (§4.3.2): the clock behind NOW() and the RNG
//! behind RAND(). Each engine owns one `Determinism`, seeded independently —
//! exactly why broadcasting a statement containing RAND() diverges replicas.
//!
//! The clock is *virtual*: the embedding simulator sets it. Two replicas that
//! are perfectly time-synchronized still evaluate NOW() at different points
//! in their execution, which we model by letting the middleware (not the
//! engine) decide whether to rewrite time macros before broadcast.

use replimid_det::DetRng;

/// Per-engine non-deterministic inputs, with taint tracking.
#[derive(Debug)]
pub struct Determinism {
    now_us: i64,
    rng: DetRng,
    /// Set when the current statement evaluated NOW()/RAND(); reset by the
    /// engine at statement start. The middleware reads this to learn,
    /// post-hoc, that a statement it broadcast was unsafe.
    pub tainted: bool,
}

impl Determinism {
    pub fn new(seed: u64) -> Self {
        Determinism { now_us: 0, rng: DetRng::seed_from_u64(seed), tainted: false }
    }

    /// Set the virtual wall clock (microseconds).
    pub fn set_now(&mut self, now_us: i64) {
        self.now_us = now_us;
    }

    /// Current virtual time *without* tainting (engine-internal uses).
    pub fn now_untainted(&self) -> i64 {
        self.now_us
    }

    /// NOW()/CURRENT_TIMESTAMP: taints the statement.
    pub fn now(&mut self) -> i64 {
        self.tainted = true;
        self.now_us
    }

    /// RAND(): uniform in [0, 1); taints the statement.
    pub fn rand(&mut self) -> f64 {
        self.tainted = true;
        self.rng.gen::<f64>()
    }

    /// Begin a new statement: clear the taint flag.
    pub fn begin_statement(&mut self) {
        self.tainted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_is_seed_deterministic() {
        let mut a = Determinism::new(42);
        let mut b = Determinism::new(42);
        assert_eq!(a.rand(), b.rand());
        let mut c = Determinism::new(43);
        assert_ne!(a.rand(), c.rand());
    }

    #[test]
    fn taint_tracking() {
        let mut d = Determinism::new(1);
        assert!(!d.tainted);
        d.set_now(99);
        assert_eq!(d.now_untainted(), 99);
        assert!(!d.tainted, "untainted read must not taint");
        let _ = d.now();
        assert!(d.tainted);
        d.begin_statement();
        assert!(!d.tainted);
        let _ = d.rand();
        assert!(d.tainted);
    }
}
