//! Expression evaluation with SQL three-valued logic.

use std::collections::BTreeMap;

use crate::ast::{BinOp, ColumnRef, Expr, UnOp};
use crate::catalog::Catalog;
use crate::det::Determinism;
use crate::error::SqlError;
use crate::mvcc::Snapshot;
use crate::sequence::Sequences;
use crate::storage::Table;
use crate::value::Value;

/// Names of aggregate functions, which the select executor intercepts;
/// the scalar evaluator rejects them.
pub const AGGREGATES: &[&str] = &["count", "sum", "avg", "min", "max"];

pub fn is_aggregate(name: &str) -> bool {
    AGGREGATES.contains(&name)
}

/// Everything an expression may touch. `catalog` is read-only; sequences and
/// the determinism sources are mutable because NEXTVAL/RAND/NOW have side
/// effects even inside SELECT.
pub struct EvalEnv<'a> {
    pub catalog: &'a Catalog,
    /// Session temporary tables (shadow regular tables on unqualified names).
    pub temp: &'a BTreeMap<String, Table>,
    pub seqs: &'a mut Sequences,
    pub det: &'a mut Determinism,
    pub snap: Snapshot,
    pub current_db: Option<&'a str>,
    /// Session variables, procedure parameters, and trigger NEW.* bindings.
    pub vars: &'a BTreeMap<String, Value>,
    /// (database, table) pairs read through this env — merged into the
    /// transaction's read set for serializable validation.
    pub read_log: Vec<(String, String)>,
    /// Rows materialized by scans, for the cost model.
    pub rows_read: u64,
}

/// Where a table name resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum TableLoc {
    /// A session temporary table (connection-local, §4.1.4).
    Temp(String),
    /// A regular table: (database, table).
    Db(String, String),
}

impl EvalEnv<'_> {
    /// Resolve a table name: unqualified names check session temp tables
    /// first, then the current database; qualified names go straight to the
    /// named database.
    pub fn table_location(&self, name: &crate::ast::ObjectName) -> Result<TableLoc, SqlError> {
        if name.database.is_none() && self.temp.contains_key(&name.name) {
            return Ok(TableLoc::Temp(name.name.clone()));
        }
        let db = match &name.database {
            Some(d) => d.as_str(),
            None => self
                .current_db
                .ok_or_else(|| SqlError::UnknownTable(format!("{name} (no database selected)")))?,
        };
        Ok(TableLoc::Db(db.to_string(), name.name.clone()))
    }

    pub fn table_at(&self, loc: &TableLoc) -> Result<&Table, SqlError> {
        match loc {
            TableLoc::Temp(name) => self
                .temp
                .get(name)
                .ok_or_else(|| SqlError::UnknownTable(name.clone())),
            TableLoc::Db(db, name) => self.catalog.database(db)?.table(name),
        }
    }

    /// Resolve a table for reading and record the read for serializable
    /// validation (temp tables are connection-private and not tracked).
    pub fn resolve_table(&mut self, name: &crate::ast::ObjectName) -> Result<&Table, SqlError> {
        let loc = self.table_location(name)?;
        if let TableLoc::Db(db, table) = &loc {
            self.read_log.push((db.clone(), table.clone()));
        }
        self.table_at(&loc)
    }
}

/// Column bindings for the row(s) currently in scope.
#[derive(Default)]
pub struct RowScope<'a> {
    bindings: Vec<Binding<'a>>,
}

#[derive(Clone, Copy)]
struct Binding<'a> {
    qualifier: &'a str,
    columns: &'a [String],
    values: &'a [Value],
}

impl<'a> RowScope<'a> {
    pub fn empty() -> Self {
        RowScope { bindings: Vec::new() }
    }

    pub fn with(qualifier: &'a str, columns: &'a [String], values: &'a [Value]) -> Self {
        let mut s = RowScope::empty();
        s.push(qualifier, columns, values);
        s
    }

    pub fn push(&mut self, qualifier: &'a str, columns: &'a [String], values: &'a [Value]) {
        debug_assert_eq!(columns.len(), values.len());
        self.bindings.push(Binding { qualifier, columns, values });
    }

    /// Append all bindings from an outer scope (inner bindings win on
    /// unqualified lookups, enabling correlated subqueries).
    pub fn extend_from(&mut self, outer: &RowScope<'a>) {
        self.bindings.extend(outer.bindings.iter().copied());
    }

    /// Look up a column reference: qualified names match binding qualifiers;
    /// unqualified names search all bindings in order.
    fn lookup(&self, col: &ColumnRef) -> Option<&Value> {
        for b in &self.bindings {
            if let Some(q) = &col.table {
                if q != b.qualifier {
                    continue;
                }
            }
            if let Some(i) = b.columns.iter().position(|c| c == &col.name) {
                return Some(&b.values[i]);
            }
        }
        None
    }
}

/// Evaluate `expr` to a value.
pub fn eval(expr: &Expr, env: &mut EvalEnv<'_>, row: &RowScope<'_>) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => {
            if let Some(v) = row.lookup(c) {
                return Ok(v.clone());
            }
            // Fall back to variables: procedure params bind unqualified
            // names; trigger NEW.x binds qualified ones.
            let key = match &c.table {
                Some(t) => format!("{t}.{}", c.name),
                None => c.name.clone(),
            };
            if let Some(v) = env.vars.get(&key) {
                return Ok(v.clone());
            }
            Err(SqlError::UnknownColumn(key))
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, env, row)?;
            match op {
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(SqlError::TypeMismatch {
                        expected: crate::value::DataType::Float,
                        got: other.type_name().to_string(),
                    }),
                },
                UnOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(SqlError::TypeMismatch {
                        expected: crate::value::DataType::Bool,
                        got: other.type_name().to_string(),
                    }),
                },
            }
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, env, row),
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, env, row)?;
            let p = eval(pattern, env, row)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(pat)) => {
                    let m = like_match(&s, &pat);
                    Ok(Value::Bool(m != *negated))
                }
                (a, _) => Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Text,
                    got: a.type_name().to_string(),
                }),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, env, row)?;
            let lo = eval(low, env, row)?;
            let hi = eval(high, env, row)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, env, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, env, row)?;
                if iv.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    return Ok(Value::Bool(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::InSelect { expr, select, negated } => {
            let v = eval(expr, env, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rs = crate::exec::select::execute_select(select, env, row)?;
            let mut saw_null = false;
            for r in &rs.rows {
                let item = r.first().ok_or_else(|| {
                    SqlError::Internal("IN subquery returned zero columns".into())
                })?;
                if item.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(item) == Some(std::cmp::Ordering::Equal) {
                    return Ok(Value::Bool(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::ScalarSubquery(select) => {
            let rs = crate::exec::select::execute_select(select, env, row)?;
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => rs.rows[0]
                    .first()
                    .cloned()
                    .ok_or_else(|| SqlError::Internal("scalar subquery with no columns".into())),
                n => Err(SqlError::ConstraintViolation(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
        Expr::Exists { select, negated } => {
            let rs = crate::exec::select::execute_select(select, env, row)?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
        Expr::Function { name, args } => eval_function(name, args, env, row),
        // Parameters are bound to literals by the plan cache before any
        // statement reaches the executor; hitting one here is a logic error.
        Expr::Param(i) => Err(SqlError::Internal(format!("unbound parameter ?{i}"))),
    }
}

fn eval_binary(
    left: &Expr,
    op: BinOp,
    right: &Expr,
    env: &mut EvalEnv<'_>,
    row: &RowScope<'_>,
) -> Result<Value, SqlError> {
    // AND/OR get three-valued short-circuit treatment.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(left, env, row)?;
        let l = match l {
            Value::Null => None,
            Value::Bool(b) => Some(b),
            other => {
                return Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Bool,
                    got: other.type_name().to_string(),
                })
            }
        };
        if op == BinOp::And && l == Some(false) {
            return Ok(Value::Bool(false));
        }
        if op == BinOp::Or && l == Some(true) {
            return Ok(Value::Bool(true));
        }
        let r = eval(right, env, row)?;
        let r = match r {
            Value::Null => None,
            Value::Bool(b) => Some(b),
            other => {
                return Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Bool,
                    got: other.type_name().to_string(),
                })
            }
        };
        return Ok(match (op, l, r) {
            (BinOp::And, Some(a), Some(b)) => Value::Bool(a && b),
            (BinOp::And, None, Some(false)) | (BinOp::And, Some(false), None) => {
                Value::Bool(false)
            }
            (BinOp::Or, Some(a), Some(b)) => Value::Bool(a || b),
            (BinOp::Or, None, Some(true)) | (BinOp::Or, Some(true), None) => Value::Bool(true),
            _ => Value::Null,
        });
    }

    let l = eval(left, env, row)?;
    let r = eval(right, env, row)?;
    match op {
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            match l.sql_cmp(&r) {
                None => Ok(Value::Null),
                Some(ord) => {
                    let b = match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::Neq => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::Le => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::Ge => ord != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    };
                    Ok(Value::Bool(b))
                }
            }
        }
        BinOp::Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!("{l}{r}")))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            arith(l, op, r)
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn arith(l: Value, op: BinOp, r: Value) -> Result<Value, SqlError> {
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        return match op {
            BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
            BinOp::Div => {
                if b == 0 {
                    Err(SqlError::Arithmetic("division by zero".into()))
                } else {
                    Ok(Value::Int(a.wrapping_div(b)))
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    Err(SqlError::Arithmetic("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a.wrapping_rem(b)))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(SqlError::TypeMismatch {
                expected: crate::value::DataType::Float,
                got: format!("{} {op} {}", l.type_name(), r.type_name()),
            })
        }
    };
    let out = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Err(SqlError::Arithmetic("division by zero".into()));
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Err(SqlError::Arithmetic("modulo by zero".into()));
            }
            a % b
        }
        _ => unreachable!(),
    };
    Ok(Value::Float(out))
}

fn eval_function(
    name: &str,
    args: &[Expr],
    env: &mut EvalEnv<'_>,
    row: &RowScope<'_>,
) -> Result<Value, SqlError> {
    if is_aggregate(name) {
        return Err(SqlError::ConstraintViolation(format!(
            "aggregate {name}() not allowed here"
        )));
    }
    let arity = |n: usize| -> Result<(), SqlError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SqlError::Arity { name: name.to_string(), expected: n, got: args.len() })
        }
    };
    match name {
        "now" | "current_timestamp" => {
            arity(0)?;
            Ok(Value::Timestamp(env.det.now()))
        }
        "rand" | "random" => {
            arity(0)?;
            Ok(Value::Float(env.det.rand()))
        }
        "nextval" => {
            arity(1)?;
            let v = eval(&args[0], env, row)?;
            let Value::Text(seq) = v else {
                return Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Text,
                    got: v.type_name().to_string(),
                });
            };
            // Sequence names may be qualified 'db.seq'.
            let (db, seq_name) = match seq.split_once('.') {
                Some((d, n)) => (d.to_string(), n.to_string()),
                None => (
                    env.current_db
                        .ok_or_else(|| SqlError::UnknownSequence(seq.clone()))?
                        .to_string(),
                    seq,
                ),
            };
            Ok(Value::Int(env.seqs.nextval(&db, &seq_name)?))
        }
        "length" => {
            arity(1)?;
            match eval(&args[0], env, row)? {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                v => Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Text,
                    got: v.type_name().to_string(),
                }),
            }
        }
        "lower" | "upper" => {
            arity(1)?;
            match eval(&args[0], env, row)? {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(if name == "lower" {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                v => Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Text,
                    got: v.type_name().to_string(),
                }),
            }
        }
        "abs" => {
            arity(1)?;
            match eval(&args[0], env, row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                v => Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Float,
                    got: v.type_name().to_string(),
                }),
            }
        }
        "floor" | "ceil" => {
            arity(1)?;
            match eval(&args[0], env, row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Float(f) => Ok(Value::Int(if name == "floor" {
                    f.floor() as i64
                } else {
                    f.ceil() as i64
                })),
                v => Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Float,
                    got: v.type_name().to_string(),
                }),
            }
        }
        "coalesce" => {
            for a in args {
                let v = eval(a, env, row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "substr" => {
            arity(3)?;
            let s = eval(&args[0], env, row)?;
            let start = eval(&args[1], env, row)?;
            let len = eval(&args[2], env, row)?;
            match (s, start.as_int(), len.as_int()) {
                (Value::Null, _, _) => Ok(Value::Null),
                (Value::Text(s), Some(start), Some(len)) => {
                    let start = (start.max(1) - 1) as usize;
                    let out: String =
                        s.chars().skip(start).take(len.max(0) as usize).collect();
                    Ok(Value::Text(out))
                }
                _ => Err(SqlError::TypeMismatch {
                    expected: crate::value::DataType::Text,
                    got: "substr arguments".into(),
                }),
            }
        }
        other => Err(SqlError::UnknownFunction(other.to_string())),
    }
}

/// SQL LIKE matching: `%` any run, `_` one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                for i in 0..=s.len() {
                    if rec(&s[i..], &p[1..]) {
                        return true;
                    }
                }
                false
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn eval_str(sql_expr: &str) -> Result<Value, SqlError> {
        // Parse as a projection of a SELECT to reuse the expression grammar.
        let stmt = parse_statement(&format!("SELECT {sql_expr}")).unwrap();
        let crate::ast::Statement::Select(s) = stmt else { panic!() };
        let crate::ast::SelectItem::Expr { expr, .. } = &s.projections[0] else { panic!() };
        let catalog = Catalog::new();
        let temp = BTreeMap::new();
        let mut seqs = Sequences::new();
        let mut det = Determinism::new(7);
        det.set_now(1_000_000);
        let vars = BTreeMap::new();
        let mut env = EvalEnv {
            catalog: &catalog,
            temp: &temp,
            seqs: &mut seqs,
            det: &mut det,
            snap: Snapshot { ts: crate::mvcc::CommitTs(0), tx: crate::mvcc::TxId(1) },
            current_db: None,
            vars: &vars,
            read_log: Vec::new(),
            rows_read: 0,
        };
        eval(expr, &mut env, &RowScope::empty())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_str("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2").unwrap(), Value::Float(3.5));
        assert_eq!(eval_str("7 % 3").unwrap(), Value::Int(1));
        assert!(eval_str("1 / 0").is_err());
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_str("NULL AND FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("NULL AND TRUE").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL OR TRUE").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NULL OR FALSE").unwrap(), Value::Null);
        assert_eq!(eval_str("NOT NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL = NULL").unwrap(), Value::Null);
        assert_eq!(eval_str("NULL IS NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_null_semantics() {
        assert_eq!(eval_str("1 IN (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("3 IN (1, 2)").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("3 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_str("1 NOT IN (1, NULL)").unwrap(), Value::Bool(false));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%"));
        assert!(!like_match("abc", "ab"));
        assert_eq!(eval_str("'abc' LIKE 'a%'").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("'abc' NOT LIKE 'a%'").unwrap(), Value::Bool(false));
    }

    #[test]
    fn functions() {
        assert_eq!(eval_str("length('héllo')").unwrap(), Value::Int(5));
        assert_eq!(eval_str("upper('ab')").unwrap(), Value::Text("AB".into()));
        assert_eq!(eval_str("coalesce(NULL, NULL, 3)").unwrap(), Value::Int(3));
        assert_eq!(eval_str("abs(-4)").unwrap(), Value::Int(4));
        assert_eq!(eval_str("substr('abcdef', 2, 3)").unwrap(), Value::Text("bcd".into()));
        assert_eq!(eval_str("'a' || 1 || 'b'").unwrap(), Value::Text("a1b".into()));
        assert_eq!(eval_str("now()").unwrap(), Value::Timestamp(1_000_000));
        assert!(matches!(eval_str("rand()").unwrap(), Value::Float(f) if (0.0..1.0).contains(&f)));
        assert!(eval_str("no_such_fn(1)").is_err());
        assert!(eval_str("length(1, 2)").is_err());
    }

    #[test]
    fn between() {
        assert_eq!(eval_str("5 BETWEEN 1 AND 9").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("5 NOT BETWEEN 1 AND 4").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("NULL BETWEEN 1 AND 4").unwrap(), Value::Null);
    }
}
