//! Versioned row storage: one `Table` per SQL table, each row a chain of
//! MVCC versions. The engine is externally synchronized; concurrency is the
//! interleaving of statements from different connections, which is exactly
//! the concurrency a replication middleware deals in.

use std::collections::BTreeMap;

use crate::ast::ColumnDef;
use crate::checksum::Fnv64;
use crate::error::SqlError;
use crate::mvcc::{CommitTs, RowId, Snapshot, TxId};
use crate::value::{DataType, Value};

/// Schema of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key, if any.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        let primary_key = columns.iter().position(|c| c.primary_key);
        TableSchema { name: name.into(), columns, primary_key }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column_types(&self) -> impl Iterator<Item = DataType> + '_ {
        self.columns.iter().map(|c| c.data_type)
    }
}

/// One MVCC version of a row.
#[derive(Debug, Clone)]
pub struct Version {
    /// Transaction that created this version.
    pub begin_tx: TxId,
    /// Commit timestamp of the creator; `None` while uncommitted.
    pub begin_ts: Option<CommitTs>,
    /// Transaction that deleted/superseded this version, if any.
    pub end_tx: Option<TxId>,
    /// Commit timestamp of the ender; `None` while the ender is uncommitted.
    pub end_ts: Option<CommitTs>,
    pub values: Vec<Value>,
}

impl Version {
    /// Is this version visible to `snap` (its own uncommitted writes are)?
    pub fn visible_to(&self, snap: Snapshot) -> bool {
        let created_visible = if self.begin_tx == snap.tx {
            // Own write: visible unless this version was already superseded
            // by the same transaction.
            true
        } else {
            match self.begin_ts {
                Some(ts) => ts <= snap.ts,
                None => false, // other transaction's uncommitted insert
            }
        };
        if !created_visible {
            return false;
        }
        match (self.end_tx, self.end_ts) {
            (None, _) => true,
            (Some(etx), _) if etx == snap.tx => false, // deleted by self
            (Some(_), Some(ets)) => ets > snap.ts,     // deleted after my snapshot?
            (Some(_), None) => true,                   // deleter uncommitted
        }
    }

    /// True when no snapshot at or after `horizon` (nor any future one) can
    /// see this version.
    fn garbage(&self, horizon: CommitTs) -> bool {
        matches!(self.end_ts, Some(ets) if ets <= horizon)
    }
}

/// Why a row-level write was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Another uncommitted transaction already wrote the row.
    UncommittedWriter,
    /// First-committer-wins: a version newer than our snapshot committed.
    NewerCommit,
}

/// A table: schema, version chains, primary-key index, and the
/// non-transactional bits the paper warns about (auto-increment counter).
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    rows: BTreeMap<RowId, Vec<Version>>,
    /// PK value -> candidate row ids (stale entries pruned lazily).
    pk_index: BTreeMap<IndexKey, Vec<RowId>>,
    next_row_id: u64,
    /// Non-transactional AUTO_INCREMENT counter: advances even when the
    /// surrounding transaction rolls back (§4.2.3 / §4.3.2).
    pub auto_inc: i64,
    /// Commit timestamp of the last committed write to this table; used by
    /// serializable table-level validation and replication freshness checks.
    pub last_commit_ts: CommitTs,
}

/// Orderable index key wrapping a `Value`.
#[derive(Debug, Clone, PartialEq)]
struct IndexKey(Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: BTreeMap::new(),
            pk_index: BTreeMap::new(),
            next_row_id: 1,
            auto_inc: 0,
            last_commit_ts: CommitTs::ZERO,
        }
    }

    /// Number of row version chains (live + dead); exposed for vacuum tests.
    pub fn chain_count(&self) -> usize {
        self.rows.len()
    }

    pub fn version_count(&self) -> usize {
        self.rows.values().map(|c| c.len()).sum()
    }

    /// Iterate over rows visible to `snap`.
    pub fn scan<'a>(&'a self, snap: Snapshot) -> impl Iterator<Item = (RowId, &'a [Value])> + 'a {
        self.rows.iter().filter_map(move |(id, chain)| {
            chain
                .iter()
                .rev()
                .find(|v| v.visible_to(snap))
                .map(|v| (*id, v.values.as_slice()))
        })
    }

    /// Read one row if visible.
    pub fn get(&self, row: RowId, snap: Snapshot) -> Option<&[Value]> {
        self.rows
            .get(&row)?
            .iter()
            .rev()
            .find(|v| v.visible_to(snap))
            .map(|v| v.values.as_slice())
    }

    /// Look up a row id by primary-key value, restricted to versions visible
    /// to `snap`.
    pub fn lookup_pk(&self, key: &Value, snap: Snapshot) -> Option<RowId> {
        let ids = self.pk_index.get(&IndexKey(key.clone()))?;
        ids.iter()
            .copied()
            .find(|id| self.get(*id, snap).is_some_and(|vals| {
                self.schema
                    .primary_key
                    .is_some_and(|pk| vals[pk] == *key)
            }))
    }

    /// True if any version of a row with this PK is visible to `snap` *or*
    /// pending from an uncommitted transaction (uniqueness must account for
    /// concurrent inserts).
    fn pk_occupied(&self, key: &Value, snap: Snapshot) -> bool {
        let Some(pk) = self.schema.primary_key else { return false };
        let Some(ids) = self.pk_index.get(&IndexKey(key.clone())) else {
            return false;
        };
        ids.iter().any(|id| {
            self.rows.get(id).is_some_and(|chain| {
                chain.iter().any(|v| {
                    v.values[pk] == *key
                        && (v.visible_to(snap)
                            || (v.begin_ts.is_none() && v.end_tx.is_none()))
                })
            })
        })
    }

    /// Insert a row version for transaction `snap.tx`.
    pub fn insert(&mut self, values: Vec<Value>, snap: Snapshot) -> Result<RowId, SqlError> {
        debug_assert_eq!(values.len(), self.schema.columns.len());
        if let Some(pk) = self.schema.primary_key {
            let key = &values[pk];
            if key.is_null() {
                return Err(SqlError::ConstraintViolation(format!(
                    "primary key '{}' may not be NULL",
                    self.schema.columns[pk].name
                )));
            }
            if self.pk_occupied(key, snap) {
                return Err(SqlError::DuplicateKey(format!(
                    "{}={key}",
                    self.schema.columns[pk].name
                )));
            }
        }
        let id = RowId(self.next_row_id);
        self.next_row_id += 1;
        if let Some(pk) = self.schema.primary_key {
            self.pk_index
                .entry(IndexKey(values[pk].clone()))
                .or_default()
                .push(id);
        }
        self.rows.insert(
            id,
            vec![Version {
                begin_tx: snap.tx,
                begin_ts: None,
                end_tx: None,
                end_ts: None,
                values,
            }],
        );
        Ok(id)
    }

    /// Find the newest version of `row` and classify the write conflict, if
    /// any, for a transaction holding `snap` under first-committer-wins.
    fn writable_version(
        &self,
        row: RowId,
        snap: Snapshot,
        first_committer_wins: bool,
    ) -> Result<usize, ConflictKind> {
        let chain = self.rows.get(&row).expect("writable_version on missing row");
        // The newest version is last in the chain.
        let idx = chain.len() - 1;
        let v = &chain[idx];
        if let Some(etx) = v.end_tx {
            if etx != snap.tx && v.end_ts.is_none() {
                return Err(ConflictKind::UncommittedWriter);
            }
        }
        if v.begin_tx != snap.tx {
            match v.begin_ts {
                None => return Err(ConflictKind::UncommittedWriter),
                Some(ts) if first_committer_wins && ts > snap.ts => {
                    return Err(ConflictKind::NewerCommit)
                }
                _ => {}
            }
        }
        Ok(idx)
    }

    /// Supersede the newest version of `row` with `values`.
    /// Returns the before-image on success.
    pub fn update(
        &mut self,
        row: RowId,
        values: Vec<Value>,
        snap: Snapshot,
        first_committer_wins: bool,
    ) -> Result<Vec<Value>, ConflictOrError> {
        if let Some(pk) = self.schema.primary_key {
            let new_key = values[pk].clone();
            if new_key.is_null() {
                return Err(ConflictOrError::Error(SqlError::ConstraintViolation(format!(
                    "primary key '{}' may not be NULL",
                    self.schema.columns[pk].name
                ))));
            }
            let old = self
                .get(row, snap)
                .ok_or_else(|| ConflictOrError::Error(SqlError::Internal("row vanished".into())))?;
            if old[pk] != new_key && self.pk_occupied(&new_key, snap) {
                return Err(ConflictOrError::Error(SqlError::DuplicateKey(format!(
                    "{}={new_key}",
                    self.schema.columns[pk].name
                ))));
            }
        }
        let idx = self
            .writable_version(row, snap, first_committer_wins)
            .map_err(ConflictOrError::Conflict)?;
        let chain = self.rows.get_mut(&row).expect("row exists");
        let before = chain[idx].values.clone();
        chain[idx].end_tx = Some(snap.tx);
        chain[idx].end_ts = None;
        if let Some(pk) = self.schema.primary_key {
            if before[pk] != values[pk] {
                self.pk_index
                    .entry(IndexKey(values[pk].clone()))
                    .or_default()
                    .push(row);
            }
        }
        let chain = self.rows.get_mut(&row).expect("row exists");
        chain.push(Version {
            begin_tx: snap.tx,
            begin_ts: None,
            end_tx: None,
            end_ts: None,
            values,
        });
        Ok(before)
    }

    /// Delete the row (end its newest version). Returns the before-image.
    pub fn delete(
        &mut self,
        row: RowId,
        snap: Snapshot,
        first_committer_wins: bool,
    ) -> Result<Vec<Value>, ConflictOrError> {
        let idx = self
            .writable_version(row, snap, first_committer_wins)
            .map_err(ConflictOrError::Conflict)?;
        let chain = self.rows.get_mut(&row).expect("row exists");
        let before = chain[idx].values.clone();
        chain[idx].end_tx = Some(snap.tx);
        chain[idx].end_ts = None;
        Ok(before)
    }

    /// Stamp all versions written by `tx` with its commit timestamp.
    pub fn commit_stamp(&mut self, row: RowId, tx: TxId, ts: CommitTs) {
        if let Some(chain) = self.rows.get_mut(&row) {
            for v in chain {
                if v.begin_tx == tx && v.begin_ts.is_none() {
                    v.begin_ts = Some(ts);
                }
                if v.end_tx == Some(tx) && v.end_ts.is_none() {
                    v.end_ts = Some(ts);
                }
            }
        }
        if ts > self.last_commit_ts {
            self.last_commit_ts = ts;
        }
    }

    /// Unwind the effects of an aborted transaction on `row`.
    pub fn abort_unwind(&mut self, row: RowId, tx: TxId) {
        if let Some(chain) = self.rows.get_mut(&row) {
            chain.retain(|v| !(v.begin_tx == tx && v.begin_ts.is_none()));
            for v in chain.iter_mut() {
                if v.end_tx == Some(tx) && v.end_ts.is_none() {
                    v.end_tx = None;
                }
            }
            if chain.is_empty() {
                self.rows.remove(&row);
            }
        }
    }

    /// Drop versions no active snapshot can see (vacuum-style maintenance,
    /// §4.4.4). Returns the number of versions reclaimed.
    pub fn vacuum(&mut self, horizon: CommitTs) -> usize {
        let mut reclaimed = 0;
        let mut dead_rows = Vec::new();
        for (id, chain) in &mut self.rows {
            let before = chain.len();
            chain.retain(|v| !v.garbage(horizon));
            reclaimed += before - chain.len();
            if chain.is_empty() {
                dead_rows.push(*id);
            }
        }
        for id in dead_rows {
            self.rows.remove(&id);
        }
        // Prune index entries pointing at vanished rows.
        let live: std::collections::HashSet<RowId> = self.rows.keys().copied().collect();
        self.pk_index.retain(|_, ids| {
            ids.retain(|id| live.contains(id));
            !ids.is_empty()
        });
        reclaimed
    }

    /// Checksum of the *committed* state visible at `ts` — the divergence
    /// detector replicas compare (§4.3.2).
    pub fn checksum_into(&self, ts: CommitTs, h: &mut Fnv64) {
        h.write_str(&self.schema.name);
        let snap = Snapshot { ts, tx: TxId(u64::MAX) };
        // Hash rows in a canonical order: by primary key when present, else
        // by full row contents, so row-id allocation differences between
        // replicas do not register as divergence.
        let mut rows: Vec<&[Value]> = self.scan(snap).map(|(_, v)| v).collect();
        if let Some(pk) = self.schema.primary_key {
            rows.sort_by(|a, b| a[pk].total_cmp(&b[pk]));
        } else {
            rows.sort_by(|a, b| {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        h.write_u64(rows.len() as u64);
        for row in rows {
            for v in row {
                v.hash_into(h);
            }
        }
    }

    /// All committed rows at `ts` (used by dumps and writeset application).
    pub fn committed_rows(&self, ts: CommitTs) -> Vec<Vec<Value>> {
        let snap = Snapshot { ts, tx: TxId(u64::MAX) };
        self.scan(snap).map(|(_, v)| v.to_vec()).collect()
    }
}

/// Either a concurrency conflict (retryable, engine-translated into
/// `SqlError::WriteConflict`) or a hard error.
#[derive(Debug)]
pub enum ConflictOrError {
    Conflict(ConflictKind),
    Error(SqlError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef {
                    name: "id".into(),
                    data_type: DataType::Int,
                    not_null: true,
                    primary_key: true,
                    auto_increment: false,
                    default: None,
                },
                ColumnDef {
                    name: "v".into(),
                    data_type: DataType::Text,
                    not_null: false,
                    primary_key: false,
                    auto_increment: false,
                    default: None,
                },
            ],
        )
    }

    fn snap(tx: u64, ts: u64) -> Snapshot {
        Snapshot { ts: CommitTs(ts), tx: TxId(tx) }
    }

    #[test]
    fn insert_visible_to_self_not_others() {
        let mut t = Table::new(schema());
        let s1 = snap(1, 0);
        let s2 = snap(2, 0);
        t.insert(vec![Value::Int(1), Value::Text("a".into())], s1).unwrap();
        assert_eq!(t.scan(s1).count(), 1);
        assert_eq!(t.scan(s2).count(), 0);
    }

    #[test]
    fn commit_makes_row_visible_at_later_snapshots() {
        let mut t = Table::new(schema());
        let s1 = snap(1, 0);
        let id = t.insert(vec![Value::Int(1), Value::Null], s1).unwrap();
        t.commit_stamp(id, TxId(1), CommitTs(5));
        assert_eq!(t.scan(snap(2, 5)).count(), 1);
        assert_eq!(t.scan(snap(2, 4)).count(), 0, "older snapshot must not see it");
    }

    #[test]
    fn duplicate_pk_rejected_even_uncommitted() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::Null], snap(1, 0)).unwrap();
        // Different transaction, same key, insert not yet committed.
        let err = t.insert(vec![Value::Int(1), Value::Null], snap(2, 0)).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
    }

    #[test]
    fn update_conflict_on_uncommitted_writer() {
        let mut t = Table::new(schema());
        let id = t.insert(vec![Value::Int(1), Value::Null], snap(1, 0)).unwrap();
        t.commit_stamp(id, TxId(1), CommitTs(1));
        // tx2 updates, uncommitted.
        t.update(id, vec![Value::Int(1), Value::Text("x".into())], snap(2, 1), true)
            .unwrap();
        // tx3 must conflict.
        let err = t
            .update(id, vec![Value::Int(1), Value::Text("y".into())], snap(3, 1), true)
            .unwrap_err();
        assert!(matches!(err, ConflictOrError::Conflict(ConflictKind::UncommittedWriter)));
    }

    #[test]
    fn first_committer_wins() {
        let mut t = Table::new(schema());
        let id = t.insert(vec![Value::Int(1), Value::Null], snap(1, 0)).unwrap();
        t.commit_stamp(id, TxId(1), CommitTs(1));
        // tx2 (snapshot ts=1) updates and commits at ts=2.
        t.update(id, vec![Value::Int(1), Value::Text("x".into())], snap(2, 1), true)
            .unwrap();
        t.commit_stamp(id, TxId(2), CommitTs(2));
        // tx3 with old snapshot (ts=1) now conflicts under SI...
        let err = t
            .update(id, vec![Value::Int(1), Value::Text("y".into())], snap(3, 1), true)
            .unwrap_err();
        assert!(matches!(err, ConflictOrError::Conflict(ConflictKind::NewerCommit)));
        // ...but succeeds under read committed semantics (no FCW).
        t.update(id, vec![Value::Int(1), Value::Text("y".into())], snap(4, 2), false)
            .unwrap();
    }

    #[test]
    fn abort_unwinds_versions() {
        let mut t = Table::new(schema());
        let id = t.insert(vec![Value::Int(1), Value::Null], snap(1, 0)).unwrap();
        t.commit_stamp(id, TxId(1), CommitTs(1));
        t.update(id, vec![Value::Int(1), Value::Text("x".into())], snap(2, 1), true)
            .unwrap();
        t.abort_unwind(id, TxId(2));
        let visible = t.get(id, snap(3, 1)).unwrap();
        assert_eq!(visible[1], Value::Null, "before-image restored");
        assert_eq!(t.version_count(), 1);
    }

    #[test]
    fn delete_and_vacuum() {
        let mut t = Table::new(schema());
        let id = t.insert(vec![Value::Int(1), Value::Null], snap(1, 0)).unwrap();
        t.commit_stamp(id, TxId(1), CommitTs(1));
        t.delete(id, snap(2, 1), true).unwrap();
        t.commit_stamp(id, TxId(2), CommitTs(2));
        // Still visible at ts=1, invisible at ts=2.
        assert!(t.get(id, snap(9, 1)).is_some());
        assert!(t.get(id, snap(9, 2)).is_none());
        let reclaimed = t.vacuum(CommitTs(2));
        assert_eq!(reclaimed, 1);
        assert_eq!(t.chain_count(), 0);
    }

    #[test]
    fn checksum_ignores_row_id_allocation_order() {
        let mut a = Table::new(schema());
        let mut b = Table::new(schema());
        let s = snap(1, 0);
        let r1 = a.insert(vec![Value::Int(1), Value::Text("x".into())], s).unwrap();
        let r2 = a.insert(vec![Value::Int(2), Value::Text("y".into())], s).unwrap();
        a.commit_stamp(r1, TxId(1), CommitTs(1));
        a.commit_stamp(r2, TxId(1), CommitTs(1));
        // b inserts in the opposite order.
        let r1 = b.insert(vec![Value::Int(2), Value::Text("y".into())], s).unwrap();
        let r2 = b.insert(vec![Value::Int(1), Value::Text("x".into())], s).unwrap();
        b.commit_stamp(r1, TxId(1), CommitTs(1));
        b.commit_stamp(r2, TxId(1), CommitTs(1));
        let mut ha = Fnv64::new();
        let mut hb = Fnv64::new();
        a.checksum_into(CommitTs(1), &mut ha);
        b.checksum_into(CommitTs(1), &mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn pk_change_keeps_lookups_consistent() {
        let mut t = Table::new(schema());
        let id = t.insert(vec![Value::Int(1), Value::Null], snap(1, 0)).unwrap();
        t.commit_stamp(id, TxId(1), CommitTs(1));
        t.update(id, vec![Value::Int(7), Value::Null], snap(2, 1), true).unwrap();
        t.commit_stamp(id, TxId(2), CommitTs(2));
        let s = snap(9, 2);
        assert_eq!(t.lookup_pk(&Value::Int(7), s), Some(id));
        assert_eq!(t.lookup_pk(&Value::Int(1), s), None);
    }
}
