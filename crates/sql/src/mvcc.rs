//! Multi-version concurrency control: transaction identities, snapshots,
//! commit timestamps, and the visibility rules shared by the storage layer.
//!
//! Supported isolation levels (§4.1.2 of the paper):
//! * **read committed** — every statement reads the latest committed
//!   snapshot; the default everywhere in production, per the paper.
//! * **snapshot isolation** — transaction-level snapshot with
//!   first-committer-wins write conflicts.
//! * **serializable** — SI plus commit-time validation that no table read by
//!   the transaction was committed to after its snapshot (coarse, table-level
//!   optimistic validation; the paper notes that middleware and engines alike
//!   routinely fall back to table granularity, §4.3.2).

use std::collections::HashMap;

use crate::ast::IsolationLevel;
use crate::error::SqlError;
use crate::value::Value;

/// Transaction identifier, unique within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u64);

/// Monotonic commit timestamp, unique within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommitTs(pub u64);

impl CommitTs {
    pub const ZERO: CommitTs = CommitTs(0);
}

/// Row identifier, unique within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// What a statement is allowed to see: its own writes plus everything
/// committed at or before `ts`.
#[derive(Debug, Clone, Copy)]
pub struct Snapshot {
    pub ts: CommitTs,
    pub tx: TxId,
}

/// The kind of a row-level write, kept for writeset extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    Insert,
    Update,
    Delete,
}

/// A row-level write performed by a transaction. Doubles as the writeset
/// entry shipped by transaction-based replication (§4.3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteRecord {
    pub database: String,
    pub table: String,
    pub row: RowId,
    pub kind: WriteKind,
    /// Before-image (None for inserts).
    pub old: Option<Vec<Value>>,
    /// After-image (None for deletes).
    pub new: Option<Vec<Value>>,
    /// Write to a session temporary table: part of the transaction (commit/
    /// abort must visit it) but excluded from extracted writesets, because
    /// temp tables are connection-local and must never replicate (§4.1.4).
    pub temp: bool,
}

/// Per-transaction bookkeeping.
#[derive(Debug)]
pub struct TxState {
    pub snapshot_ts: CommitTs,
    pub isolation: IsolationLevel,
    pub writes: Vec<WriteRecord>,
    /// Tables read, as (database, table) — used by serializable validation.
    pub read_tables: Vec<(String, String)>,
    /// Set when a statement failed and the engine is in PostgreSQL-style
    /// `ErrorMode::AbortTransaction`: all further statements are rejected
    /// until ROLLBACK (§4.1.2).
    pub poisoned: bool,
    /// True for transactions opened implicitly (autocommit).
    pub implicit: bool,
}

/// Allocates transaction ids and commit timestamps, and tracks active
/// transactions. One per engine; single-writer (the engine is externally
/// synchronized, concurrency is statement interleaving across connections).
#[derive(Debug)]
pub struct TxManager {
    next_tx: u64,
    next_ts: u64,
    active: HashMap<TxId, TxState>,
}

impl TxManager {
    pub fn new() -> Self {
        TxManager { next_tx: 1, next_ts: 1, active: HashMap::new() }
    }

    /// Latest commit timestamp issued so far (the "current" snapshot).
    pub fn latest_ts(&self) -> CommitTs {
        CommitTs(self.next_ts - 1)
    }

    pub fn begin(&mut self, isolation: IsolationLevel, implicit: bool) -> TxId {
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.active.insert(
            id,
            TxState {
                snapshot_ts: self.latest_ts(),
                isolation,
                writes: Vec::new(),
                read_tables: Vec::new(),
                poisoned: false,
                implicit,
            },
        );
        id
    }

    pub fn is_active(&self, tx: TxId) -> bool {
        self.active.contains_key(&tx)
    }

    pub fn state(&self, tx: TxId) -> Result<&TxState, SqlError> {
        self.active
            .get(&tx)
            .ok_or_else(|| SqlError::Internal(format!("transaction {tx:?} not active")))
    }

    pub fn state_mut(&mut self, tx: TxId) -> Result<&mut TxState, SqlError> {
        self.active
            .get_mut(&tx)
            .ok_or_else(|| SqlError::Internal(format!("transaction {tx:?} not active")))
    }

    /// The snapshot a statement in `tx` should read through. Under read
    /// committed this advances to the latest commit for each statement;
    /// under SI/serializable it is frozen at BEGIN.
    pub fn statement_snapshot(&self, tx: TxId) -> Result<Snapshot, SqlError> {
        let st = self.state(tx)?;
        let ts = match st.isolation {
            IsolationLevel::ReadCommitted => self.latest_ts(),
            IsolationLevel::SnapshotIsolation | IsolationLevel::Serializable => st.snapshot_ts,
        };
        Ok(Snapshot { ts, tx })
    }

    /// Allocate the commit timestamp and retire the transaction, returning
    /// its state for the engine to stamp versions and extract the writeset.
    pub fn finish_commit(&mut self, tx: TxId) -> Result<(CommitTs, TxState), SqlError> {
        let st = self
            .active
            .remove(&tx)
            .ok_or_else(|| SqlError::Internal(format!("commit of inactive {tx:?}")))?;
        let ts = CommitTs(self.next_ts);
        self.next_ts += 1;
        Ok((ts, st))
    }

    /// Retire an aborted transaction, returning its write records so the
    /// engine can unwind the version chains.
    pub fn finish_abort(&mut self, tx: TxId) -> Result<TxState, SqlError> {
        self.active
            .remove(&tx)
            .ok_or_else(|| SqlError::Internal(format!("abort of inactive {tx:?}")))
    }

    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The oldest snapshot any active transaction may read through — the GC
    /// horizon: versions ended at or before this timestamp are unreachable.
    pub fn gc_horizon(&self) -> CommitTs {
        self.active
            .values()
            .map(|s| s.snapshot_ts)
            .min()
            .unwrap_or_else(|| self.latest_ts())
    }
}

impl Default for TxManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_monotonic() {
        let mut m = TxManager::new();
        let t1 = m.begin(IsolationLevel::SnapshotIsolation, false);
        let t2 = m.begin(IsolationLevel::SnapshotIsolation, false);
        assert_ne!(t1, t2);
        let (c1, _) = m.finish_commit(t1).unwrap();
        let (c2, _) = m.finish_commit(t2).unwrap();
        assert!(c2 > c1);
    }

    #[test]
    fn read_committed_snapshot_advances() {
        let mut m = TxManager::new();
        let rc = m.begin(IsolationLevel::ReadCommitted, false);
        let si = m.begin(IsolationLevel::SnapshotIsolation, false);
        let before_rc = m.statement_snapshot(rc).unwrap().ts;
        let before_si = m.statement_snapshot(si).unwrap().ts;
        // A third transaction commits in between.
        let w = m.begin(IsolationLevel::SnapshotIsolation, false);
        let (cts, _) = m.finish_commit(w).unwrap();
        assert_eq!(m.statement_snapshot(rc).unwrap().ts, cts, "RC sees new commit");
        assert_eq!(m.statement_snapshot(si).unwrap().ts, before_si, "SI snapshot frozen");
        assert!(before_rc < cts);
    }

    #[test]
    fn gc_horizon_is_min_active_snapshot() {
        let mut m = TxManager::new();
        let t1 = m.begin(IsolationLevel::SnapshotIsolation, false);
        let horizon1 = m.gc_horizon();
        let w = m.begin(IsolationLevel::SnapshotIsolation, false);
        m.finish_commit(w).unwrap();
        // t1 still pins the old horizon.
        assert_eq!(m.gc_horizon(), horizon1);
        m.finish_abort(t1).unwrap();
        assert!(m.gc_horizon() >= horizon1);
    }
}
