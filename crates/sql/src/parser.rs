//! Recursive-descent SQL parser.
//!
//! Identifiers are case-insensitive and normalized to lowercase; keywords are
//! matched case-insensitively. The grammar is the dialect described in
//! DESIGN.md: DML, DDL (databases, tables, sequences, users, triggers,
//! procedures), transactions with isolation levels, and expressions with
//! uncorrelated subqueries.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::{DataType, Value};

/// Parse exactly one statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_stmt()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a semicolon-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.parse_stmt()?);
        if !p.at_eof() && !p.eat(&TokenKind::Semicolon) {
            return Err(p.error("expected ';' between statements"));
        }
    }
    Ok(out)
}

/// Words that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "where", "join", "inner", "on", "group", "having", "order", "limit", "offset", "for", "set",
    "values", "as", "and", "or", "not", "asc", "desc", "end", "do", "begin", "from", "select",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Count of `?` placeholders consumed so far. Recursive descent consumes
    /// tokens strictly left to right, so assigning the next index at
    /// consumption time numbers parameters in textual order.
    params: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, SqlError> {
        Ok(Parser { tokens: tokenize(sql)?, pos: 0, params: 0 })
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> SqlError {
        let pos = self.tokens.get(self.pos).map(|t| t.pos).unwrap_or(usize::MAX);
        SqlError::parse(if pos == usize::MAX { 0 } else { pos }, msg)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SqlError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<(), SqlError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing tokens"))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s.to_ascii_lowercase()),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn object_name(&mut self) -> Result<ObjectName, SqlError> {
        let first = self.ident()?;
        if self.peek() == Some(&TokenKind::Dot) {
            self.bump();
            let second = self.ident()?;
            Ok(ObjectName::qualified(first, second))
        } else {
            Ok(ObjectName::bare(first))
        }
    }

    fn string(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(TokenKind::Str(s)) => Ok(s),
            other => Err(self.error(format!("expected string literal, found {other:?}"))),
        }
    }

    fn uint(&mut self) -> Result<u64, SqlError> {
        match self.bump() {
            Some(TokenKind::Int(i)) if i >= 0 => Ok(i as u64),
            other => Err(self.error(format!("expected non-negative integer, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Statement, SqlError> {
        let kw = match self.peek() {
            Some(TokenKind::Ident(s)) => s.to_ascii_lowercase(),
            _ => return Err(self.error("expected a statement keyword")),
        };
        match kw.as_str() {
            "select" => Ok(Statement::Select(Box::new(self.parse_select()?))),
            "insert" => self.parse_insert(),
            "update" => self.parse_update(),
            "delete" => self.parse_delete(),
            "create" => self.parse_create(),
            "drop" => self.parse_drop(),
            "use" => {
                self.bump();
                Ok(Statement::UseDatabase { name: self.ident()? })
            }
            "begin" | "start" => self.parse_begin(),
            "commit" => {
                self.bump();
                Ok(Statement::Commit)
            }
            "rollback" | "abort" => {
                self.bump();
                Ok(Statement::Rollback)
            }
            "grant" => self.parse_grant(),
            "call" => self.parse_call(),
            "set" => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::Eq)?;
                let value = self.parse_expr()?;
                Ok(Statement::Set { name, value })
            }
            other => Err(self.error(format!("unknown statement keyword '{other}'"))),
        }
    }

    fn parse_begin(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("start") {
            self.expect_kw("transaction")?;
        } else {
            self.expect_kw("begin")?;
            self.eat_kw("transaction");
        }
        let isolation = if self.eat_kw("isolation") {
            self.expect_kw("level")?;
            Some(self.parse_isolation_level()?)
        } else {
            None
        };
        Ok(Statement::Begin { isolation })
    }

    fn parse_isolation_level(&mut self) -> Result<IsolationLevel, SqlError> {
        if self.eat_kw("read") {
            self.expect_kw("committed")?;
            Ok(IsolationLevel::ReadCommitted)
        } else if self.eat_kw("snapshot") {
            Ok(IsolationLevel::SnapshotIsolation)
        } else if self.eat_kw("repeatable") {
            self.expect_kw("read")?;
            Ok(IsolationLevel::SnapshotIsolation)
        } else if self.eat_kw("serializable") {
            Ok(IsolationLevel::Serializable)
        } else {
            Err(self.error("unknown isolation level"))
        }
    }

    fn parse_insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.object_name()?;
        let mut columns = Vec::new();
        if self.peek() == Some(&TokenKind::LParen) {
            // Could be a column list or a parenthesized SELECT source; the
            // dialect requires VALUES or SELECT after the column list, so a
            // '(' here is always a column list.
            self.bump();
            loop {
                columns.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = Vec::new();
                if self.peek() != Some(&TokenKind::RParen) {
                    loop {
                        row.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_kw("select") {
            InsertSource::Select(Box::new(self.parse_select()?))
        } else {
            return Err(self.error("expected VALUES or SELECT"));
        };
        Ok(Statement::Insert { table, columns, source })
    }

    fn parse_update(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("update")?;
        let table = self.object_name()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let expr = self.parse_expr()?;
            assignments.push((col, expr));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    fn parse_delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.object_name()?;
        let filter = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn parse_create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("create")?;
        if self.eat_kw("database") || self.eat_kw("schema") {
            let if_not_exists = self.parse_if_not_exists()?;
            Ok(Statement::CreateDatabase { name: self.ident()?, if_not_exists })
        } else if self.peek_kw("temporary") || self.peek_kw("temp") || self.peek_kw("table") {
            let temporary = self.eat_kw("temporary") || self.eat_kw("temp");
            self.expect_kw("table")?;
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.object_name()?;
            let columns = self.parse_column_defs()?;
            Ok(Statement::CreateTable { name, columns, temporary, if_not_exists })
        } else if self.eat_kw("sequence") {
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.object_name()?;
            let start = if self.eat_kw("start") {
                self.eat_kw("with");
                match self.bump() {
                    Some(TokenKind::Int(i)) => i,
                    other => return Err(self.error(format!("expected integer, got {other:?}"))),
                }
            } else {
                1
            };
            Ok(Statement::CreateSequence { name, start, if_not_exists })
        } else if self.eat_kw("user") {
            let name = self.ident()?;
            self.expect_kw("password")?;
            let password = self.string()?;
            Ok(Statement::CreateUser { name, password })
        } else if self.eat_kw("trigger") {
            let name = self.ident()?;
            self.expect_kw("after")?;
            let event = if self.eat_kw("insert") {
                TriggerEvent::Insert
            } else if self.eat_kw("update") {
                TriggerEvent::Update
            } else if self.eat_kw("delete") {
                TriggerEvent::Delete
            } else {
                return Err(self.error("expected INSERT, UPDATE or DELETE"));
            };
            self.expect_kw("on")?;
            let table = self.object_name()?;
            self.expect_kw("do")?;
            let body = self.parse_body()?;
            Ok(Statement::CreateTrigger { name, event, table, body })
        } else if self.eat_kw("procedure") {
            let name = self.object_name()?;
            self.expect(&TokenKind::LParen)?;
            let mut params = Vec::new();
            if self.peek() != Some(&TokenKind::RParen) {
                loop {
                    params.push(self.ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            self.expect_kw("as")?;
            let body = self.parse_body()?;
            Ok(Statement::CreateProcedure { name, params, body })
        } else {
            Err(self.error("expected DATABASE, TABLE, SEQUENCE, USER, TRIGGER or PROCEDURE"))
        }
    }

    fn parse_if_not_exists(&mut self) -> Result<bool, SqlError> {
        if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_body(&mut self) -> Result<Vec<Statement>, SqlError> {
        self.expect_kw("begin")?;
        let mut body = Vec::new();
        loop {
            if self.eat_kw("end") {
                break;
            }
            body.push(self.parse_stmt()?);
            if !self.eat(&TokenKind::Semicolon) {
                self.expect_kw("end")?;
                break;
            }
        }
        Ok(body)
    }

    fn parse_drop(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("drop")?;
        if self.eat_kw("database") || self.eat_kw("schema") {
            Ok(Statement::DropDatabase { name: self.ident()? })
        } else if self.eat_kw("table") {
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            Ok(Statement::DropTable { name: self.object_name()?, if_exists })
        } else if self.eat_kw("sequence") {
            Ok(Statement::DropSequence { name: self.object_name()? })
        } else if self.eat_kw("user") {
            Ok(Statement::DropUser { name: self.ident()? })
        } else if self.eat_kw("trigger") {
            let name = self.ident()?;
            self.expect_kw("on")?;
            Ok(Statement::DropTrigger { name, table: self.object_name()? })
        } else if self.eat_kw("procedure") {
            Ok(Statement::DropProcedure { name: self.object_name()? })
        } else {
            Err(self.error("expected DATABASE, TABLE, SEQUENCE, USER, TRIGGER or PROCEDURE"))
        }
    }

    fn parse_column_defs(&mut self) -> Result<Vec<ColumnDef>, SqlError> {
        self.expect(&TokenKind::LParen)?;
        let mut cols = Vec::new();
        loop {
            let name = self.ident()?;
            let data_type = self.parse_data_type()?;
            let mut def = ColumnDef {
                name,
                data_type,
                not_null: false,
                primary_key: false,
                auto_increment: false,
                default: None,
            };
            loop {
                if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    def.primary_key = true;
                    def.not_null = true;
                } else if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    def.not_null = true;
                } else if self.eat_kw("auto_increment") || self.eat_kw("serial") {
                    def.auto_increment = true;
                } else if self.eat_kw("default") {
                    def.default = Some(self.parse_expr()?);
                } else {
                    break;
                }
            }
            cols.push(def);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(cols)
    }

    fn parse_data_type(&mut self) -> Result<DataType, SqlError> {
        let name = self.ident()?;
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => DataType::Int,
            "float" | "double" | "real" | "decimal" | "numeric" => DataType::Float,
            "text" | "varchar" | "char" | "string" | "clob" | "blob" => DataType::Text,
            "bool" | "boolean" => DataType::Bool,
            "timestamp" | "datetime" => DataType::Timestamp,
            other => return Err(self.error(format!("unknown type '{other}'"))),
        };
        // Optional length like VARCHAR(255) is accepted and ignored.
        if self.peek() == Some(&TokenKind::LParen) {
            self.bump();
            let _ = self.uint()?;
            self.expect(&TokenKind::RParen)?;
        }
        Ok(ty)
    }

    fn parse_grant(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("grant")?;
        let privilege = if self.eat_kw("all") {
            Privilege::All
        } else if self.eat_kw("read") || self.eat_kw("select") {
            Privilege::Read
        } else if self.eat_kw("write") {
            Privilege::Write
        } else {
            return Err(self.error("expected ALL, READ or WRITE"));
        };
        self.expect_kw("on")?;
        let database = self.ident()?;
        self.expect_kw("to")?;
        let user = self.ident()?;
        Ok(Statement::Grant { privilege, database, user })
    }

    fn parse_call(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("call")?;
        let name = self.object_name()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::Call { name, args })
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn parse_select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw("select")?;
        let mut select = Select::empty();
        loop {
            if self.eat(&TokenKind::Star) {
                select.projections.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = self.parse_alias()?;
                select.projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if self.eat_kw("from") {
            select.from = Some(self.parse_table_ref()?);
        }
        if self.eat_kw("where") {
            select.filter = Some(self.parse_expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                select.group_by.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            select.having = Some(self.parse_expr()?);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                select.order_by.push(OrderKey { expr, asc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            select.limit = Some(self.uint()?);
        }
        if self.eat_kw("offset") {
            select.offset = Some(self.uint()?);
        }
        if self.eat_kw("for") {
            self.expect_kw("update")?;
            select.for_update = true;
        }
        Ok(select)
    }

    fn parse_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        if let Some(TokenKind::Ident(s)) = self.peek() {
            if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                return Ok(Some(self.ident()?));
            }
        }
        Ok(None)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        let mut left = self.parse_table_primary()?;
        loop {
            let joined = if self.eat_kw("inner") {
                self.expect_kw("join")?;
                true
            } else {
                self.eat_kw("join")
            };
            if !joined {
                break;
            }
            let right = self.parse_table_primary()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), on };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef, SqlError> {
        let name = self.object_name()?;
        let alias = self.parse_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Binary { left: Box::new(left), op: BinOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::Binary { left: Box::new(left), op: BinOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(inner) })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(BinOp::Eq),
            Some(TokenKind::Neq) => Some(BinOp::Neq),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) });
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = self.eat_kw("not");
        if self.eat_kw("like") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect(&TokenKind::LParen)?;
            if self.peek_kw("select") {
                let select = self.parse_select()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSelect {
                    expr: Box::new(left),
                    select: Box::new(select),
                    negated,
                });
            }
            let mut list = Vec::new();
            if self.peek() != Some(&TokenKind::RParen) {
                loop {
                    list.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if negated {
            return Err(self.error("expected LIKE, BETWEEN or IN after NOT"));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                Some(TokenKind::Concat) => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // Fold negative literals so `-5` renders back as `(-5)` -> `-5`.
            if let Expr::Literal(Value::Int(i)) = inner {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(x)) = inner {
                return Ok(Expr::Literal(Value::Float(-x)));
            }
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(inner) });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(TokenKind::Int(i)) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(TokenKind::Float(x)) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(x)))
            }
            Some(TokenKind::Str(s)) => {
                self.bump();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(TokenKind::Question) => {
                self.bump();
                let i = self.params;
                self.params += 1;
                Ok(Expr::Param(i))
            }
            Some(TokenKind::LParen) => {
                self.bump();
                if self.peek_kw("select") {
                    let select = self.parse_select()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(select)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(e)
                }
            }
            Some(TokenKind::Ident(word)) => {
                let lower = word.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Null))
                    }
                    "true" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(true)))
                    }
                    "false" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(false)))
                    }
                    "timestamp"
                        if matches!(self.peek2(), Some(TokenKind::Int(_)))
                            || (self.peek2() == Some(&TokenKind::Minus)
                                && matches!(
                                    self.tokens.get(self.pos + 2).map(|t| &t.kind),
                                    Some(TokenKind::Int(_))
                                )) =>
                    {
                        self.bump();
                        let negate = self.eat(&TokenKind::Minus);
                        match self.bump() {
                            Some(TokenKind::Int(i)) => {
                                Ok(Expr::Literal(Value::Timestamp(if negate { -i } else { i })))
                            }
                            _ => unreachable!("peeked Int"),
                        }
                    }
                    "exists" => {
                        self.bump();
                        self.expect(&TokenKind::LParen)?;
                        let select = self.parse_select()?;
                        self.expect(&TokenKind::RParen)?;
                        Ok(Expr::Exists { select: Box::new(select), negated: false })
                    }
                    _ if RESERVED.contains(&lower.as_str()) => {
                        Err(self.error(format!("unexpected keyword '{lower}' in expression")))
                    }
                    _ => {
                        self.bump();
                        if self.peek() == Some(&TokenKind::LParen) {
                            self.bump();
                            let mut args = Vec::new();
                            if self.eat(&TokenKind::Star) {
                                // COUNT(*): no-arg aggregate.
                            } else if self.peek() != Some(&TokenKind::RParen) {
                                loop {
                                    args.push(self.parse_expr()?);
                                    if !self.eat(&TokenKind::Comma) {
                                        break;
                                    }
                                }
                            }
                            self.expect(&TokenKind::RParen)?;
                            Ok(Expr::Function { name: lower, args })
                        } else if self.peek() == Some(&TokenKind::Dot) {
                            self.bump();
                            let col = self.ident()?;
                            Ok(Expr::Column(ColumnRef { table: Some(lower), name: col }))
                        } else {
                            Ok(Expr::Column(ColumnRef { table: None, name: lower }))
                        }
                    }
                }
            }
            other => Err(self.error(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let stmt = parse_statement("SELECT a FROM t WHERE a = 1").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.projections.len(), 1);
                assert!(s.filter.is_some());
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn params_numbered_in_textual_order() {
        let stmt =
            parse_statement("UPDATE t SET a = ?, b = ? WHERE k = ? AND v IN (?, ?)").unwrap();
        let mut seen = Vec::new();
        stmt.walk_exprs(&mut |e| {
            if let Expr::Param(i) = e {
                seen.push(*i);
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // First textual `?` is the first assignment's value.
        let Statement::Update { assignments, .. } = &stmt else { panic!() };
        assert_eq!(assignments[0].1, Expr::Param(0));
        assert_eq!(assignments[1].1, Expr::Param(1));
    }

    #[test]
    fn precedence() {
        // a + b * 2 parses as a + (b * 2)
        let stmt = parse_statement("SELECT a + b * 2").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.projections[0] else { panic!() };
        match expr {
            Expr::Binary { op: BinOp::Add, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let stmt = parse_statement("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        match s.filter.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn qualified_names() {
        let stmt = parse_statement("SELECT t.x FROM db1.t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        match s.from.unwrap() {
            TableRef::Table { name, .. } => {
                assert_eq!(name, ObjectName::qualified("db1", "t"));
            }
            other => panic!("bad from: {other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)").unwrap();
        let Statement::Insert { columns, source, .. } = stmt else { panic!() };
        assert_eq!(columns, vec!["a", "b"]);
        let InsertSource::Values(rows) = source else { panic!() };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn update_with_subquery_limit() {
        // The paper's §4.3.2 non-determinism example.
        let stmt = parse_statement(
            "UPDATE foo SET keyvalue='x' WHERE id IN (SELECT id FROM foo WHERE keyvalue IS NULL LIMIT 10)",
        )
        .unwrap();
        let Statement::Update { filter: Some(Expr::InSelect { select, .. }), .. } = stmt else {
            panic!()
        };
        assert_eq!(select.limit, Some(10));
    }

    #[test]
    fn identifiers_lowercased() {
        let stmt = parse_statement("SELECT Foo FROM Bar").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr: Expr::Column(c), .. } = &s.projections[0] else { panic!() };
        assert_eq!(c.name, "foo");
    }

    #[test]
    fn create_table_attrs() {
        let stmt = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(40) NOT NULL, ts TIMESTAMP DEFAULT now())",
        )
        .unwrap();
        let Statement::CreateTable { columns, .. } = stmt else { panic!() };
        assert!(columns[0].primary_key && columns[0].auto_increment);
        assert!(columns[1].not_null);
        assert!(columns[2].default.is_some());
    }

    #[test]
    fn script_with_trigger_body() {
        let stmts = parse_statements(
            "CREATE TABLE t (a INT); CREATE TRIGGER tr AFTER INSERT ON t DO BEGIN \
             INSERT INTO log (v) VALUES (NEW.a); END; SELECT 1;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        let Statement::CreateTrigger { body, .. } = &stmts[1] else { panic!() };
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn count_star() {
        let stmt = parse_statement("SELECT COUNT(*) FROM t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr: Expr::Function { name, args }, .. } = &s.projections[0]
        else {
            panic!()
        };
        assert_eq!(name, "count");
        assert!(args.is_empty());
    }

    #[test]
    fn negative_literal_folding() {
        let stmt = parse_statement("SELECT -5, -2.5").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.projections[0] else { panic!() };
        assert_eq!(expr, &Expr::Literal(Value::Int(-5)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELEKT 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
    }

    #[test]
    fn begin_isolation_levels() {
        for (sql, lvl) in [
            ("BEGIN", None),
            ("BEGIN ISOLATION LEVEL READ COMMITTED", Some(IsolationLevel::ReadCommitted)),
            ("BEGIN ISOLATION LEVEL SNAPSHOT", Some(IsolationLevel::SnapshotIsolation)),
            ("BEGIN ISOLATION LEVEL REPEATABLE READ", Some(IsolationLevel::SnapshotIsolation)),
            ("START TRANSACTION ISOLATION LEVEL SERIALIZABLE", Some(IsolationLevel::Serializable)),
        ] {
            let Statement::Begin { isolation } = parse_statement(sql).unwrap() else { panic!() };
            assert_eq!(isolation, lvl, "for {sql}");
        }
    }

    #[test]
    fn join_parse() {
        let stmt = parse_statement("SELECT * FROM a JOIN b ON a.id = b.aid JOIN c ON b.id = c.bid")
            .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Some(TableRef::Join { left, .. }) = s.from else { panic!() };
        assert!(matches!(*left, TableRef::Join { .. }));
    }
}
