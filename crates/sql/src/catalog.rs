//! The catalog: database instances and their persistent objects.
//!
//! One engine hosts *multiple database instances* (CREATE DATABASE), because
//! the paper (§4.1.1) calls out that research replication virtualizes single
//! databases while real RDBMSes host many, with triggers that hop across
//! them. Queries may qualify tables as `db.table`.

use std::collections::BTreeMap;

use crate::ast::{Statement, TriggerEvent};
use crate::error::SqlError;
use crate::storage::Table;

/// A trigger definition: AFTER <event> ON <table> DO BEGIN ... END.
/// Bodies may reference `NEW.<column>` and may write other databases —
/// the cross-database reporting pattern from §4.1.1.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDef {
    pub name: String,
    pub event: TriggerEvent,
    pub table: String,
    pub body: Vec<Statement>,
}

/// A stored procedure (§4.2.1). The body is opaque to any middleware: there
/// is no schema describing which tables it touches.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcedureDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Statement>,
}

/// One database instance.
#[derive(Debug, Clone)]
pub struct Database {
    pub name: String,
    pub tables: BTreeMap<String, Table>,
    pub triggers: Vec<TriggerDef>,
    pub procedures: BTreeMap<String, ProcedureDef>,
}

impl Database {
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: BTreeMap::new(),
            triggers: Vec::new(),
            procedures: BTreeMap::new(),
        }
    }

    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::UnknownTable(format!("{}.{name}", self.name)))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        let db = self.name.clone();
        self.tables
            .get_mut(name)
            .ok_or_else(|| SqlError::UnknownTable(format!("{db}.{name}")))
    }

    /// Triggers firing for `event` on `table`, in definition order.
    pub fn triggers_for(&self, table: &str, event: TriggerEvent) -> Vec<TriggerDef> {
        self.triggers
            .iter()
            .filter(|t| t.table == table && t.event == event)
            .cloned()
            .collect()
    }
}

/// All database instances in one engine.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    pub databases: BTreeMap<String, Database>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    pub fn create_database(&mut self, name: &str, if_not_exists: bool) -> Result<(), SqlError> {
        if self.databases.contains_key(name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(SqlError::AlreadyExists(name.to_string()));
        }
        self.databases.insert(name.to_string(), Database::new(name));
        Ok(())
    }

    pub fn drop_database(&mut self, name: &str) -> Result<(), SqlError> {
        self.databases
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SqlError::UnknownDatabase(name.to_string()))
    }

    pub fn database(&self, name: &str) -> Result<&Database, SqlError> {
        self.databases
            .get(name)
            .ok_or_else(|| SqlError::UnknownDatabase(name.to_string()))
    }

    pub fn database_mut(&mut self, name: &str) -> Result<&mut Database, SqlError> {
        self.databases
            .get_mut(name)
            .ok_or_else(|| SqlError::UnknownDatabase(name.to_string()))
    }

    pub fn database_names(&self) -> Vec<String> {
        self.databases.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_drop_database() {
        let mut c = Catalog::new();
        c.create_database("shop", false).unwrap();
        assert!(c.create_database("shop", false).is_err());
        c.create_database("shop", true).unwrap();
        c.drop_database("shop").unwrap();
        assert!(c.database("shop").is_err());
    }

    #[test]
    fn triggers_filtered_by_table_and_event() {
        let mut db = Database::new("d");
        db.triggers.push(TriggerDef {
            name: "a".into(),
            event: TriggerEvent::Insert,
            table: "t".into(),
            body: vec![],
        });
        db.triggers.push(TriggerDef {
            name: "b".into(),
            event: TriggerEvent::Delete,
            table: "t".into(),
            body: vec![],
        });
        assert_eq!(db.triggers_for("t", TriggerEvent::Insert).len(), 1);
        assert_eq!(db.triggers_for("u", TriggerEvent::Insert).len(), 0);
    }
}
