//! SQL tokenizer.

use crate::error::SqlError;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword (original case preserved; keyword
    /// matching is case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal with `''` escapes resolved.
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    /// `||` string concatenation
    Concat,
    /// `?` positional parameter placeholder (prepared statements).
    Question,
}

impl TokenKind {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `sql` into a vector of tokens. Comments (`-- ...`) are skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::with_capacity(sql.len() / 4 + 4);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, pos });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, pos });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, pos });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, pos });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, pos });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, pos });
                i += 1;
            }
            '%' => {
                tokens.push(Token { kind: TokenKind::Percent, pos });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, pos });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token { kind: TokenKind::Neq, pos });
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'>') => {
                        tokens.push(Token { kind: TokenKind::Neq, pos });
                        i += 2;
                    }
                    Some(b'=') => {
                        tokens.push(Token { kind: TokenKind::Le, pos });
                        i += 2;
                    }
                    _ => {
                        tokens.push(Token { kind: TokenKind::Lt, pos });
                        i += 1;
                    }
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, pos });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, pos });
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token { kind: TokenKind::Concat, pos });
                i += 2;
            }
            '?' => {
                tokens.push(Token { kind: TokenKind::Question, pos });
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::parse(pos, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Advance over a whole UTF-8 character.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| SqlError::parse(i, "invalid UTF-8 in literal"))?,
                        );
                        i += ch_len;
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), pos });
            }
            '"' => {
                // Quoted identifier.
                let start = i + 1;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::parse(pos, "unterminated quoted identifier"));
                }
                let name = sql[start..i].to_string();
                i += 1;
                tokens.push(Token { kind: TokenKind::Ident(name), pos });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse::<f64>()
                            .map_err(|e| SqlError::parse(start, format!("bad float: {e}")))?,
                    )
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        Err(_) => TokenKind::Float(
                            text.parse::<f64>()
                                .map_err(|e| SqlError::parse(start, format!("bad number: {e}")))?,
                        ),
                    }
                };
                tokens.push(Token { kind, pos });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                    pos,
                });
            }
            other => {
                return Err(SqlError::parse(pos, format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        let ks = kinds("SELECT a, b FROM t WHERE x >= 10");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Int(10)));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("'o''brien'"), vec![TokenKind::Str("o'brien".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1 2.5 1e3"), vec![
            TokenKind::Int(1),
            TokenKind::Float(2.5),
            TokenKind::Float(1000.0)
        ]);
    }

    #[test]
    fn neq_spellings() {
        assert_eq!(kinds("a <> b")[1], TokenKind::Neq);
        assert_eq!(kinds("a != b")[1], TokenKind::Neq);
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT 1 -- trailing comment\n, 2");
        assert_eq!(ks.len(), 4);
    }

    #[test]
    fn huge_int_falls_back_to_float() {
        let ks = kinds("99999999999999999999");
        assert!(matches!(ks[0], TokenKind::Float(_)));
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        assert_eq!(kinds("\"MyTable\""), vec![TokenKind::Ident("MyTable".into())]);
    }

    #[test]
    fn concat_operator() {
        assert_eq!(kinds("a || b")[1], TokenKind::Concat);
    }

    #[test]
    fn question_parameter() {
        assert_eq!(kinds("k = ?")[2], TokenKind::Question);
        // A `?` inside a string literal is text, not a placeholder.
        assert_eq!(kinds("'a ? b'"), vec![TokenKind::Str("a ? b".into())]);
    }
}
