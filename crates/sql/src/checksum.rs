//! A tiny self-contained FNV-1a 64-bit hasher used for database state
//! checksums. Replicas compare checksums to detect silent divergence —
//! the failure mode §4.3.2 of the paper warns statement-based replication
//! about (non-deterministic statements) and writeset replication about
//! (sequence / auto-increment side channels).

/// Incremental FNV-1a 64-bit hash.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Fnv64::new();
        let mut b = Fnv64::new();
        a.write_str("hello");
        b.write_str("hello");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        // Length prefixes keep concatenation ambiguity out of the hash.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
    }
}
