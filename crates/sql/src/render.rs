//! Render the AST back to canonical SQL text.
//!
//! Statement-based replication and the recovery log store statements as SQL
//! text; a rejoining replica replays that text through the parser. The
//! invariant `parse(render(stmt)) == stmt` is verified by a property test in
//! the workspace test suite.

use std::fmt;

use crate::ast::*;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&v.to_literal()),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Unary { op: UnOp::Neg, expr } => write!(f, "(-{expr})"),
            Expr::Unary { op: UnOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE {pattern})", if *negated { "NOT " } else { "" })
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, low, high, negated } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                write_comma_sep(f, list)?;
                f.write_str("))")
            }
            Expr::InSelect { expr, select, negated } => write!(
                f,
                "({expr} {}IN ({select}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::ScalarSubquery(select) => write!(f, "({select})"),
            Expr::Exists { select, negated } => {
                write!(f, "({}EXISTS ({select}))", if *negated { "NOT " } else { "" })
            }
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                write_comma_sep(f, args)?;
                f.write_str(")")
            }
            Expr::Param(_) => f.write_str("?"),
        }
    }
}

fn write_comma_sep<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias: Some(a) } => write!(f, "{name} AS {a}"),
            TableRef::Table { name, alias: None } => write!(f, "{name}"),
            TableRef::Join { left, right, on } => write!(f, "{left} JOIN {right} ON {on}"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        write_comma_sep(f, &self.projections)?;
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            write_comma_sep(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}", k.expr, if k.asc { "" } else { " DESC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        if self.for_update {
            f.write_str(" FOR UPDATE")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateDatabase { name, if_not_exists } => write!(
                f,
                "CREATE DATABASE {}{name}",
                if *if_not_exists { "IF NOT EXISTS " } else { "" }
            ),
            Statement::DropDatabase { name } => write!(f, "DROP DATABASE {name}"),
            Statement::UseDatabase { name } => write!(f, "USE {name}"),
            Statement::CreateTable { name, columns, temporary, if_not_exists } => {
                write!(
                    f,
                    "CREATE {}TABLE {}{name} (",
                    if *temporary { "TEMPORARY " } else { "" },
                    if *if_not_exists { "IF NOT EXISTS " } else { "" }
                )?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} {}", c.name, c.data_type)?;
                    if c.primary_key {
                        f.write_str(" PRIMARY KEY")?;
                    }
                    if c.not_null && !c.primary_key {
                        f.write_str(" NOT NULL")?;
                    }
                    if c.auto_increment {
                        f.write_str(" AUTO_INCREMENT")?;
                    }
                    if let Some(d) = &c.default {
                        write!(f, " DEFAULT {d}")?;
                    }
                }
                f.write_str(")")
            }
            Statement::DropTable { name, if_exists } => write!(
                f,
                "DROP TABLE {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            ),
            Statement::Insert { table, columns, source } => {
                write!(f, "INSERT INTO {table}")?;
                if !columns.is_empty() {
                    write!(f, " ({})", columns.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        f.write_str(" VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            f.write_str("(")?;
                            write_comma_sep(f, row)?;
                            f.write_str(")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Select(s) => write!(f, " {s}"),
                }
            }
            Statement::Update { table, assignments, filter } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (col, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{col} = {e}")?;
                }
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Begin { isolation: None } => f.write_str("BEGIN"),
            Statement::Begin { isolation: Some(level) } => {
                write!(f, "BEGIN ISOLATION LEVEL {level}")
            }
            Statement::Commit => f.write_str("COMMIT"),
            Statement::Rollback => f.write_str("ROLLBACK"),
            Statement::CreateSequence { name, start, if_not_exists } => write!(
                f,
                "CREATE SEQUENCE {}{name} START {start}",
                if *if_not_exists { "IF NOT EXISTS " } else { "" }
            ),
            Statement::DropSequence { name } => write!(f, "DROP SEQUENCE {name}"),
            Statement::CreateUser { name, password } => {
                write!(f, "CREATE USER {name} PASSWORD '{}'", password.replace('\'', "''"))
            }
            Statement::DropUser { name } => write!(f, "DROP USER {name}"),
            Statement::Grant { privilege, database, user } => {
                write!(f, "GRANT {privilege} ON {database} TO {user}")
            }
            Statement::CreateTrigger { name, event, table, body } => {
                write!(f, "CREATE TRIGGER {name} AFTER {event} ON {table} DO ")?;
                write_body(f, body)
            }
            Statement::DropTrigger { name, table } => {
                write!(f, "DROP TRIGGER {name} ON {table}")
            }
            Statement::CreateProcedure { name, params, body } => {
                write!(f, "CREATE PROCEDURE {name}({}) AS ", params.join(", "))?;
                write_body(f, body)
            }
            Statement::DropProcedure { name } => write!(f, "DROP PROCEDURE {name}"),
            Statement::Call { name, args } => {
                write!(f, "CALL {name}(")?;
                write_comma_sep(f, args)?;
                f.write_str(")")
            }
            Statement::Set { name, value } => write!(f, "SET {name} = {value}"),
        }
    }
}

fn write_body(f: &mut fmt::Formatter<'_>, body: &[Statement]) -> fmt::Result {
    f.write_str("BEGIN ")?;
    for st in body {
        write!(f, "{st}; ")?;
    }
    f.write_str("END")
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_statement;

    fn round_trip(sql: &str) {
        let ast1 = parse_statement(sql).unwrap();
        let rendered = ast1.to_string();
        let ast2 = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(ast1, ast2, "round trip changed AST for {sql:?} -> {rendered:?}");
    }

    #[test]
    fn round_trips() {
        for sql in [
            "SELECT a, b AS bb FROM t WHERE x > 3 AND y LIKE 'a%' ORDER BY a DESC LIMIT 5 OFFSET 2",
            "INSERT INTO db1.t (a, b) VALUES (1, 'x'), (2, 'o''brien')",
            "UPDATE t SET x = x + 1 WHERE id IN (SELECT id FROM t WHERE v IS NULL LIMIT 10)",
            "DELETE FROM t WHERE a BETWEEN 1 AND 5",
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, n TEXT NOT NULL, v FLOAT DEFAULT 0.0)",
            "CREATE TEMPORARY TABLE scratch (k INT PRIMARY KEY)",
            "CREATE SEQUENCE s START 100",
            "BEGIN ISOLATION LEVEL SNAPSHOT",
            "CREATE TRIGGER audit AFTER INSERT ON orders DO BEGIN INSERT INTO reportdb.log (oid) VALUES (NEW.id); END",
            "CREATE PROCEDURE bump(amount) AS BEGIN UPDATE acct SET bal = bal + amount; END",
            "CALL bump(10)",
            "SELECT COUNT(*) FROM t GROUP BY region HAVING COUNT(*) > 2",
            "SELECT * FROM a JOIN b ON a.id = b.aid WHERE a.x = 1",
            "GRANT ALL ON shop TO alice",
            "SET tz = 'UTC'",
            "SELECT * FROM t FOR UPDATE",
        ] {
            round_trip(sql);
        }
    }
}
