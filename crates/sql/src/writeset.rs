//! Transaction writesets (§4.3.2).
//!
//! A writeset is "the set of data W updated by a transaction T, such that
//! applying W to a replica is equivalent to executing T on it" (paper,
//! footnote 2) — *almost*. The paper's point, which we reproduce faithfully,
//! is that applying a writeset does **not** reproduce the side effects that
//! live outside versioned storage: sequence advances, AUTO_INCREMENT
//! counters, and session/environment variables. The optional
//! `CounterSync` extension (the paper's industrial-agenda fix) closes that
//! hole by shipping counter states alongside the row images.

use crate::checksum::Fnv64;
use crate::mvcc::WriteRecord;
use crate::value::Value;

/// Counter states a transaction bumped, shipped only when the engine is
/// configured with `capture_counters` (the paper's proposed fix; off by
/// default to reproduce the gap).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterSync {
    /// (database, sequence) -> value after the transaction.
    pub sequences: Vec<((String, String), i64)>,
    /// (database, table) -> AUTO_INCREMENT counter after the transaction.
    pub auto_increments: Vec<((String, String), i64)>,
}

impl CounterSync {
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty() && self.auto_increments.is_empty()
    }
}

/// The writeset of one committed transaction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Writeset {
    pub entries: Vec<WriteRecord>,
    /// Present only under `capture_counters` (see [`CounterSync`]).
    pub counters: Option<CounterSync>,
}

/// Identity of a row for certification: its primary-key value when the table
/// has one, else its full before-image.
#[derive(Debug, Clone, PartialEq)]
pub struct WsKey {
    pub database: String,
    pub table: String,
    pub key: Vec<Value>,
}

impl WsKey {
    /// Stable hash for conflict-window indexing in the certifier.
    pub fn hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(&self.database);
        h.write_str(&self.table);
        for v in &self.key {
            v.hash_into(&mut h);
        }
        h.finish()
    }
}

impl Writeset {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Tables touched, deduplicated, as (database, table).
    pub fn tables(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for e in &self.entries {
            let k = (e.database.clone(), e.table.clone());
            if !out.contains(&k) {
                out.push(k);
            }
        }
        out
    }

    /// Row identities for certification. `pk_of` maps (database, table) to
    /// the primary-key column index, if the table has one.
    pub fn keys(&self, pk_of: impl Fn(&str, &str) -> Option<usize>) -> Vec<WsKey> {
        self.entries
            .iter()
            .map(|e| {
                let image = e.old.as_ref().or(e.new.as_ref());
                let key = match (pk_of(&e.database, &e.table), image) {
                    (Some(pk), Some(img)) => vec![img[pk].clone()],
                    (_, Some(img)) => img.clone(),
                    (_, None) => Vec::new(),
                };
                WsKey { database: e.database.clone(), table: e.table.clone(), key }
            })
            .collect()
    }

    /// Split the writeset by a table classifier (partial replication: one
    /// slice per table group). Returns `(class, slice)` pairs sorted by
    /// class; entry order within each slice is preserved. Counter syncs
    /// ride with the lowest class (they are global by nature — the
    /// limitation the paper's §4.2.3 gap already documents).
    pub fn split_by(&self, class_of: impl Fn(&str, &str) -> usize) -> Vec<(usize, Writeset)> {
        let mut out: Vec<(usize, Writeset)> = Vec::new();
        for e in &self.entries {
            let c = class_of(&e.database, &e.table);
            match out.iter_mut().find(|(cc, _)| *cc == c) {
                Some((_, ws)) => ws.entries.push(e.clone()),
                None => out.push((
                    c,
                    Writeset { entries: vec![e.clone()], counters: None },
                )),
            }
        }
        out.sort_by_key(|&(c, _)| c);
        if let (Some(counters), Some((_, first))) = (self.counters.clone(), out.first_mut()) {
            first.counters = Some(counters);
        }
        out
    }

    /// Approximate wire size in bytes (for network cost modelling).
    pub fn wire_size(&self) -> u64 {
        let mut sz = 16u64;
        for e in &self.entries {
            sz += 24 + e.database.len() as u64 + e.table.len() as u64;
            for img in [&e.old, &e.new].into_iter().flatten() {
                for v in img {
                    sz += match v {
                        Value::Text(s) => 4 + s.len() as u64,
                        _ => 8,
                    };
                }
            }
        }
        sz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::{RowId, WriteKind};

    fn rec(kind: WriteKind, old: Option<Vec<Value>>, new: Option<Vec<Value>>) -> WriteRecord {
        WriteRecord {
            database: "d".into(),
            table: "t".into(),
            row: RowId(1),
            kind,
            old,
            new,
            temp: false,
        }
    }

    #[test]
    fn keys_prefer_primary_key() {
        let ws = Writeset {
            entries: vec![rec(
                WriteKind::Update,
                Some(vec![Value::Int(7), Value::Text("a".into())]),
                Some(vec![Value::Int(7), Value::Text("b".into())]),
            )],
            counters: None,
        };
        let keys = ws.keys(|_, _| Some(0));
        assert_eq!(keys[0].key, vec![Value::Int(7)]);
        let keys = ws.keys(|_, _| None);
        assert_eq!(keys[0].key.len(), 2, "falls back to the full image");
    }

    #[test]
    fn insert_uses_new_image() {
        let ws = Writeset {
            entries: vec![rec(WriteKind::Insert, None, Some(vec![Value::Int(3)]))],
            counters: None,
        };
        let keys = ws.keys(|_, _| Some(0));
        assert_eq!(keys[0].key, vec![Value::Int(3)]);
    }

    #[test]
    fn key_hash_distinguishes_rows() {
        let a = WsKey { database: "d".into(), table: "t".into(), key: vec![Value::Int(1)] };
        let b = WsKey { database: "d".into(), table: "t".into(), key: vec![Value::Int(2)] };
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn split_by_partitions_entries_and_keeps_order() {
        let mut r1 = rec(WriteKind::Insert, None, Some(vec![Value::Int(1)]));
        r1.table = "a".into();
        let mut r2 = rec(WriteKind::Insert, None, Some(vec![Value::Int(2)]));
        r2.table = "b".into();
        let mut r3 = rec(WriteKind::Insert, None, Some(vec![Value::Int(3)]));
        r3.table = "a".into();
        let ws = Writeset { entries: vec![r1, r2, r3], counters: Some(CounterSync::default()) };
        let parts = ws.split_by(|_, t| if t == "a" { 0 } else { 1 });
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[0].1.entries.len(), 2);
        assert_eq!(parts[0].1.entries[1].new, Some(vec![Value::Int(3)]));
        assert!(parts[0].1.counters.is_some(), "counters ride the lowest class");
        assert_eq!(parts[1].1.entries.len(), 1);
        assert!(parts[1].1.counters.is_none());
    }

    #[test]
    fn tables_deduplicated() {
        let ws = Writeset {
            entries: vec![
                rec(WriteKind::Insert, None, Some(vec![Value::Int(1)])),
                rec(WriteKind::Insert, None, Some(vec![Value::Int(2)])),
            ],
            counters: None,
        };
        assert_eq!(ws.tables().len(), 1);
    }
}
