//! Runtime values and column types.

use std::cmp::Ordering;
use std::fmt;

use crate::error::SqlError;

/// The SQL column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
    /// Microseconds since the epoch (virtual time in simulations).
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    /// Microseconds since the epoch.
    Timestamp(i64),
}

impl Value {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerce a value to the given column type, as on INSERT/UPDATE.
    /// Int widens to Float and to Timestamp; everything else must match.
    pub fn coerce_to(self, ty: DataType) -> Result<Value, SqlError> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Int(_), DataType::Int) => Ok(v),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (Value::Int(i), DataType::Timestamp) => Ok(Value::Timestamp(i)),
            (v @ Value::Float(_), DataType::Float) => Ok(v),
            (v @ Value::Text(_), DataType::Text) => Ok(v),
            (v @ Value::Bool(_), DataType::Bool) => Ok(v),
            (v @ Value::Timestamp(_), DataType::Timestamp) => Ok(v),
            (Value::Timestamp(t), DataType::Int) => Ok(Value::Int(t)),
            (v, ty) => Err(SqlError::TypeMismatch {
                expected: ty,
                got: v.type_name().to_string(),
            }),
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Text(_) => "TEXT",
            Value::Bool(_) => "BOOL",
            Value::Timestamp(_) => "TIMESTAMP",
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL three-valued comparison. `None` when either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Timestamp(b)) | (Value::Timestamp(b), Value::Int(a)) => {
                Some(a.cmp(b))
            }
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order used for ORDER BY and index keys: NULLs sort first,
    /// then by type, then by value. Never panics (NaN sorts after all floats).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ if rank(self) == 2 && rank(other) == 2 => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Render the value as a SQL literal that parses back to the same value.
    /// Used for query rewriting (e.g. replacing NOW() with a constant) and
    /// for statement-based recovery logs.
    pub fn to_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Timestamp(t) => format!("TIMESTAMP {t}"),
        }
    }

    /// Feed the value into a state checksum (for cluster divergence checks).
    pub fn hash_into(&self, h: &mut crate::checksum::Fnv64) {
        match self {
            Value::Null => h.write_u8(0),
            Value::Int(i) => {
                h.write_u8(1);
                h.write_u64(*i as u64);
            }
            Value::Float(f) => {
                h.write_u8(2);
                h.write_u64(f.to_bits());
            }
            Value::Text(s) => {
                h.write_u8(3);
                h.write_bytes(s.as_bytes());
            }
            Value::Bool(b) => {
                h.write_u8(4);
                h.write_u8(*b as u8);
            }
            Value::Timestamp(t) => {
                h.write_u8(5);
                h.write_u64(*t as u64);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercion_widens_int() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Int(7).coerce_to(DataType::Timestamp).unwrap(),
            Value::Timestamp(7)
        );
    }

    #[test]
    fn coercion_rejects_mismatch() {
        assert!(Value::Text("x".into()).coerce_to(DataType::Int).is_err());
        assert!(Value::Bool(true).coerce_to(DataType::Text).is_err());
    }

    #[test]
    fn null_coerces_to_anything() {
        for ty in [DataType::Int, DataType::Text, DataType::Bool] {
            assert_eq!(Value::Null.coerce_to(ty).unwrap(), Value::Null);
        }
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::Text("a".into())];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[2], Value::Text("a".into()));
    }

    #[test]
    fn literal_round_trip_quoting() {
        assert_eq!(Value::Text("o'brien".into()).to_literal(), "'o''brien'");
        assert_eq!(Value::Null.to_literal(), "NULL");
        assert_eq!(Value::Float(2.0).to_literal(), "2.0");
    }
}
