//! Users, passwords, and per-database grants (§4.1.5).
//!
//! The paper's point: access-control state lives *outside* the data, so
//! backup tools routinely miss it and cloned replicas refuse logins. Our
//! dump format makes principals optional (off by default, like typical ETL
//! tools) precisely to reproduce that failure mode.

use std::collections::BTreeMap;

use crate::ast::Privilege;
use crate::error::SqlError;

#[derive(Debug, Clone, PartialEq)]
pub struct User {
    pub name: String,
    pub password: String,
    /// database name -> privilege.
    pub grants: BTreeMap<String, Privilege>,
}

/// The principal registry of one engine.
#[derive(Debug, Clone)]
pub struct AuthRegistry {
    users: BTreeMap<String, User>,
}

/// Name of the bootstrap superuser present in every fresh engine.
pub const ADMIN_USER: &str = "admin";
/// Bootstrap superuser password.
pub const ADMIN_PASSWORD: &str = "admin";

impl AuthRegistry {
    pub fn new() -> Self {
        let mut users = BTreeMap::new();
        users.insert(
            ADMIN_USER.to_string(),
            User {
                name: ADMIN_USER.to_string(),
                password: ADMIN_PASSWORD.to_string(),
                grants: BTreeMap::new(),
            },
        );
        AuthRegistry { users }
    }

    pub fn create_user(&mut self, name: &str, password: &str) -> Result<(), SqlError> {
        if self.users.contains_key(name) {
            return Err(SqlError::AlreadyExists(format!("user {name}")));
        }
        self.users.insert(
            name.to_string(),
            User { name: name.to_string(), password: password.to_string(), grants: BTreeMap::new() },
        );
        Ok(())
    }

    pub fn drop_user(&mut self, name: &str) -> Result<(), SqlError> {
        if name == ADMIN_USER {
            return Err(SqlError::AccessDenied("cannot drop the bootstrap superuser".into()));
        }
        self.users
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SqlError::AccessDenied(format!("unknown user {name}")))
    }

    pub fn grant(&mut self, user: &str, database: &str, privilege: Privilege) -> Result<(), SqlError> {
        let u = self
            .users
            .get_mut(user)
            .ok_or_else(|| SqlError::AccessDenied(format!("unknown user {user}")))?;
        u.grants.insert(database.to_string(), privilege);
        Ok(())
    }

    /// Verify credentials; returns the canonical user name.
    pub fn authenticate(&self, user: &str, password: &str) -> Result<String, SqlError> {
        match self.users.get(user) {
            Some(u) if u.password == password => Ok(u.name.clone()),
            _ => Err(SqlError::AccessDenied(format!("authentication failed for {user}"))),
        }
    }

    /// Check that `user` may perform `needed` on `database`. The superuser
    /// may do anything.
    pub fn check(&self, user: &str, database: &str, needed: Privilege) -> Result<(), SqlError> {
        if user == ADMIN_USER {
            return Ok(());
        }
        let u = self
            .users
            .get(user)
            .ok_or_else(|| SqlError::AccessDenied(format!("unknown user {user}")))?;
        let held = u.grants.get(database).copied();
        let ok = matches!(
            (held, needed),
            (Some(Privilege::All), _)
                | (Some(Privilege::Read), Privilege::Read)
                | (Some(Privilege::Write), Privilege::Write)
                | (Some(Privilege::Write), Privilege::Read)
        );
        if ok {
            Ok(())
        } else {
            Err(SqlError::AccessDenied(format!(
                "user {user} lacks {needed} on {database}"
            )))
        }
    }

    pub fn users(&self) -> impl Iterator<Item = &User> {
        self.users.values()
    }

    /// Replace all non-admin principals with the given set (restore path).
    pub fn restore_users(&mut self, users: Vec<User>) {
        self.users.retain(|name, _| name == ADMIN_USER);
        for u in users {
            if u.name != ADMIN_USER {
                self.users.insert(u.name.clone(), u);
            }
        }
    }
}

impl Default for AuthRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authentication() {
        let mut a = AuthRegistry::new();
        a.create_user("alice", "pw").unwrap();
        assert!(a.authenticate("alice", "pw").is_ok());
        assert!(a.authenticate("alice", "wrong").is_err());
        assert!(a.authenticate("nobody", "pw").is_err());
        assert!(a.authenticate(ADMIN_USER, ADMIN_PASSWORD).is_ok());
    }

    #[test]
    fn privilege_lattice() {
        let mut a = AuthRegistry::new();
        a.create_user("bob", "pw").unwrap();
        a.grant("bob", "shop", Privilege::Read).unwrap();
        assert!(a.check("bob", "shop", Privilege::Read).is_ok());
        assert!(a.check("bob", "shop", Privilege::Write).is_err());
        a.grant("bob", "shop", Privilege::Write).unwrap();
        assert!(a.check("bob", "shop", Privilege::Read).is_ok(), "write implies read");
        assert!(a.check("bob", "other", Privilege::Read).is_err());
    }

    #[test]
    fn restore_drops_stale_users() {
        let mut a = AuthRegistry::new();
        a.create_user("stale", "pw").unwrap();
        a.restore_users(vec![User {
            name: "fresh".into(),
            password: "pw".into(),
            grants: BTreeMap::new(),
        }]);
        assert!(a.authenticate("stale", "pw").is_err());
        assert!(a.authenticate("fresh", "pw").is_ok());
        assert!(a.authenticate(ADMIN_USER, ADMIN_PASSWORD).is_ok());
    }

    #[test]
    fn admin_cannot_be_dropped() {
        let mut a = AuthRegistry::new();
        assert!(a.drop_user(ADMIN_USER).is_err());
    }
}
