//! Abstract syntax tree for the supported SQL dialect, plus a renderer that
//! turns the AST back into canonical SQL text.
//!
//! The renderer matters for replication: statement-based replication ships
//! (possibly rewritten) SQL text to the replicas and into the recovery log,
//! so `parse(render(ast)) == ast` is a load-bearing invariant, checked by a
//! property test.

use std::fmt;

use crate::value::Value;

/// A possibly database-qualified object name (`db.table` or `table`).
/// Names are normalized to lowercase at parse time; quoted identifiers
/// preserve case.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName {
    pub database: Option<String>,
    pub name: String,
}

impl ObjectName {
    pub fn bare(name: impl Into<String>) -> Self {
        ObjectName { database: None, name: name.into() }
    }

    pub fn qualified(db: impl Into<String>, name: impl Into<String>) -> Self {
        ObjectName { database: Some(db.into()), name: name.into() }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.database {
            Some(db) => write!(f, "{db}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Transaction isolation levels exposed by the engine (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// Default in every production DBMS per the paper.
    ReadCommitted,
    /// Snapshot isolation (first-committer-wins).
    SnapshotIsolation,
    /// SI plus commit-time read validation (optimistic 1SR).
    Serializable,
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IsolationLevel::ReadCommitted => "READ COMMITTED",
            IsolationLevel::SnapshotIsolation => "SNAPSHOT",
            IsolationLevel::Serializable => "SERIALIZABLE",
        })
    }
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: crate::value::DataType,
    pub not_null: bool,
    pub primary_key: bool,
    /// AUTO_INCREMENT: assigned from a non-transactional per-table counter.
    pub auto_increment: bool,
    pub default: Option<Expr>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerEvent {
    Insert,
    Update,
    Delete,
}

impl fmt::Display for TriggerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TriggerEvent::Insert => "INSERT",
            TriggerEvent::Update => "UPDATE",
            TriggerEvent::Delete => "DELETE",
        })
    }
}

/// One parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateDatabase { name: String, if_not_exists: bool },
    DropDatabase { name: String },
    UseDatabase { name: String },
    CreateTable {
        name: ObjectName,
        columns: Vec<ColumnDef>,
        temporary: bool,
        if_not_exists: bool,
    },
    DropTable { name: ObjectName, if_exists: bool },
    Insert {
        table: ObjectName,
        columns: Vec<String>,
        source: InsertSource,
    },
    Update {
        table: ObjectName,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    Delete { table: ObjectName, filter: Option<Expr> },
    Select(Box<Select>),
    Begin { isolation: Option<IsolationLevel> },
    Commit,
    Rollback,
    CreateSequence { name: ObjectName, start: i64, if_not_exists: bool },
    DropSequence { name: ObjectName },
    CreateUser { name: String, password: String },
    DropUser { name: String },
    Grant { privilege: Privilege, database: String, user: String },
    CreateTrigger {
        name: String,
        event: TriggerEvent,
        table: ObjectName,
        body: Vec<Statement>,
    },
    DropTrigger { name: String, table: ObjectName },
    CreateProcedure {
        name: ObjectName,
        params: Vec<String>,
        body: Vec<Statement>,
    },
    DropProcedure { name: ObjectName },
    Call { name: ObjectName, args: Vec<Expr> },
    /// SET <var> = <expr>: session variable (also models the paper's
    /// "environment variable updates" writeset blind spot).
    Set { name: String, value: Expr },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    All,
    Read,
    Write,
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Privilege::All => "ALL",
            Privilege::Read => "READ",
            Privilege::Write => "WRITE",
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<Select>),
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub projections: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
    pub for_update: bool,
}

impl Select {
    /// An empty SELECT skeleton; the parser fills it in.
    pub fn empty() -> Self {
        Select {
            projections: Vec::new(),
            from: None,
            filter: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
            for_update: false,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub asc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Wildcard,
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table { name: ObjectName, alias: Option<String> },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        on: Expr,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Table name or alias qualifier; `NEW` inside trigger bodies.
    pub table: Option<String>,
    pub name: String,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column(ColumnRef),
    Unary { op: UnOp, expr: Box<Expr> },
    Binary { left: Box<Expr>, op: BinOp, right: Box<Expr> },
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    IsNull { expr: Box<Expr>, negated: bool },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    InSelect {
        expr: Box<Expr>,
        select: Box<Select>,
        negated: bool,
    },
    ScalarSubquery(Box<Select>),
    Exists { select: Box<Select>, negated: bool },
    /// Function call: NOW(), RAND(), NEXTVAL('seq'), LENGTH(x), ...
    Function { name: String, args: Vec<Expr> },
    /// `?` positional parameter (0-based, textual order). Produced when
    /// parsing a normalized prepared-statement template; must be bound to a
    /// literal before execution.
    Param(usize),
}

impl Expr {
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef { table: None, name: name.into() })
    }

    /// Walk the expression tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSelect { expr, select, .. } => {
                expr.walk(f);
                select.walk_exprs(f);
            }
            Expr::ScalarSubquery(select) | Expr::Exists { select, .. } => select.walk_exprs(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Mutable walk (pre-order) used by query rewriting.
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.walk_mut(f),
            Expr::Binary { left, right, .. } => {
                left.walk_mut(f);
                right.walk_mut(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk_mut(f);
                pattern.walk_mut(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk_mut(f);
                low.walk_mut(f);
                high.walk_mut(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_mut(f);
                for e in list {
                    e.walk_mut(f);
                }
            }
            Expr::InSelect { expr, select, .. } => {
                expr.walk_mut(f);
                select.walk_exprs_mut(f);
            }
            Expr::ScalarSubquery(select) | Expr::Exists { select, .. } => {
                select.walk_exprs_mut(f)
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk_mut(f);
                }
            }
        }
    }
}

impl Select {
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        for item in &self.projections {
            if let SelectItem::Expr { expr, .. } = item {
                expr.walk(f);
            }
        }
        if let Some(w) = &self.filter {
            w.walk(f);
        }
        for e in &self.group_by {
            e.walk(f);
        }
        if let Some(h) = &self.having {
            h.walk(f);
        }
        for k in &self.order_by {
            k.expr.walk(f);
        }
        if let Some(TableRef::Join { on, .. }) = &self.from {
            on.walk(f);
        }
    }

    pub fn walk_exprs_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        for item in &mut self.projections {
            if let SelectItem::Expr { expr, .. } = item {
                expr.walk_mut(f);
            }
        }
        if let Some(w) = &mut self.filter {
            w.walk_mut(f);
        }
        for e in &mut self.group_by {
            e.walk_mut(f);
        }
        if let Some(h) = &mut self.having {
            h.walk_mut(f);
        }
        for k in &mut self.order_by {
            k.expr.walk_mut(f);
        }
        if let Some(TableRef::Join { on, .. }) = &mut self.from {
            on.walk_mut(f);
        }
    }
}

impl Statement {
    /// True if executing this statement can never modify database state.
    /// The middleware router uses this to send reads to slaves (§2.1).
    /// CALL is conservatively a write: the paper notes that without a schema
    /// describing procedure behaviour, the middleware cannot know (§4.2.1).
    pub fn is_read_only(&self) -> bool {
        match self {
            Statement::Select(s) => !s.for_update && !select_has_side_effects(s),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => true,
            Statement::UseDatabase { .. } | Statement::Set { .. } => true,
            _ => false,
        }
    }

    /// Tables written by this statement, for table-granularity scheduling
    /// (the paper notes statement-level middleware can realistically lock
    /// only at table granularity, §4.3.2). Empty for CALL: procedure bodies
    /// are opaque to the middleware.
    pub fn written_tables(&self) -> Vec<ObjectName> {
        match self {
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => vec![table.clone()],
            Statement::CreateTable { name, .. } | Statement::DropTable { name, .. } => {
                vec![name.clone()]
            }
            _ => Vec::new(),
        }
    }

    /// Walk all expressions in the statement (including nested statements of
    /// trigger/procedure bodies).
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Statement::Insert { source, .. } => match source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            e.walk(f);
                        }
                    }
                }
                InsertSource::Select(s) => s.walk_exprs(f),
            },
            Statement::Update { assignments, filter, .. } => {
                for (_, e) in assignments {
                    e.walk(f);
                }
                if let Some(w) = filter {
                    w.walk(f);
                }
            }
            Statement::Delete { filter: Some(w), .. } => w.walk(f),
            Statement::Select(s) => s.walk_exprs(f),
            Statement::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Statement::Set { value, .. } => value.walk(f),
            Statement::CreateTrigger { body, .. } | Statement::CreateProcedure { body, .. } => {
                for st in body {
                    st.walk_exprs(f);
                }
            }
            _ => {}
        }
    }

    pub fn walk_exprs_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        match self {
            Statement::Insert { source, .. } => match source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            e.walk_mut(f);
                        }
                    }
                }
                InsertSource::Select(s) => s.walk_exprs_mut(f),
            },
            Statement::Update { assignments, filter, .. } => {
                for (_, e) in assignments {
                    e.walk_mut(f);
                }
                if let Some(w) = filter {
                    w.walk_mut(f);
                }
            }
            Statement::Delete { filter: Some(w), .. } => w.walk_mut(f),
            Statement::Select(s) => s.walk_exprs_mut(f),
            Statement::Call { args, .. } => {
                for a in args {
                    a.walk_mut(f);
                }
            }
            Statement::Set { value, .. } => value.walk_mut(f),
            Statement::CreateTrigger { body, .. } | Statement::CreateProcedure { body, .. } => {
                for st in body {
                    st.walk_exprs_mut(f);
                }
            }
            _ => {}
        }
    }

    /// Tables this statement reads, including subquery FROM clauses.
    /// CALL returns nothing: procedure bodies are opaque (§4.2.1).
    pub fn read_tables(&self) -> Vec<ObjectName> {
        let mut out = Vec::new();
        let sub = |e: &Expr, out: &mut Vec<ObjectName>| {
            if let Expr::InSelect { select, .. }
            | Expr::ScalarSubquery(select)
            | Expr::Exists { select, .. } = e
            {
                collect_select_tables(select, out);
            }
        };
        match self {
            Statement::Select(s) => collect_select_tables(s, &mut out),
            Statement::Insert { source, .. } => match source {
                InsertSource::Select(s) => collect_select_tables(s, &mut out),
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            e.walk(&mut |e| sub(e, &mut out));
                        }
                    }
                }
            },
            Statement::Update { table, assignments, filter } => {
                out.push(table.clone());
                for (_, e) in assignments {
                    e.walk(&mut |e| sub(e, &mut out));
                }
                if let Some(w) = filter {
                    w.walk(&mut |e| sub(e, &mut out));
                }
            }
            Statement::Delete { table, filter } => {
                out.push(table.clone());
                if let Some(w) = filter {
                    w.walk(&mut |e| sub(e, &mut out));
                }
            }
            _ => {}
        }
        let mut seen = Vec::new();
        out.retain(|t| {
            if seen.contains(t) {
                false
            } else {
                seen.push(t.clone());
                true
            }
        });
        out
    }

    /// DDL and other operations the engine cannot undo on rollback
    /// (§4.3.2: "database updates that cannot be rolled back").
    pub fn is_irreversible(&self) -> bool {
        matches!(
            self,
            Statement::CreateDatabase { .. }
                | Statement::DropDatabase { .. }
                | Statement::CreateTable { .. }
                | Statement::DropTable { .. }
                | Statement::CreateSequence { .. }
                | Statement::DropSequence { .. }
                | Statement::CreateUser { .. }
                | Statement::DropUser { .. }
                | Statement::Grant { .. }
                | Statement::CreateTrigger { .. }
                | Statement::DropTrigger { .. }
                | Statement::CreateProcedure { .. }
                | Statement::DropProcedure { .. }
        )
    }
}

/// Collect all tables referenced by a SELECT, including nested subqueries.
pub fn collect_select_tables(s: &Select, out: &mut Vec<ObjectName>) {
    fn from_ref(r: &TableRef, out: &mut Vec<ObjectName>) {
        match r {
            TableRef::Table { name, .. } => out.push(name.clone()),
            TableRef::Join { left, right, .. } => {
                from_ref(left, out);
                from_ref(right, out);
            }
        }
    }
    if let Some(fr) = &s.from {
        from_ref(fr, out);
    }
    s.walk_exprs(&mut |e| match e {
        Expr::InSelect { select, .. }
        | Expr::ScalarSubquery(select)
        | Expr::Exists { select, .. } => collect_select_tables(select, out),
        _ => {}
    });
}

fn select_has_side_effects(s: &Select) -> bool {
    // NEXTVAL inside a SELECT advances the sequence: a write in disguise.
    let mut side_effect = false;
    s.walk_exprs(&mut |e| {
        if let Expr::Function { name, .. } = e {
            if name.eq_ignore_ascii_case("nextval") {
                side_effect = true;
            }
        }
    });
    side_effect
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_classification() {
        let sel = Statement::Select(Box::new(Select::empty()));
        assert!(sel.is_read_only());
        let ins = Statement::Insert {
            table: ObjectName::bare("t"),
            columns: vec![],
            source: InsertSource::Values(vec![]),
        };
        assert!(!ins.is_read_only());
        let call = Statement::Call { name: ObjectName::bare("p"), args: vec![] };
        assert!(!call.is_read_only(), "CALL must be treated as a write");
    }

    #[test]
    fn select_for_update_is_a_write() {
        let mut s = Select::empty();
        s.for_update = true;
        assert!(!Statement::Select(Box::new(s)).is_read_only());
    }

    #[test]
    fn nextval_in_select_is_a_write() {
        let mut s = Select::empty();
        s.projections.push(SelectItem::Expr {
            expr: Expr::Function { name: "nextval".into(), args: vec![Expr::lit("seq")] },
            alias: None,
        });
        assert!(!Statement::Select(Box::new(s)).is_read_only());
    }

    #[test]
    fn ddl_is_irreversible() {
        assert!(Statement::CreateTable {
            name: ObjectName::bare("t"),
            columns: vec![],
            temporary: false,
            if_not_exists: false,
        }
        .is_irreversible());
        assert!(!Statement::Commit.is_irreversible());
    }
}
