//! Order-preserving key encoding for the durable log ([`crate::wal`]).
//!
//! Record keys on disk must compare in the same order as the logical
//! positions they encode so a recovery scan (or a future range lookup over
//! checkpoint segments) can treat the byte stream as already sorted — the
//! same contract toydb's `keycode` and bitcask-style indexes rely on.
//!
//! Encodings (all comparisons are on the raw encoded bytes):
//! - `u64`: big-endian — byte order equals numeric order.
//! - `i64`: sign bit flipped, then big-endian — negative numbers sort
//!   before positive ones.
//! - bytes / strings: every `0x00` input byte is escaped as `0x00 0xff`,
//!   and the value is terminated with `0x00 0x00`. A shared prefix thus
//!   sorts before any extension, and no encoded value is a prefix of
//!   another.

/// Errors from the decoding half. The WAL treats any decode failure at the
/// tail of the log as a torn write (truncate and move on); anywhere else it
/// is corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeycodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// An escape sequence other than `00 ff` / terminator `00 00`.
    BadEscape,
    /// Decoded bytes were not valid UTF-8 (string decoding only).
    BadUtf8,
}

/// Append the order-preserving encoding of `v` to `out`.
pub fn encode_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Decode a `u64` written by [`encode_u64`]; returns the value and the rest
/// of the input.
pub fn decode_u64(input: &[u8]) -> Result<(u64, &[u8]), KeycodeError> {
    if input.len() < 8 {
        return Err(KeycodeError::Truncated);
    }
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&input[..8]);
    Ok((u64::from_be_bytes(buf), &input[8..]))
}

/// Append the order-preserving encoding of `v` to `out` (sign bit flipped so
/// the byte order matches signed order).
pub fn encode_i64(out: &mut Vec<u8>, v: i64) {
    encode_u64(out, (v as u64) ^ (1 << 63));
}

/// Decode an `i64` written by [`encode_i64`].
pub fn decode_i64(input: &[u8]) -> Result<(i64, &[u8]), KeycodeError> {
    let (raw, rest) = decode_u64(input)?;
    Ok(((raw ^ (1 << 63)) as i64, rest))
}

/// Append the escaped, terminated encoding of `bytes` to `out`.
pub fn encode_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xff);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

/// Decode a byte string written by [`encode_bytes`]; returns the value and
/// the rest of the input.
pub fn decode_bytes(input: &[u8]) -> Result<(Vec<u8>, &[u8]), KeycodeError> {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        match input.get(i) {
            None => return Err(KeycodeError::Truncated),
            Some(0x00) => match input.get(i + 1) {
                None => return Err(KeycodeError::Truncated),
                Some(0x00) => return Ok((out, &input[i + 2..])),
                Some(0xff) => {
                    out.push(0x00);
                    i += 2;
                }
                Some(_) => return Err(KeycodeError::BadEscape),
            },
            Some(&b) => {
                out.push(b);
                i += 1;
            }
        }
    }
}

/// Append the encoding of a UTF-8 string (same representation as
/// [`encode_bytes`] over its bytes).
pub fn encode_str(out: &mut Vec<u8>, s: &str) {
    encode_bytes(out, s.as_bytes());
}

/// Decode a string written by [`encode_str`].
pub fn decode_str(input: &[u8]) -> Result<(String, &[u8]), KeycodeError> {
    let (bytes, rest) = decode_bytes(input)?;
    let s = String::from_utf8(bytes).map_err(|_| KeycodeError::BadUtf8)?;
    Ok((s, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use replimid_det::detcheck;

    fn u64_bytes(v: u64) -> Vec<u8> {
        let mut out = Vec::new();
        encode_u64(&mut out, v);
        out
    }

    fn i64_bytes(v: i64) -> Vec<u8> {
        let mut out = Vec::new();
        encode_i64(&mut out, v);
        out
    }

    fn str_bytes(s: &str) -> Vec<u8> {
        let mut out = Vec::new();
        encode_str(&mut out, s);
        out
    }

    /// Known-answer vectors pin the on-disk representation: changing any of
    /// these silently breaks every existing WAL/checkpoint image.
    #[test]
    fn kat_vectors() {
        assert_eq!(u64_bytes(0), [0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(u64_bytes(1), [0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(u64_bytes(0x0102_0304_0506_0708), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(u64_bytes(u64::MAX), [0xff; 8]);

        assert_eq!(i64_bytes(i64::MIN), [0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(i64_bytes(-1), [0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff]);
        assert_eq!(i64_bytes(0), [0x80, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(i64_bytes(1), [0x80, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(i64_bytes(i64::MAX), [0xff; 8]);

        assert_eq!(str_bytes(""), [0x00, 0x00]);
        assert_eq!(str_bytes("ab"), [b'a', b'b', 0x00, 0x00]);
        let mut nul = Vec::new();
        encode_bytes(&mut nul, &[0x00, 0x01]);
        assert_eq!(nul, [0x00, 0xff, 0x01, 0x00, 0x00]);
    }

    #[test]
    fn decode_round_trips_and_rejects_garbage() {
        for v in [0u64, 1, 42, u64::MAX] {
            let enc = u64_bytes(v);
            assert_eq!(decode_u64(&enc).unwrap(), (v, &[][..]));
        }
        for v in [i64::MIN, -7, 0, 7, i64::MAX] {
            let enc = i64_bytes(v);
            assert_eq!(decode_i64(&enc).unwrap(), (v, &[][..]));
        }
        assert_eq!(decode_u64(&[1, 2, 3]), Err(KeycodeError::Truncated));
        assert_eq!(decode_bytes(b"a"), Err(KeycodeError::Truncated));
        assert_eq!(decode_bytes(&[0x00, 0x07]), Err(KeycodeError::BadEscape));
        assert_eq!(decode_str(&[0xc3, 0x28, 0x00, 0x00]), Err(KeycodeError::BadUtf8));
    }

    #[test]
    fn encoding_preserves_order() {
        detcheck::check("keycode_u64_order", 300, |rng| {
            let a = rng.next_u64();
            let b = rng.next_u64();
            assert_eq!(a.cmp(&b), u64_bytes(a).cmp(&u64_bytes(b)));
        });
        detcheck::check("keycode_i64_order", 300, |rng| {
            let a = rng.next_u64() as i64;
            let b = rng.next_u64() as i64;
            assert_eq!(a.cmp(&b), i64_bytes(a).cmp(&i64_bytes(b)));
        });
        detcheck::check("keycode_bytes_order", 300, |rng| {
            let n = rng.gen_range(0..6) as usize;
            let m = rng.gen_range(0..6) as usize;
            let a: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4) as u8).collect();
            let b: Vec<u8> = (0..m).map(|_| rng.gen_range(0..4) as u8).collect();
            let mut ea = Vec::new();
            let mut eb = Vec::new();
            encode_bytes(&mut ea, &a);
            encode_bytes(&mut eb, &b);
            assert_eq!(a.cmp(&b), ea.cmp(&eb), "a={a:?} b={b:?}");
            let (da, rest) = decode_bytes(&ea).unwrap();
            assert_eq!((da, rest.len()), (a, 0));
        });
    }
}
