//! Durable storage under the engine: a simulated block device, a
//! bitcask-style framed write-ahead log, and checkpoint snapshots.
//!
//! Everything here is hermetic and deterministic — no real filesystem, no
//! external crates. The "device" is a byte vector with an explicit fsync
//! horizon; time is *not* modelled here (the engine has no clock authority).
//! Instead every operation bumps [`IoCounters`], and the database-node actor
//! converts those counters into virtual time with the simulator's disk
//! model. That keeps the dependency direction clean: `sql` knows bytes,
//! `simnet` knows microseconds.
//!
//! On-disk layout (all integers in [`crate::keycode`] big-endian order):
//!
//! ```text
//! WAL record frame:   [len: u64][fnv64(payload): u64][payload: len bytes]
//! payload:            keycode-encoded [`WalRecord`]
//! checkpoint device:  one frame holding an encoded [`Checkpoint`]
//! ```
//!
//! Crash semantics ([`CrashKind`]):
//! - `Clean`: an orderly stop — every buffered write reaches the platter.
//! - `LostTail`: power loss — bytes past the last fsync vanish.
//! - `TornTail`: power loss mid-write — a prefix of the unsynced region
//!   survives and its final sector is garbage. Recovery truncates at the
//!   first record whose checksum fails.
//!
//! Nothing before the fsync horizon is ever altered, which is exactly the
//! guarantee the recovery property tests pin down: zero committed loss past
//! the last fsync.

use crate::ast::{ObjectName, Statement};
use crate::auth::User;
use crate::binlog::{BinlogEntry, Lsn};
use crate::catalog::{ProcedureDef, TriggerDef};
use crate::checksum::Fnv64;
use crate::dump::{DatabaseDump, Dump, TableDump};
use crate::keycode;
use crate::mvcc::{CommitTs, RowId, WriteKind, WriteRecord};
use crate::parser::parse_statement;
use crate::value::Value;
use crate::writeset::{CounterSync, Writeset};

/// How a backend process dies (injected by the fault schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashKind {
    /// Orderly shutdown: all buffered writes are flushed first.
    #[default]
    Clean,
    /// Power loss: every byte past the last fsync is gone.
    LostTail,
    /// Power loss mid-write: part of the unsynced tail survives, its last
    /// written byte torn (corrupted).
    TornTail,
}

impl CrashKind {
    pub fn name(self) -> &'static str {
        match self {
            CrashKind::Clean => "clean",
            CrashKind::LostTail => "lost-tail",
            CrashKind::TornTail => "torn-tail",
        }
    }
}

/// IO work performed against the simulated device, drained by the node
/// actor and converted to virtual time via `simnet`'s disk model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub fsyncs: u64,
}

impl IoCounters {
    pub fn is_zero(&self) -> bool {
        *self == IoCounters::default()
    }

    fn add(&mut self, other: &IoCounters) {
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.fsyncs += other.fsyncs;
    }
}

/// A simulated block device: an append-only byte image with an fsync
/// horizon separating durable from buffered bytes.
#[derive(Debug, Clone, Default)]
pub struct BlockDev {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a power loss.
    synced: usize,
}

impl BlockDev {
    pub fn append(&mut self, bytes: &[u8], io: &mut IoCounters) {
        self.data.extend_from_slice(bytes);
        io.bytes_written += bytes.len() as u64;
    }

    pub fn fsync(&mut self, io: &mut IoCounters) {
        self.synced = self.data.len();
        io.fsyncs += 1;
    }

    pub fn read_all(&self, io: &mut IoCounters) -> &[u8] {
        io.bytes_read += self.data.len() as u64;
        &self.data
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn synced_len(&self) -> usize {
        self.synced
    }

    /// Discard the image (checkpoint truncation). Counted as a metadata
    /// write, not a data write.
    pub fn clear(&mut self, io: &mut IoCounters) {
        self.data.clear();
        self.synced = 0;
        io.fsyncs += 1;
    }

    /// Truncate buffered garbage found during recovery; never cuts into the
    /// synced region's valid records (callers pass a scan-validated length).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
        self.synced = self.synced.min(self.data.len());
    }

    /// Apply crash semantics. `entropy` picks the torn offset
    /// deterministically (the caller draws it from the simulation RNG).
    pub fn crash(&mut self, kind: CrashKind, entropy: u64) {
        match kind {
            CrashKind::Clean => {
                self.synced = self.data.len();
            }
            CrashKind::LostTail => {
                self.data.truncate(self.synced);
            }
            CrashKind::TornTail => {
                let unsynced = self.data.len() - self.synced;
                if unsynced > 0 {
                    let keep = (entropy as usize) % (unsynced + 1);
                    self.data.truncate(self.synced + keep);
                    if keep > 0 {
                        // The torn sector's final byte is garbage.
                        let last = self.data.len() - 1;
                        self.data[last] ^= 0xa5;
                    }
                }
                self.synced = self.synced.min(self.data.len());
            }
        }
    }

    /// Mark the current image durable without charging an fsync — used
    /// after recovery, when the surviving bytes were just read *from* disk.
    fn mark_synced(&mut self) {
        self.synced = self.data.len();
    }
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

const FRAME_HEADER: usize = 16; // len (8) + fnv64 (8)

fn frame(payload: &[u8], out: &mut Vec<u8>) {
    keycode::encode_u64(out, payload.len() as u64);
    let mut h = Fnv64::new();
    h.write_bytes(payload);
    keycode::encode_u64(out, h.finish());
    out.extend_from_slice(payload);
}

/// Walk framed records from `bytes`, stopping at the first frame that is
/// short, oversized, or checksum-corrupt. Returns the payloads and the
/// length of the valid prefix; `torn` is true when trailing bytes remain.
fn scan_frames(bytes: &[u8]) -> (Vec<&[u8]>, usize, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER {
            return (records, pos, true);
        }
        let (len, rest2) = keycode::decode_u64(rest).expect("checked length");
        let (sum, body) = keycode::decode_u64(rest2).expect("checked length");
        let len = len as usize;
        if body.len() < len {
            return (records, pos, true);
        }
        let payload = &body[..len];
        let mut h = Fnv64::new();
        h.write_bytes(payload);
        if h.finish() != sum {
            return (records, pos, true);
        }
        records.push(payload);
        pos += FRAME_HEADER + len;
    }
    (records, pos, false)
}

// ---------------------------------------------------------------------
// Binary codec (keycode integers + escaped strings throughout)
// ---------------------------------------------------------------------

type DecodeResult<T> = Result<T, String>;

struct Rd<'a> {
    b: &'a [u8],
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b }
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        let (v, rest) = keycode::decode_u64(self.b).map_err(|e| format!("u64: {e:?}"))?;
        self.b = rest;
        Ok(v)
    }

    fn i64(&mut self) -> DecodeResult<i64> {
        let (v, rest) = keycode::decode_i64(self.b).map_err(|e| format!("i64: {e:?}"))?;
        self.b = rest;
        Ok(v)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        let (&v, rest) = self.b.split_first().ok_or("u8: truncated")?;
        self.b = rest;
        Ok(v)
    }

    fn bool(&mut self) -> DecodeResult<bool> {
        Ok(self.u8()? != 0)
    }

    fn str(&mut self) -> DecodeResult<String> {
        let (v, rest) = keycode::decode_str(self.b).map_err(|e| format!("str: {e:?}"))?;
        self.b = rest;
        Ok(v)
    }

    fn done(&self) -> DecodeResult<()> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes", self.b.len()))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    keycode::encode_str(out, s);
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn get_opt_str(rd: &mut Rd<'_>) -> DecodeResult<Option<String>> {
    Ok(if rd.u8()? == 0 { None } else { Some(rd.str()?) })
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            keycode::encode_i64(out, *i);
        }
        Value::Float(f) => {
            out.push(2);
            keycode::encode_u64(out, f.to_bits());
        }
        Value::Text(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
        Value::Timestamp(t) => {
            out.push(5);
            keycode::encode_i64(out, *t);
        }
    }
}

fn get_value(rd: &mut Rd<'_>) -> DecodeResult<Value> {
    Ok(match rd.u8()? {
        0 => Value::Null,
        1 => Value::Int(rd.i64()?),
        2 => Value::Float(f64::from_bits(rd.u64()?)),
        3 => Value::Text(rd.str()?),
        4 => Value::Bool(rd.u8()? != 0),
        5 => Value::Timestamp(rd.i64()?),
        t => return Err(format!("bad value tag {t}")),
    })
}

fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    keycode::encode_u64(out, row.len() as u64);
    for v in row {
        put_value(out, v);
    }
}

fn get_row(rd: &mut Rd<'_>) -> DecodeResult<Vec<Value>> {
    let n = rd.u64()?;
    (0..n).map(|_| get_value(rd)).collect()
}

fn put_opt_row(out: &mut Vec<u8>, row: &Option<Vec<Value>>) {
    match row {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            put_row(out, r);
        }
    }
}

fn get_opt_row(rd: &mut Rd<'_>) -> DecodeResult<Option<Vec<Value>>> {
    Ok(if rd.u8()? == 0 { None } else { Some(get_row(rd)?) })
}

fn put_write_record(out: &mut Vec<u8>, w: &WriteRecord) {
    put_str(out, &w.database);
    put_str(out, &w.table);
    keycode::encode_u64(out, w.row.0);
    out.push(match w.kind {
        WriteKind::Insert => 0,
        WriteKind::Update => 1,
        WriteKind::Delete => 2,
    });
    put_opt_row(out, &w.old);
    put_opt_row(out, &w.new);
    out.push(w.temp as u8);
}

fn get_write_record(rd: &mut Rd<'_>) -> DecodeResult<WriteRecord> {
    Ok(WriteRecord {
        database: rd.str()?,
        table: rd.str()?,
        row: RowId(rd.u64()?),
        kind: match rd.u8()? {
            0 => WriteKind::Insert,
            1 => WriteKind::Update,
            2 => WriteKind::Delete,
            t => return Err(format!("bad write kind {t}")),
        },
        old: get_opt_row(rd)?,
        new: get_opt_row(rd)?,
        temp: rd.bool()?,
    })
}

fn put_counter_sync(out: &mut Vec<u8>, cs: &CounterSync) {
    keycode::encode_u64(out, cs.sequences.len() as u64);
    for ((db, name), v) in &cs.sequences {
        put_str(out, db);
        put_str(out, name);
        keycode::encode_i64(out, *v);
    }
    keycode::encode_u64(out, cs.auto_increments.len() as u64);
    for ((db, table), v) in &cs.auto_increments {
        put_str(out, db);
        put_str(out, table);
        keycode::encode_i64(out, *v);
    }
}

fn get_counter_sync(rd: &mut Rd<'_>) -> DecodeResult<CounterSync> {
    let mut cs = CounterSync::default();
    for _ in 0..rd.u64()? {
        cs.sequences.push(((rd.str()?, rd.str()?), rd.i64()?));
    }
    for _ in 0..rd.u64()? {
        cs.auto_increments.push(((rd.str()?, rd.str()?), rd.i64()?));
    }
    Ok(cs)
}

fn put_writeset(out: &mut Vec<u8>, ws: &Writeset) {
    keycode::encode_u64(out, ws.entries.len() as u64);
    for e in &ws.entries {
        put_write_record(out, e);
    }
    match &ws.counters {
        None => out.push(0),
        Some(cs) => {
            out.push(1);
            put_counter_sync(out, cs);
        }
    }
}

fn get_writeset(rd: &mut Rd<'_>) -> DecodeResult<Writeset> {
    let n = rd.u64()?;
    let entries = (0..n).map(|_| get_write_record(rd)).collect::<DecodeResult<_>>()?;
    let counters = if rd.u8()? == 0 { None } else { Some(get_counter_sync(rd)?) };
    Ok(Writeset { entries, counters })
}

fn put_binlog_entry(out: &mut Vec<u8>, e: &BinlogEntry) {
    keycode::encode_u64(out, e.lsn.0);
    keycode::encode_u64(out, e.commit_ts.0);
    put_opt_str(out, &e.default_db);
    keycode::encode_u64(out, e.statements.len() as u64);
    for s in &e.statements {
        put_str(out, s);
    }
    put_writeset(out, &e.writeset);
}

fn get_binlog_entry(rd: &mut Rd<'_>) -> DecodeResult<BinlogEntry> {
    let lsn = Lsn(rd.u64()?);
    let commit_ts = CommitTs(rd.u64()?);
    let default_db = get_opt_str(rd)?;
    let n = rd.u64()?;
    let statements = (0..n).map(|_| rd.str()).collect::<DecodeResult<_>>()?;
    let writeset = get_writeset(rd)?;
    Ok(BinlogEntry { lsn, commit_ts, default_db, statements, writeset })
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One durable log record. Every `Commit` carries the node's replication
/// positions *at append time*, so data and positions live or die together
/// across a torn tail — a node can never recover data it has no position
/// for (the double-apply hazard of split redo/metadata logs).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed transaction, mirrored from the binlog.
    Commit { entry: BinlogEntry, applied_lsn: u64, ordered_applied: u64 },
    /// Replication positions advanced without a local commit (idempotent
    /// skips, applied no-ops).
    Meta { applied_lsn: u64, ordered_applied: u64 },
    /// Non-transactional counter state (sequences, AUTO_INCREMENT) at append
    /// time. These advance outside commit records (§4.2.3: a NEXTVAL in an
    /// aborted transaction still bumps the sequence), so without this record
    /// a crash between checkpoints would recover stale counters and hand out
    /// duplicate keys.
    Counters(CounterSync),
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Commit { entry, applied_lsn, ordered_applied } => {
                // keycode key prefix: (tag, lsn) — record keys compare in
                // log order as raw bytes.
                keycode::encode_u64(&mut out, 1);
                keycode::encode_u64(&mut out, entry.lsn.0);
                keycode::encode_u64(&mut out, *applied_lsn);
                keycode::encode_u64(&mut out, *ordered_applied);
                put_binlog_entry(&mut out, entry);
            }
            WalRecord::Meta { applied_lsn, ordered_applied } => {
                keycode::encode_u64(&mut out, 2);
                keycode::encode_u64(&mut out, *applied_lsn);
                keycode::encode_u64(&mut out, *ordered_applied);
            }
            WalRecord::Counters(cs) => {
                keycode::encode_u64(&mut out, 3);
                put_counter_sync(&mut out, cs);
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> DecodeResult<WalRecord> {
        let mut rd = Rd::new(payload);
        let rec = match rd.u64()? {
            1 => {
                let _key_lsn = rd.u64()?;
                let applied_lsn = rd.u64()?;
                let ordered_applied = rd.u64()?;
                let entry = get_binlog_entry(&mut rd)?;
                WalRecord::Commit { entry, applied_lsn, ordered_applied }
            }
            2 => WalRecord::Meta { applied_lsn: rd.u64()?, ordered_applied: rd.u64()? },
            3 => WalRecord::Counters(get_counter_sync(&mut rd)?),
            t => return Err(format!("bad record tag {t}")),
        };
        rd.done()?;
        Ok(rec)
    }
}

// ---------------------------------------------------------------------
// Checkpoint codec
// ---------------------------------------------------------------------

/// Magic + version guarding the checkpoint image.
const CKPT_MAGIC: u64 = 0x524d_434b_5054_0001; // "RMCKPT" v1

/// A durable snapshot of engine state plus the replication positions it
/// covers. Recovery loads the checkpoint, then replays the WAL suffix.
/// The operator-facing dump/restore path round-trips through this exact
/// format, so a backup taken by an operator is bit-for-bit what recovery
/// itself consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub dump: Dump,
    pub applied_lsn: u64,
    pub ordered_applied: u64,
    /// Local binlog head at snapshot time; the reborn binlog is rebased
    /// here, so peers further behind get an honest "log truncated" signal.
    pub binlog_head: u64,
}

/// Encode a checkpoint to its durable byte image.
pub fn encode_checkpoint(c: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::new();
    keycode::encode_u64(&mut out, CKPT_MAGIC);
    keycode::encode_u64(&mut out, c.applied_lsn);
    keycode::encode_u64(&mut out, c.ordered_applied);
    keycode::encode_u64(&mut out, c.binlog_head);
    keycode::encode_u64(&mut out, c.dump.at_ts.0);
    keycode::encode_u64(&mut out, c.dump.checksum);
    keycode::encode_u64(&mut out, c.dump.databases.len() as u64);
    for db in &c.dump.databases {
        put_str(&mut out, &db.name);
        keycode::encode_u64(&mut out, db.tables.len() as u64);
        for t in &db.tables {
            // Schema (columns, defaults, PK flags) rides as rendered SQL:
            // `parse(render(stmt)) == stmt` is property-tested, so the text
            // form is the one schema codec that cannot drift from the AST.
            let ddl = Statement::CreateTable {
                name: ObjectName::bare(t.name.clone()),
                columns: t.columns.clone(),
                temporary: false,
                if_not_exists: false,
            };
            put_str(&mut out, &ddl.to_string());
            keycode::encode_i64(&mut out, t.auto_inc);
            keycode::encode_u64(&mut out, t.rows.len() as u64);
            for row in &t.rows {
                put_row(&mut out, row);
            }
        }
        keycode::encode_u64(&mut out, db.sequences.len() as u64);
        for (name, v) in &db.sequences {
            put_str(&mut out, name);
            keycode::encode_i64(&mut out, *v);
        }
        keycode::encode_u64(&mut out, db.triggers.len() as u64);
        for trg in &db.triggers {
            let ddl = Statement::CreateTrigger {
                name: trg.name.clone(),
                event: trg.event,
                table: ObjectName::bare(trg.table.clone()),
                body: trg.body.clone(),
            };
            put_str(&mut out, &ddl.to_string());
        }
        keycode::encode_u64(&mut out, db.procedures.len() as u64);
        for p in &db.procedures {
            let ddl = Statement::CreateProcedure {
                name: ObjectName::bare(p.name.clone()),
                params: p.params.clone(),
                body: p.body.clone(),
            };
            put_str(&mut out, &ddl.to_string());
        }
    }
    match &c.dump.users {
        None => out.push(0),
        Some(users) => {
            out.push(1);
            keycode::encode_u64(&mut out, users.len() as u64);
            for u in users {
                put_str(&mut out, &u.name);
                put_str(&mut out, &u.password);
                keycode::encode_u64(&mut out, u.grants.len() as u64);
                for (db, p) in &u.grants {
                    put_str(&mut out, db);
                    out.push(match p {
                        crate::ast::Privilege::All => 0,
                        crate::ast::Privilege::Read => 1,
                        crate::ast::Privilege::Write => 2,
                    });
                }
            }
        }
    }
    out
}

fn table_from_ddl(ddl: &str) -> DecodeResult<(String, Vec<crate::ast::ColumnDef>)> {
    match parse_statement(ddl) {
        Ok(Statement::CreateTable { name, columns, .. }) => Ok((name.name, columns)),
        Ok(other) => Err(format!("checkpoint table DDL parsed as {other}")),
        Err(e) => Err(format!("checkpoint table DDL: {e}")),
    }
}

/// Decode a checkpoint image (inverse of [`encode_checkpoint`]).
pub fn decode_checkpoint(bytes: &[u8]) -> DecodeResult<Checkpoint> {
    let mut rd = Rd::new(bytes);
    if rd.u64()? != CKPT_MAGIC {
        return Err("bad checkpoint magic".into());
    }
    let applied_lsn = rd.u64()?;
    let ordered_applied = rd.u64()?;
    let binlog_head = rd.u64()?;
    let at_ts = CommitTs(rd.u64()?);
    let checksum = rd.u64()?;
    let mut databases = Vec::new();
    for _ in 0..rd.u64()? {
        let name = rd.str()?;
        let mut tables = Vec::new();
        for _ in 0..rd.u64()? {
            let (tname, columns) = table_from_ddl(&rd.str()?)?;
            let auto_inc = rd.i64()?;
            let nrows = rd.u64()?;
            let rows = (0..nrows).map(|_| get_row(&mut rd)).collect::<DecodeResult<_>>()?;
            tables.push(TableDump { name: tname, columns, rows, auto_inc });
        }
        let mut sequences = Vec::new();
        for _ in 0..rd.u64()? {
            sequences.push((rd.str()?, rd.i64()?));
        }
        let mut triggers = Vec::new();
        for _ in 0..rd.u64()? {
            match parse_statement(&rd.str()?) {
                Ok(Statement::CreateTrigger { name, event, table, body }) => {
                    triggers.push(TriggerDef { name, event, table: table.name, body });
                }
                other => return Err(format!("checkpoint trigger DDL: {other:?}")),
            }
        }
        let mut procedures = Vec::new();
        for _ in 0..rd.u64()? {
            match parse_statement(&rd.str()?) {
                Ok(Statement::CreateProcedure { name, params, body }) => {
                    procedures.push(ProcedureDef { name: name.name, params, body });
                }
                other => return Err(format!("checkpoint procedure DDL: {other:?}")),
            }
        }
        databases.push(DatabaseDump { name, tables, sequences, triggers, procedures });
    }
    let users = if rd.u8()? == 0 {
        None
    } else {
        let mut users = Vec::new();
        for _ in 0..rd.u64()? {
            let name = rd.str()?;
            let password = rd.str()?;
            let mut grants = std::collections::BTreeMap::new();
            for _ in 0..rd.u64()? {
                let db = rd.str()?;
                let p = match rd.u8()? {
                    0 => crate::ast::Privilege::All,
                    1 => crate::ast::Privilege::Read,
                    2 => crate::ast::Privilege::Write,
                    t => return Err(format!("bad privilege tag {t}")),
                };
                grants.insert(db, p);
            }
            users.push(User { name, password, grants });
        }
        Some(users)
    };
    rd.done()?;
    Ok(Checkpoint {
        dump: Dump { at_ts, databases, users, checksum },
        applied_lsn,
        ordered_applied,
        binlog_head,
    })
}

// ---------------------------------------------------------------------
// Durable store: WAL device + checkpoint device + policy
// ---------------------------------------------------------------------

/// Durability policy. Off by default at the engine level (the field is an
/// `Option` on `EngineConfig`); these knobs only exist once it is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Take a checkpoint (snapshot + WAL truncate) every N commit records.
    /// 0 disables periodic checkpoints (the log only grows).
    pub checkpoint_every: u64,
    /// Fsync the WAL every N records. 1 = group-commit every maintenance
    /// round; larger values leave an unsynced tail that `LostTail` and
    /// `TornTail` crashes actually destroy.
    pub fsync_every: u64,
    /// Two-phase checkpoint install. Phase 1 stages the new image after
    /// the current one *unsynced* and leaves the WAL alone; phase 2 — the
    /// next maintenance round — fsyncs, compacts the device to the new
    /// image, and cuts the covered WAL prefix. The gap between the phases
    /// is exactly the window where a crash tears an in-progress
    /// checkpoint: recovery then falls back to the previous image plus a
    /// longer WAL replay. Off (the default) keeps the historical atomic
    /// install, byte-for-byte.
    pub two_phase_checkpoint: bool,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig { checkpoint_every: 64, fsync_every: 1, two_phase_checkpoint: false }
    }
}

/// What one maintenance round did (returned by `Engine::wal_maintain`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalMaintain {
    /// Records appended to the WAL this round.
    pub appended: u64,
    /// Rows snapshotted, when this round took a checkpoint (the caller
    /// charges dump CPU for them).
    pub checkpoint_rows: Option<u64>,
}

/// Observable durable-layer state, for experiments and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    pub wal_bytes: u64,
    pub wal_synced_bytes: u64,
    pub wal_records: u64,
    pub checkpoint_bytes: u64,
    pub checkpoints_taken: u64,
}

/// What recovery did, in engine-local terms. The node actor layers IO and
/// CPU time on top to produce the measured MTTR contribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    pub checkpoint_loaded: bool,
    /// Rows restored from the checkpoint snapshot.
    pub checkpoint_rows: u64,
    /// WAL commit records replayed into the engine.
    pub entries_replayed: u64,
    /// A torn tail was detected and truncated at the first bad checksum.
    pub torn_truncated: bool,
    /// An in-progress (staged, never completed) checkpoint image was
    /// damaged by the crash; recovery fell back to the previous image and
    /// replayed the longer WAL suffix it still covers. Only possible with
    /// `DurabilityConfig::two_phase_checkpoint`.
    pub checkpoint_fallback: bool,
    /// Engine CPU consumed replaying the suffix (virtual µs).
    pub replay_cpu_us: u64,
    /// Recovered replication positions (durable metadata).
    pub applied_lsn: u64,
    pub ordered_applied: u64,
}

/// The engine's durable half: both devices plus append/fsync/checkpoint
/// policy state.
#[derive(Debug, Clone)]
pub struct DurableStore {
    pub cfg: DurabilityConfig,
    wal: BlockDev,
    ckpt: BlockDev,
    io: IoCounters,
    wal_records: u64,
    records_since_fsync: u64,
    commits_since_ckpt: u64,
    checkpoints_taken: u64,
    /// Highest local binlog LSN mirrored into the WAL.
    pub logged_head: u64,
    /// Positions as of the last record written (change detection).
    last_meta: (u64, u64),
    /// Counter state as of the last `Counters` record (change detection).
    last_counters: CounterSync,
    /// A phase-1 (staged, unsynced) checkpoint image awaits completion.
    ckpt_pending: bool,
}

impl DurableStore {
    pub fn new(cfg: DurabilityConfig) -> Self {
        DurableStore {
            cfg: DurabilityConfig { fsync_every: cfg.fsync_every.max(1), ..cfg },
            wal: BlockDev::default(),
            ckpt: BlockDev::default(),
            io: IoCounters::default(),
            wal_records: 0,
            records_since_fsync: 0,
            commits_since_ckpt: 0,
            checkpoints_taken: 0,
            logged_head: 0,
            last_meta: (0, 0),
            last_counters: CounterSync::default(),
            ckpt_pending: false,
        }
    }

    fn append_record(&mut self, rec: &WalRecord) {
        let payload = rec.encode();
        let mut framed = Vec::with_capacity(payload.len() + FRAME_HEADER);
        frame(&payload, &mut framed);
        self.wal.append(&framed, &mut self.io);
        self.wal_records += 1;
        self.records_since_fsync += 1;
    }

    pub fn append_commit(&mut self, entry: &BinlogEntry, applied_lsn: u64, ordered_applied: u64) {
        self.append_record(&WalRecord::Commit {
            entry: entry.clone(),
            applied_lsn,
            ordered_applied,
        });
        self.logged_head = self.logged_head.max(entry.lsn.0);
        self.last_meta = (applied_lsn, ordered_applied);
        self.commits_since_ckpt += 1;
    }

    pub fn append_meta(&mut self, applied_lsn: u64, ordered_applied: u64) {
        self.append_record(&WalRecord::Meta { applied_lsn, ordered_applied });
        self.last_meta = (applied_lsn, ordered_applied);
    }

    /// Log non-transactional counter state (§4.2.3). Called by the engine
    /// whenever sequences/AUTO_INCREMENT counters moved since the last log.
    pub fn append_counters(&mut self, cs: &CounterSync) {
        self.append_record(&WalRecord::Counters(cs.clone()));
        self.last_counters = cs.clone();
    }

    pub fn counters_changed(&self, cs: &CounterSync) -> bool {
        self.last_counters != *cs
    }

    /// Record counter state covered by other means (a fresh checkpoint, a
    /// completed recovery) without writing a record.
    pub fn note_counters(&mut self, cs: CounterSync) {
        self.last_counters = cs;
    }

    pub fn meta_changed(&self, applied_lsn: u64, ordered_applied: u64) -> bool {
        self.last_meta != (applied_lsn, ordered_applied)
    }

    /// Fsync if the policy's record budget is spent.
    pub fn maybe_fsync(&mut self) {
        if self.records_since_fsync >= self.cfg.fsync_every {
            self.wal.fsync(&mut self.io);
            self.records_since_fsync = 0;
        }
    }

    pub fn should_checkpoint(&self) -> bool {
        self.cfg.checkpoint_every > 0 && self.commits_since_ckpt >= self.cfg.checkpoint_every
    }

    /// Write a checkpoint image and truncate the WAL. The default mode is
    /// the classic atomic-in-model install: image cleared, written, and
    /// fsynced before the log is cut, so a crash between maintenance
    /// rounds only ever sees a complete image. With
    /// [`DurabilityConfig::two_phase_checkpoint`] this is only phase 1:
    /// the new image is *staged* after the current one, unsynced, and the
    /// WAL is left alone until [`Self::complete_checkpoint`] runs next
    /// round — so a crash in between exposes an in-progress checkpoint to
    /// `LostTail`/`TornTail` damage.
    pub fn install_checkpoint(&mut self, c: &Checkpoint) {
        let payload = encode_checkpoint(c);
        let mut framed = Vec::with_capacity(payload.len() + FRAME_HEADER);
        frame(&payload, &mut framed);
        if self.cfg.two_phase_checkpoint {
            // Degenerate back-to-back installs: finish the staged one
            // first so the device never carries two pending images.
            if self.ckpt_pending {
                self.complete_checkpoint();
            }
            self.ckpt.append(&framed, &mut self.io);
            self.ckpt_pending = true;
            self.commits_since_ckpt = 0;
        } else {
            self.ckpt.clear(&mut self.io);
            self.ckpt.append(&framed, &mut self.io);
            self.ckpt.fsync(&mut self.io);
            self.wal.clear(&mut self.io);
            self.wal_records = 0;
            self.records_since_fsync = 0;
            self.commits_since_ckpt = 0;
            self.checkpoints_taken += 1;
        }
        self.logged_head = self.logged_head.max(c.binlog_head);
        self.last_meta = (c.applied_lsn, c.ordered_applied);
    }

    /// A staged (phase-1) checkpoint image awaits completion.
    pub fn checkpoint_pending(&self) -> bool {
        self.ckpt_pending
    }

    /// Phase 2 of a two-phase install: fsync the staged image, compact the
    /// device down to it (write-new-then-rename, modeled as a rewrite),
    /// and cut the WAL prefix the image covers. The caller runs this at
    /// the start of the next maintenance round, *before* appending new
    /// records, so everything in the WAL at this point is covered by the
    /// staged snapshot.
    pub fn complete_checkpoint(&mut self) {
        if !self.ckpt_pending {
            return;
        }
        self.ckpt.fsync(&mut self.io);
        let bytes = self.ckpt.read_all(&mut self.io).to_vec();
        let (frames, _, _) = scan_frames(&bytes);
        if let Some(last) = frames.last() {
            let payload = last.to_vec();
            let mut framed = Vec::with_capacity(payload.len() + FRAME_HEADER);
            frame(&payload, &mut framed);
            self.ckpt.clear(&mut self.io);
            self.ckpt.append(&framed, &mut self.io);
            self.ckpt.fsync(&mut self.io);
        }
        self.wal.clear(&mut self.io);
        self.wal_records = 0;
        self.records_since_fsync = 0;
        self.checkpoints_taken += 1;
        self.ckpt_pending = false;
    }

    /// Apply crash semantics to both devices. Under atomic installs the
    /// checkpoint device is always fully synced, so any crash kind is a
    /// no-op there; under two-phase installs a staged image sits in the
    /// unsynced region, where `LostTail` vaporizes it and `TornTail`
    /// leaves a damaged prefix for recovery to detect and skip.
    pub fn crash(&mut self, kind: CrashKind, entropy: u64) {
        self.wal.crash(kind, entropy);
        if kind != CrashKind::Clean {
            // Rotate the entropy so the WAL and checkpoint tear offsets
            // are decorrelated but still seed-deterministic.
            self.ckpt.crash(kind, entropy.rotate_left(17));
        }
    }

    /// Read both devices back for recovery: the newest decodable
    /// checkpoint image and the valid WAL record prefix. Truncates torn
    /// garbage in place and marks the surviving images synced. The final
    /// bool reports a checkpoint fallback: a newer (staged) image existed
    /// but was damaged, so recovery uses the previous one.
    pub fn load(&mut self) -> (Option<Checkpoint>, Vec<WalRecord>, bool, bool) {
        let ckpt_bytes = self.ckpt.read_all(&mut self.io).to_vec();
        let (ckpt_frames, _, ckpt_torn) = scan_frames(&ckpt_bytes);
        let mut win: Option<(usize, Checkpoint)> = None;
        let mut ckpt_fallback = ckpt_torn;
        for (i, p) in ckpt_frames.iter().enumerate().rev() {
            match decode_checkpoint(p) {
                Ok(c) => {
                    win = Some((i, c));
                    break;
                }
                // A checksum-valid but undecodable image can only be a
                // torn write that collided with the FNV: fall back.
                Err(_) => ckpt_fallback = true,
            }
        }
        // The staged image won (two-phase install interrupted by a clean
        // or harmless crash): it snapshots state as of the last append,
        // so the entire surviving WAL is covered — complete the install
        // during recovery exactly as the next round would have.
        let staged_won =
            matches!(&win, Some((i, _)) if *i + 1 == ckpt_frames.len() && ckpt_frames.len() > 1);
        // Compact the device to the winning image when recovery skipped
        // damaged or superseded frames. Only reachable under two-phase
        // installs: the atomic path leaves exactly one clean frame.
        if ckpt_torn || ckpt_frames.len() > 1 {
            let keep = win.as_ref().map(|(i, _)| ckpt_frames[*i].to_vec());
            self.ckpt.clear(&mut self.io);
            if let Some(payload) = keep {
                let mut framed = Vec::with_capacity(payload.len() + FRAME_HEADER);
                frame(&payload, &mut framed);
                self.ckpt.append(&framed, &mut self.io);
                self.ckpt.fsync(&mut self.io);
            }
        }
        self.ckpt_pending = false;
        let checkpoint = win.map(|(_, c)| c);

        let wal_bytes = self.wal.read_all(&mut self.io).to_vec();
        let (frames, mut valid_len, mut torn) = scan_frames(&wal_bytes);
        let mut records = Vec::with_capacity(frames.len());
        for (i, payload) in frames.iter().enumerate() {
            match WalRecord::decode(payload) {
                Ok(r) => records.push(r),
                Err(_) => {
                    // A frame with a valid checksum but undecodable payload
                    // can only be a torn write that collided with the FNV —
                    // treat everything from here on as garbage.
                    valid_len = frames[..i].iter().map(|f| f.len() + FRAME_HEADER).sum();
                    torn = true;
                    break;
                }
            }
        }
        self.wal.truncate(valid_len);
        self.wal.mark_synced();
        if staged_won {
            // Finish the interrupted install: every surviving WAL record
            // predates the staged snapshot, so the suffix is redundant.
            self.wal.clear(&mut self.io);
            records.clear();
            self.checkpoints_taken += 1;
        }
        self.wal_records = records.len() as u64;
        self.records_since_fsync = 0;
        (checkpoint, records, torn, ckpt_fallback)
    }

    /// Reset policy cursors after recovery rebuilt the engine.
    pub fn rearm(&mut self, logged_head: u64, applied_lsn: u64, ordered_applied: u64) {
        self.logged_head = logged_head;
        self.last_meta = (applied_lsn, ordered_applied);
        self.commits_since_ckpt = self.wal_records;
    }

    pub fn take_io(&mut self) -> IoCounters {
        std::mem::take(&mut self.io)
    }

    pub fn add_io(&mut self, io: &IoCounters) {
        self.io.add(io);
    }

    pub fn stats(&self) -> WalStats {
        WalStats {
            wal_bytes: self.wal.len() as u64,
            wal_synced_bytes: self.wal.synced_len() as u64,
            wal_records: self.wal_records,
            checkpoint_bytes: self.ckpt.len() as u64,
            checkpoints_taken: self.checkpoints_taken,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lsn: u64, rows: usize) -> BinlogEntry {
        let entries = (0..rows)
            .map(|i| WriteRecord {
                database: "db".into(),
                table: "t".into(),
                row: RowId(i as u64 + 1),
                kind: WriteKind::Insert,
                old: None,
                new: Some(vec![
                    Value::Int(i as i64),
                    Value::Text(format!("row-{i}\0with-nul")),
                    Value::Float(1.5),
                    Value::Null,
                    Value::Bool(true),
                    Value::Timestamp(-7),
                ]),
                temp: false,
            })
            .collect();
        BinlogEntry {
            lsn: Lsn(lsn),
            commit_ts: CommitTs(lsn * 10),
            default_db: Some("db".into()),
            statements: vec![format!("INSERT INTO t VALUES ({lsn})")],
            writeset: Writeset { entries, counters: None },
        }
    }

    fn store_with(n: u64, fsync_every: u64) -> DurableStore {
        let mut s = DurableStore::new(DurabilityConfig { checkpoint_every: 0, fsync_every, ..Default::default() });
        for lsn in 1..=n {
            s.append_commit(&entry(lsn, 2), 0, lsn);
            s.maybe_fsync();
        }
        s
    }

    #[test]
    fn record_round_trip() {
        for rec in [
            WalRecord::Commit { entry: entry(3, 4), applied_lsn: 7, ordered_applied: 9 },
            WalRecord::Meta { applied_lsn: 1, ordered_applied: 2 },
            WalRecord::Counters(CounterSync {
                sequences: vec![(("shop".into(), "s".into()), 42)],
                auto_increments: vec![(("shop".into(), "t".into()), 7)],
            }),
        ] {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn clean_crash_loses_nothing() {
        let mut s = store_with(10, 4); // unsynced tail exists
        s.crash(CrashKind::Clean, 0xdead_beef);
        let (ckpt, records, torn, _) = s.load();
        assert!(ckpt.is_none());
        assert_eq!(records.len(), 10);
        assert!(!torn);
    }

    #[test]
    fn lost_tail_drops_exactly_the_unsynced_records() {
        let mut s = store_with(10, 4); // fsyncs after records 4 and 8
        s.crash(CrashKind::LostTail, 0);
        let (_, records, torn, _) = s.load();
        assert_eq!(records.len(), 8);
        assert!(!torn);
    }

    #[test]
    fn torn_tail_truncates_at_first_bad_checksum() {
        // Sweep the torn offset across the whole unsynced region: recovery
        // must always keep the 8 synced records, never more than 10, and
        // never report garbage as a record.
        for entropy in 0..200u64 {
            let mut s = store_with(10, 4);
            s.crash(CrashKind::TornTail, entropy);
            let (_, records, _, _) = s.load();
            assert!(
                (8..=10).contains(&records.len()),
                "entropy {entropy}: {} records",
                records.len()
            );
            for (i, r) in records.iter().enumerate() {
                match r {
                    WalRecord::Commit { entry, .. } => {
                        assert_eq!(entry.lsn.0, i as u64 + 1);
                        assert_eq!(entry.writeset.len(), 2);
                    }
                    other => panic!("unexpected record {other:?}"),
                }
            }
            // The device was repaired: a second load sees the same prefix.
            let (_, again, torn2, _) = s.load();
            assert_eq!(again.len(), records.len());
            assert!(!torn2, "repair left garbage behind");
        }
    }

    #[test]
    fn torn_tail_with_synced_everything_is_noop() {
        let mut s = store_with(9, 1); // fsync_every=1: no unsynced tail
        s.crash(CrashKind::TornTail, 12345);
        let (_, records, torn, _) = s.load();
        assert_eq!(records.len(), 9);
        assert!(!torn);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_crash() {
        let mut s = store_with(6, 1);
        let c = Checkpoint {
            dump: Dump { at_ts: CommitTs(60), databases: Vec::new(), users: None, checksum: 7 },
            applied_lsn: 0,
            ordered_applied: 6,
            binlog_head: 6,
        };
        s.install_checkpoint(&c);
        s.append_commit(&entry(7, 1), 0, 7);
        s.maybe_fsync();
        s.crash(CrashKind::LostTail, 0);
        let (ckpt, records, _, _) = s.load();
        assert_eq!(ckpt.unwrap(), c);
        assert_eq!(records.len(), 1);
        match &records[0] {
            WalRecord::Commit { entry, .. } => assert_eq!(entry.lsn.0, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn io_counters_track_device_work() {
        let mut s = DurableStore::new(DurabilityConfig::default());
        s.append_commit(&entry(1, 1), 0, 1);
        s.maybe_fsync();
        let io = s.take_io();
        assert!(io.bytes_written > 0);
        assert_eq!(io.fsyncs, 1);
        assert!(s.take_io().is_zero());
    }

    fn ckpt_at(n: u64) -> Checkpoint {
        Checkpoint {
            dump: Dump { at_ts: CommitTs(n * 10), databases: Vec::new(), users: None, checksum: n },
            applied_lsn: 0,
            ordered_applied: n,
            binlog_head: n,
        }
    }

    /// A store mid two-phase install: checkpoint at lsn 4 completed,
    /// records 5..=8 in the WAL, checkpoint at lsn 8 staged but not yet
    /// completed — the crash-vulnerable window.
    fn staged_store() -> DurableStore {
        let mut s = DurableStore::new(DurabilityConfig {
            checkpoint_every: 0,
            fsync_every: 1,
            two_phase_checkpoint: true,
        });
        for lsn in 1..=4 {
            s.append_commit(&entry(lsn, 1), 0, lsn);
            s.maybe_fsync();
        }
        s.install_checkpoint(&ckpt_at(4));
        s.complete_checkpoint();
        assert!(!s.checkpoint_pending());
        for lsn in 5..=8 {
            s.append_commit(&entry(lsn, 1), 0, lsn);
            s.maybe_fsync();
        }
        s.install_checkpoint(&ckpt_at(8));
        assert!(s.checkpoint_pending());
        s
    }

    #[test]
    fn two_phase_completion_compacts_and_truncates() {
        let mut s = staged_store();
        s.complete_checkpoint();
        let (ckpt, records, torn, fallback) = s.load();
        assert_eq!(ckpt.unwrap(), ckpt_at(8));
        assert!(records.is_empty());
        assert!(!torn);
        assert!(!fallback);
        assert_eq!(s.stats().checkpoints_taken, 2);
    }

    #[test]
    fn torn_in_progress_checkpoint_falls_back_to_previous() {
        // Sweep the tear across the staged image: recovery must always
        // come back consistent — either the staged image survived whole
        // (clean equivalent) or the previous checkpoint plus the full
        // 5..=8 WAL suffix is used, never a half image, never lost data.
        let mut fallbacks = 0u32;
        for entropy in 0..200u64 {
            let mut s = staged_store();
            s.crash(CrashKind::TornTail, entropy);
            let (ckpt, records, _, fallback) = s.load();
            let ckpt = ckpt.expect("a checkpoint always survives");
            if ckpt == ckpt_at(8) {
                // Tear happened to spare the staged frame: the install is
                // completed during recovery, WAL suffix redundant.
                assert!(records.is_empty());
            } else {
                assert_eq!(ckpt, ckpt_at(4), "unexpected checkpoint {ckpt:?}");
                let lsns: Vec<u64> = records
                    .iter()
                    .filter_map(|r| match r {
                        WalRecord::Commit { entry, .. } => Some(entry.lsn.0),
                        _ => None,
                    })
                    .collect();
                assert_eq!(lsns, vec![5, 6, 7, 8], "longer replay must cover the gap");
                if fallback {
                    fallbacks += 1;
                }
            }
            // The device was repaired: a second load agrees and reports
            // no damage.
            let (again, _, _, fb2) = s.load();
            assert_eq!(again.unwrap().ordered_applied, ckpt.ordered_applied);
            assert!(!fb2);
        }
        assert!(fallbacks > 0, "entropy sweep never tore the staged image");
    }

    #[test]
    fn lost_tail_drops_staged_checkpoint_entirely() {
        let mut s = staged_store();
        s.crash(CrashKind::LostTail, 0);
        let (ckpt, records, torn, fallback) = s.load();
        assert_eq!(ckpt.unwrap(), ckpt_at(4));
        assert_eq!(records.len(), 4, "full suffix 5..=8 replays");
        assert!(!torn);
        // The unsynced staged frame vanished without a trace.
        assert!(!fallback);
    }

    #[test]
    fn clean_crash_keeps_staged_checkpoint() {
        let mut s = staged_store();
        s.crash(CrashKind::Clean, 0);
        let (ckpt, records, torn, fallback) = s.load();
        assert_eq!(ckpt.unwrap(), ckpt_at(8));
        assert!(records.is_empty(), "staged image covers the whole WAL");
        assert!(!torn);
        assert!(!fallback);
    }
}
