//! Database sequences (§4.2.3): standardized late (SQL-2003), and — the gap
//! the paper stresses — **non-transactional**. `NEXTVAL` advances the counter
//! immediately; a rollback does not give the number back, producing holes.
//! Sequences also sit outside the MVCC versioned store, which is why
//! writeset-based replication misses them (§4.3.2).

use std::collections::BTreeMap;

use crate::error::SqlError;

/// Fully qualified sequence key: (database, sequence name).
pub type SeqKey = (String, String);

/// All sequences in one engine, deliberately outside the transactional
/// storage (matching real engines' behaviour).
#[derive(Debug, Clone, Default)]
pub struct Sequences {
    seqs: BTreeMap<SeqKey, i64>,
}

impl Sequences {
    pub fn new() -> Self {
        Sequences::default()
    }

    pub fn create(&mut self, db: &str, name: &str, start: i64, if_not_exists: bool) -> Result<(), SqlError> {
        let key = (db.to_string(), name.to_string());
        if self.seqs.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(SqlError::AlreadyExists(format!("{db}.{name}")));
        }
        self.seqs.insert(key, start);
        Ok(())
    }

    pub fn drop(&mut self, db: &str, name: &str) -> Result<(), SqlError> {
        self.seqs
            .remove(&(db.to_string(), name.to_string()))
            .map(|_| ())
            .ok_or_else(|| SqlError::UnknownSequence(format!("{db}.{name}")))
    }

    /// Advance and return the next value. **Not undone by rollback.**
    pub fn nextval(&mut self, db: &str, name: &str) -> Result<i64, SqlError> {
        let v = self
            .seqs
            .get_mut(&(db.to_string(), name.to_string()))
            .ok_or_else(|| SqlError::UnknownSequence(format!("{db}.{name}")))?;
        let out = *v;
        *v += 1;
        Ok(out)
    }

    /// Current value without advancing (the value NEXTVAL would return).
    pub fn peek(&self, db: &str, name: &str) -> Result<i64, SqlError> {
        self.seqs
            .get(&(db.to_string(), name.to_string()))
            .copied()
            .ok_or_else(|| SqlError::UnknownSequence(format!("{db}.{name}")))
    }

    /// Force the counter (used by dumps/restores and by the `sync_counters`
    /// replication extension).
    pub fn set(&mut self, db: &str, name: &str, value: i64) {
        self.seqs.insert((db.to_string(), name.to_string()), value);
    }

    pub fn drop_database(&mut self, db: &str) {
        self.seqs.retain(|(d, _), _| d != db);
    }

    pub fn iter(&self) -> impl Iterator<Item = (&SeqKey, i64)> {
        self.seqs.iter().map(|(k, v)| (k, *v))
    }

    pub fn in_database<'a>(&'a self, db: &'a str) -> impl Iterator<Item = (&'a str, i64)> + 'a {
        self.seqs
            .iter()
            .filter(move |((d, _), _)| d == db)
            .map(|((_, n), v)| (n.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nextval_advances() {
        let mut s = Sequences::new();
        s.create("d", "seq", 100, false).unwrap();
        assert_eq!(s.nextval("d", "seq").unwrap(), 100);
        assert_eq!(s.nextval("d", "seq").unwrap(), 101);
        assert_eq!(s.peek("d", "seq").unwrap(), 102);
    }

    #[test]
    fn create_conflicts() {
        let mut s = Sequences::new();
        s.create("d", "seq", 1, false).unwrap();
        assert!(s.create("d", "seq", 1, false).is_err());
        s.create("d", "seq", 1, true).unwrap();
        // Same name in a different database is a different sequence.
        s.create("e", "seq", 50, false).unwrap();
        assert_eq!(s.nextval("e", "seq").unwrap(), 50);
    }

    #[test]
    fn drop_database_removes_only_its_sequences() {
        let mut s = Sequences::new();
        s.create("d", "a", 1, false).unwrap();
        s.create("e", "b", 1, false).unwrap();
        s.drop_database("d");
        assert!(s.peek("d", "a").is_err());
        assert!(s.peek("e", "b").is_ok());
    }
}
