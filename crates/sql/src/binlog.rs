//! The engine's commit log ("binlog"), consumed by master-slave replication
//! (log shipping, Fig. 1/3 of the paper) and by recovery.
//!
//! Each committed write transaction appends one entry carrying *both*
//! representations the paper contrasts (§4.3.2): the SQL statement texts
//! (statement-based shipping) and the extracted writeset (transaction-based
//! shipping). Consumers pick one; experiments E6/E15 compare them.

use crate::mvcc::CommitTs;
use crate::writeset::Writeset;

/// Log sequence number: position in the binlog, starting at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

#[derive(Debug, Clone, PartialEq)]
pub struct BinlogEntry {
    pub lsn: Lsn,
    pub commit_ts: CommitTs,
    /// The session's selected database when the transaction ran; a replayer
    /// must `USE` it before executing unqualified statements (real binlogs
    /// record the default database the same way).
    pub default_db: Option<String>,
    /// SQL texts of the write statements the transaction executed, in order.
    pub statements: Vec<String>,
    /// Extracted row-level writeset.
    pub writeset: Writeset,
}

/// Append-only commit log with truncation (log purging is routine
/// maintenance, §4.4.4 — and "replica stopped because its log is full" is a
/// §4.4.2 failure the middleware has to handle).
#[derive(Debug, Clone, Default)]
pub struct Binlog {
    entries: Vec<BinlogEntry>,
    /// LSN of the first retained entry minus one (truncated prefix length).
    truncated: u64,
    next_lsn: u64,
}

impl Binlog {
    pub fn new() -> Self {
        Binlog { entries: Vec::new(), truncated: 0, next_lsn: 1 }
    }

    pub fn append(
        &mut self,
        commit_ts: CommitTs,
        default_db: Option<String>,
        statements: Vec<String>,
        writeset: Writeset,
    ) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        self.entries.push(BinlogEntry { lsn, commit_ts, default_db, statements, writeset });
        lsn
    }

    /// Highest LSN written, or 0 if empty.
    pub fn head(&self) -> Lsn {
        Lsn(self.next_lsn - 1)
    }

    /// Entries strictly after `after`, in order. Returns `None` if the log
    /// was truncated past `after` (the consumer must full-resync — the
    /// paper's "hours of dump/restore", §4.4.2).
    pub fn read_after(&self, after: Lsn) -> Option<&[BinlogEntry]> {
        if after.0 < self.truncated {
            return None;
        }
        let skip = (after.0 - self.truncated) as usize;
        Some(&self.entries[skip.min(self.entries.len())..])
    }

    /// Purge entries with LSN <= `up_to`.
    pub fn truncate(&mut self, up_to: Lsn) {
        if up_to.0 <= self.truncated {
            return;
        }
        let drop_n = ((up_to.0 - self.truncated) as usize).min(self.entries.len());
        self.entries.drain(..drop_n);
        self.truncated = up_to.0;
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reposition an empty log at `head`, as if entries `1..=head` had been
    /// written and purged. Crash recovery rebases the reborn binlog at the
    /// checkpoint's head: peers further behind than the checkpoint get an
    /// honest `read_after == None` and must full-resync.
    pub fn rebase(&mut self, head: u64) {
        self.entries.clear();
        self.truncated = head;
        self.next_lsn = head + 1;
    }

    /// Re-append a preserved entry with its original LSN (crash-recovery
    /// replay). Entries must arrive in LSN order at the current head.
    pub fn push_raw(&mut self, entry: BinlogEntry) {
        debug_assert_eq!(entry.lsn.0, self.next_lsn, "raw push out of order");
        self.next_lsn = entry.lsn.0 + 1;
        self.entries.push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(log: &mut Binlog, n: u64) -> Lsn {
        log.append(CommitTs(n), None, vec![format!("stmt {n}")], Writeset::default())
    }

    #[test]
    fn append_and_read() {
        let mut log = Binlog::new();
        entry(&mut log, 1);
        entry(&mut log, 2);
        entry(&mut log, 3);
        let tail = log.read_after(Lsn(1)).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].lsn, Lsn(2));
        assert_eq!(log.read_after(Lsn(3)).unwrap().len(), 0);
        assert_eq!(log.read_after(Lsn(0)).unwrap().len(), 3);
    }

    #[test]
    fn truncation_forces_full_resync() {
        let mut log = Binlog::new();
        for n in 1..=5 {
            entry(&mut log, n);
        }
        log.truncate(Lsn(3));
        assert_eq!(log.len(), 2);
        assert!(log.read_after(Lsn(2)).is_none(), "reader behind truncation point");
        assert_eq!(log.read_after(Lsn(3)).unwrap().len(), 2);
        assert_eq!(log.read_after(Lsn(4)).unwrap().len(), 1);
    }

    #[test]
    fn idempotent_truncate() {
        let mut log = Binlog::new();
        for n in 1..=3 {
            entry(&mut log, n);
        }
        log.truncate(Lsn(2));
        log.truncate(Lsn(2));
        log.truncate(Lsn(1));
        assert_eq!(log.len(), 1);
        assert_eq!(log.head(), Lsn(3));
    }
}
