//! Inner statement dispatch: the statements that may appear inside a
//! transaction, a trigger body, or a procedure body. Transaction control and
//! DDL are engine-level concerns (DDL is non-transactional, §4.3.2) and are
//! rejected here when nested.

use crate::ast::Statement;
use crate::error::SqlError;
use crate::expr::{eval, RowScope};
use crate::result::Outcome;
use crate::value::Value;

use super::{dml, StmtCtx, MAX_NESTING};

/// Execute one DML/SELECT/CALL/SET statement in the given context.
pub fn execute_inner(ctx: &mut StmtCtx<'_>, stmt: &Statement) -> Result<Outcome, SqlError> {
    match stmt {
        Statement::Select(sel) => {
            let snap = ctx.snapshot()?;
            let mut env = ctx.eval_env(snap);
            let rs = super::select::execute_select(sel, &mut env, &RowScope::empty())?;
            let (read_log, rows_read) = (std::mem::take(&mut env.read_log), env.rows_read);
            drop(env);
            ctx.absorb(read_log, rows_read);
            if sel.for_update {
                dml::lock_for_update(ctx, sel)?;
            }
            Ok(Outcome::Rows(rs))
        }
        Statement::Insert { table, columns, source } => {
            dml::execute_insert(ctx, table, columns, source)
        }
        Statement::Update { table, assignments, filter } => {
            dml::execute_update(ctx, table, assignments, filter.as_ref())
        }
        Statement::Delete { table, filter } => dml::execute_delete(ctx, table, filter.as_ref()),
        Statement::Call { name, args } => execute_call(ctx, name, args),
        Statement::Set { name, value } => {
            let snap = ctx.snapshot()?;
            let mut env = ctx.eval_env(snap);
            let v = eval(value, &mut env, &RowScope::empty())?;
            drop(env);
            ctx.vars.insert(name.clone(), v);
            Ok(Outcome::Ack)
        }
        other => Err(SqlError::Unsupported(format!(
            "statement not allowed in this context: {other}"
        ))),
    }
}

/// CALL <proc>(<args>): §4.2.1. The body is a black box — executed entirely
/// on whatever replica receives the CALL, with all the replication
/// consequences the paper describes.
fn execute_call(
    ctx: &mut StmtCtx<'_>,
    name: &crate::ast::ObjectName,
    args: &[crate::ast::Expr],
) -> Result<Outcome, SqlError> {
    if ctx.depth >= MAX_NESTING {
        return Err(SqlError::ConstraintViolation(format!(
            "procedure nesting exceeds {MAX_NESTING}"
        )));
    }
    let db = match &name.database {
        Some(d) => d.clone(),
        None => ctx
            .current_db
            .clone()
            .ok_or_else(|| SqlError::UnknownProcedure(name.to_string()))?,
    };
    let def = ctx
        .catalog
        .database(&db)?
        .procedures
        .get(&name.name)
        .cloned()
        .ok_or_else(|| SqlError::UnknownProcedure(name.to_string()))?;
    if def.params.len() != args.len() {
        return Err(SqlError::Arity {
            name: name.to_string(),
            expected: def.params.len(),
            got: args.len(),
        });
    }

    // Evaluate arguments in the caller's scope.
    let snap = ctx.snapshot()?;
    let mut env = ctx.eval_env(snap);
    let mut bound: Vec<(String, Value)> = Vec::with_capacity(args.len());
    for (p, a) in def.params.iter().zip(args) {
        bound.push((p.clone(), eval(a, &mut env, &RowScope::empty())?));
    }
    drop(env);

    let mut vars = ctx.vars.clone();
    for (k, v) in bound {
        vars.insert(k, v);
    }
    let last = dml::run_nested(ctx, &def.body, vars)?;
    Ok(last.unwrap_or(Outcome::Ack))
}
