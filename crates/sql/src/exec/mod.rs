//! Statement execution: SELECT pipeline, DML with trigger firing, stored
//! procedures, and the shared statement context.

pub mod dml;
pub mod select;
pub mod stmt;

use std::collections::BTreeMap;

use crate::catalog::Catalog;
use crate::det::Determinism;
use crate::error::SqlError;
use crate::expr::EvalEnv;
use crate::mvcc::{Snapshot, TxManager, TxId};
use crate::sequence::Sequences;
use crate::storage::Table;
use crate::value::Value;

/// Maximum trigger/procedure nesting depth before the engine refuses
/// (guards against trigger cycles).
pub const MAX_NESTING: u32 = 8;

/// Everything a statement needs to execute inside a transaction.
pub struct StmtCtx<'a> {
    pub catalog: &'a mut Catalog,
    /// Session temporary tables (§4.1.4).
    pub temp: &'a mut BTreeMap<String, Table>,
    pub seqs: &'a mut Sequences,
    pub det: &'a mut Determinism,
    pub txm: &'a mut TxManager,
    pub tx: TxId,
    pub current_db: Option<String>,
    /// Session variables plus procedure-parameter / trigger NEW.* bindings.
    pub vars: BTreeMap<String, Value>,
    /// Trigger/procedure nesting depth.
    pub depth: u32,
    /// Accumulated row counters for the cost model.
    pub rows_read: u64,
    pub rows_written: u64,
}

impl<'a> StmtCtx<'a> {
    /// The snapshot statements in this transaction read through right now.
    pub fn snapshot(&self) -> Result<Snapshot, SqlError> {
        self.txm.statement_snapshot(self.tx)
    }

    /// Build a read-oriented evaluation environment. While the returned env
    /// is alive the whole context is borrowed; callers extract `read_log` /
    /// `rows_read` and call [`StmtCtx::absorb`] afterwards.
    pub fn eval_env(&mut self, snap: Snapshot) -> EvalEnv<'_> {
        EvalEnv {
            catalog: &*self.catalog,
            temp: &*self.temp,
            seqs: &mut *self.seqs,
            det: &mut *self.det,
            snap,
            current_db: self.current_db.as_deref(),
            vars: &self.vars,
            read_log: Vec::new(),
            rows_read: 0,
        }
    }

    /// Merge a finished env's accounting into the transaction state.
    pub fn absorb(&mut self, read_log: Vec<(String, String)>, rows_read: u64) {
        self.rows_read += rows_read;
        if let Ok(st) = self.txm.state_mut(self.tx) {
            st.read_tables.extend(read_log);
        }
    }
}
