//! INSERT / UPDATE / DELETE execution, AFTER-trigger firing, and
//! SELECT ... FOR UPDATE row locking.

use std::collections::BTreeMap;

use crate::ast::{Expr, InsertSource, ObjectName, Statement, TriggerEvent};
use crate::error::SqlError;
use crate::expr::{eval, RowScope, TableLoc};
use crate::mvcc::{RowId, WriteKind, WriteRecord};
use crate::result::Outcome;
use crate::storage::{ConflictOrError, Table};
use crate::value::Value;

use super::{StmtCtx, MAX_NESTING};

/// Column names of a table schema, cloned for row-scope binding.
fn column_names(table: &Table) -> Vec<String> {
    table.schema.columns.iter().map(|c| c.name.clone()).collect()
}

fn conflict_err(table: &str, e: ConflictOrError) -> SqlError {
    match e {
        ConflictOrError::Conflict(kind) => SqlError::WriteConflict {
            table: table.to_string(),
            detail: format!("{kind:?}"),
        },
        ConflictOrError::Error(e) => e,
    }
}

/// First-committer-wins applies under SI and serializable; plain read
/// committed just overwrites the latest committed version.
fn fcw(ctx: &StmtCtx<'_>) -> bool {
    ctx.txm
        .state(ctx.tx)
        .map(|s| s.isolation != crate::ast::IsolationLevel::ReadCommitted)
        .unwrap_or(true)
}

fn table_mut<'a>(ctx: &'a mut StmtCtx<'_>, loc: &TableLoc) -> Result<&'a mut Table, SqlError> {
    match loc {
        TableLoc::Temp(name) => ctx
            .temp
            .get_mut(name)
            .ok_or_else(|| SqlError::UnknownTable(name.clone())),
        TableLoc::Db(db, name) => ctx.catalog.database_mut(db)?.table_mut(name),
    }
}

fn record_write(
    ctx: &mut StmtCtx<'_>,
    loc: &TableLoc,
    row: RowId,
    kind: WriteKind,
    old: Option<Vec<Value>>,
    new: Option<Vec<Value>>,
) -> Result<(), SqlError> {
    let (database, table, temp) = match loc {
        TableLoc::Temp(name) => (String::new(), name.clone(), true),
        TableLoc::Db(db, name) => (db.clone(), name.clone(), false),
    };
    ctx.txm
        .state_mut(ctx.tx)?
        .writes
        .push(WriteRecord { database, table, row, kind, old, new, temp });
    Ok(())
}

// ---------------------------------------------------------------------
// INSERT
// ---------------------------------------------------------------------

pub fn execute_insert(
    ctx: &mut StmtCtx<'_>,
    table_name: &ObjectName,
    columns: &[String],
    source: &InsertSource,
) -> Result<Outcome, SqlError> {
    let snap = ctx.snapshot()?;

    // Phase A: evaluate the source rows and default expressions.
    let mut env = ctx.eval_env(snap);
    let loc = env.table_location(table_name)?;
    let table = env.table_at(&loc)?;
    let schema_cols = table.schema.columns.clone();
    let provided_rows: Vec<Vec<Value>> = match source {
        InsertSource::Values(rows) => {
            let mut out = Vec::with_capacity(rows.len());
            let scope = RowScope::empty();
            for row in rows {
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    vals.push(eval(e, &mut env, &scope)?);
                }
                out.push(vals);
            }
            out
        }
        InsertSource::Select(sel) => {
            let rs = super::select::execute_select(sel, &mut env, &RowScope::empty())?;
            rs.rows
        }
    };

    // Map provided values onto the schema, evaluating defaults.
    let col_indices: Vec<usize> = if columns.is_empty() {
        (0..schema_cols.len()).collect()
    } else {
        columns
            .iter()
            .map(|c| {
                schema_cols
                    .iter()
                    .position(|sc| &sc.name == c)
                    .ok_or_else(|| SqlError::UnknownColumn(c.clone()))
            })
            .collect::<Result<_, _>>()?
    };

    let mut complete_rows: Vec<Vec<Value>> = Vec::with_capacity(provided_rows.len());
    for provided in provided_rows {
        if provided.len() != col_indices.len() {
            return Err(SqlError::ConstraintViolation(format!(
                "INSERT provides {} values for {} columns",
                provided.len(),
                col_indices.len()
            )));
        }
        let mut row: Vec<Option<Value>> = vec![None; schema_cols.len()];
        for (v, &idx) in provided.into_iter().zip(&col_indices) {
            row[idx] = Some(v.coerce_to(schema_cols[idx].data_type)?);
        }
        let mut complete = Vec::with_capacity(schema_cols.len());
        for (i, col) in schema_cols.iter().enumerate() {
            let v = match row[i].take() {
                Some(v) => v,
                None => match &col.default {
                    Some(d) => eval(d, &mut env, &RowScope::empty())?
                        .coerce_to(col.data_type)?,
                    // Auto-increment placeholder resolved in the write phase.
                    None => Value::Null,
                },
            };
            complete.push(v);
        }
        complete_rows.push(complete);
    }
    let (read_log, rows_read) = (std::mem::take(&mut env.read_log), env.rows_read);
    drop(env);
    ctx.absorb(read_log, rows_read);

    // Phase B: apply. Auto-increment assignment happens here, against the
    // table's non-transactional counter.
    let count = complete_rows.len() as u64;
    let mut inserted: Vec<(RowId, Vec<Value>)> = Vec::with_capacity(complete_rows.len());
    {
        let table = table_mut(ctx, &loc)?;
        let mut staged: Vec<Vec<Value>> = Vec::with_capacity(complete_rows.len());
        for mut row in complete_rows {
            for (i, col) in schema_cols.iter().enumerate() {
                if row[i].is_null() {
                    if col.auto_increment {
                        table.auto_inc += 1;
                        row[i] = Value::Int(table.auto_inc);
                    } else if col.not_null {
                        return Err(SqlError::ConstraintViolation(format!(
                            "column '{}' is NOT NULL",
                            col.name
                        )));
                    }
                } else if col.auto_increment {
                    // Explicit value: pull the counter forward (MySQL-style),
                    // irreversibly.
                    if let Some(v) = row[i].as_int() {
                        table.auto_inc = table.auto_inc.max(v);
                    }
                }
            }
            staged.push(row);
        }
        for row in staged {
            let id = table.insert(row.clone(), snap)?;
            inserted.push((id, row));
        }
    }
    let mut new_images = Vec::with_capacity(inserted.len());
    for (id, row) in inserted {
        record_write(ctx, &loc, id, WriteKind::Insert, None, Some(row.clone()))?;
        new_images.push(row);
    }
    ctx.rows_written += count;

    fire_triggers(ctx, &loc, TriggerEvent::Insert, &new_images, &[], &schema_cols)?;
    Ok(Outcome::Affected(count))
}

// ---------------------------------------------------------------------
// UPDATE
// ---------------------------------------------------------------------

pub fn execute_update(
    ctx: &mut StmtCtx<'_>,
    table_name: &ObjectName,
    assignments: &[(String, Expr)],
    filter: Option<&Expr>,
) -> Result<Outcome, SqlError> {
    let snap = ctx.snapshot()?;
    let first_committer_wins = fcw(ctx);

    // Phase A: find matching rows and compute the new images.
    let mut env = ctx.eval_env(snap);
    let loc = env.table_location(table_name)?;
    let table = env.resolve_table(table_name)?;
    let schema_cols = table.schema.columns.clone();
    let names = column_names(table);
    let qualifier = table_name.name.clone();

    let matches: Vec<(RowId, Vec<Value>)> = {
        let table = env.table_at(&loc)?;
        let mut out = Vec::new();
        for (id, vals) in table.scan(snap) {
            out.push((id, vals.to_vec()));
        }
        out
    };
    env.rows_read += matches.len() as u64;

    let mut updates: Vec<(RowId, Vec<Value>, Vec<Value>)> = Vec::new(); // (id, old, new)
    for (id, old) in matches {
        let keep = match filter {
            None => true,
            Some(pred) => {
                let scope = RowScope::with(&qualifier, &names, &old);
                eval(pred, &mut env, &scope)?.as_bool().unwrap_or(false)
            }
        };
        if !keep {
            continue;
        }
        let mut new = old.clone();
        for (col, e) in assignments {
            let idx = schema_cols
                .iter()
                .position(|c| &c.name == col)
                .ok_or_else(|| SqlError::UnknownColumn(col.clone()))?;
            let scope = RowScope::with(&qualifier, &names, &old);
            let v = eval(e, &mut env, &scope)?;
            new[idx] = v.coerce_to(schema_cols[idx].data_type)?;
            if new[idx].is_null() && schema_cols[idx].not_null {
                return Err(SqlError::ConstraintViolation(format!(
                    "column '{col}' is NOT NULL"
                )));
            }
        }
        updates.push((id, old, new));
    }
    let (read_log, rows_read) = (std::mem::take(&mut env.read_log), env.rows_read);
    drop(env);
    ctx.absorb(read_log, rows_read);

    // Phase B: apply.
    let count = updates.len() as u64;
    {
        let table = table_mut(ctx, &loc)?;
        for (id, _, new) in &updates {
            table
                .update(*id, new.clone(), snap, first_committer_wins)
                .map_err(|e| conflict_err(&table_name.name, e))?;
        }
    }
    let mut news = Vec::with_capacity(updates.len());
    let mut olds = Vec::with_capacity(updates.len());
    for (id, old, new) in updates {
        record_write(ctx, &loc, id, WriteKind::Update, Some(old.clone()), Some(new.clone()))?;
        olds.push(old);
        news.push(new);
    }
    ctx.rows_written += count;

    fire_triggers(ctx, &loc, TriggerEvent::Update, &news, &olds, &schema_cols)?;
    Ok(Outcome::Affected(count))
}

// ---------------------------------------------------------------------
// DELETE
// ---------------------------------------------------------------------

pub fn execute_delete(
    ctx: &mut StmtCtx<'_>,
    table_name: &ObjectName,
    filter: Option<&Expr>,
) -> Result<Outcome, SqlError> {
    let snap = ctx.snapshot()?;
    let first_committer_wins = fcw(ctx);

    let mut env = ctx.eval_env(snap);
    let loc = env.table_location(table_name)?;
    let table = env.resolve_table(table_name)?;
    let schema_cols = table.schema.columns.clone();
    let names = column_names(table);
    let qualifier = table_name.name.clone();

    let all: Vec<(RowId, Vec<Value>)> = {
        let table = env.table_at(&loc)?;
        table.scan(snap).map(|(id, v)| (id, v.to_vec())).collect()
    };
    env.rows_read += all.len() as u64;

    let mut doomed: Vec<(RowId, Vec<Value>)> = Vec::new();
    for (id, vals) in all {
        let keep = match filter {
            None => true,
            Some(pred) => {
                let scope = RowScope::with(&qualifier, &names, &vals);
                eval(pred, &mut env, &scope)?.as_bool().unwrap_or(false)
            }
        };
        if keep {
            doomed.push((id, vals));
        }
    }
    let (read_log, rows_read) = (std::mem::take(&mut env.read_log), env.rows_read);
    drop(env);
    ctx.absorb(read_log, rows_read);

    let count = doomed.len() as u64;
    {
        let table = table_mut(ctx, &loc)?;
        for (id, _) in &doomed {
            table
                .delete(*id, snap, first_committer_wins)
                .map_err(|e| conflict_err(&table_name.name, e))?;
        }
    }
    let mut olds = Vec::with_capacity(doomed.len());
    for (id, old) in doomed {
        record_write(ctx, &loc, id, WriteKind::Delete, Some(old.clone()), None)?;
        olds.push(old);
    }
    ctx.rows_written += count;

    fire_triggers(ctx, &loc, TriggerEvent::Delete, &[], &olds, &schema_cols)?;
    Ok(Outcome::Affected(count))
}

// ---------------------------------------------------------------------
// SELECT ... FOR UPDATE
// ---------------------------------------------------------------------

/// Lock the rows a FOR UPDATE select matched by superseding them with
/// identical images: concurrent writers then conflict exactly as if the rows
/// had been updated. Only single-table, non-aggregated selects may lock.
pub fn lock_for_update(
    ctx: &mut StmtCtx<'_>,
    select: &crate::ast::Select,
) -> Result<(), SqlError> {
    use crate::ast::TableRef;
    let Some(TableRef::Table { name, .. }) = &select.from else {
        return Err(SqlError::Unsupported(
            "FOR UPDATE requires a single-table FROM".into(),
        ));
    };
    if !select.group_by.is_empty() {
        return Err(SqlError::Unsupported("FOR UPDATE with GROUP BY".into()));
    }
    let name = name.clone();
    let snap = ctx.snapshot()?;
    let first_committer_wins = fcw(ctx);

    let mut env = ctx.eval_env(snap);
    let loc = env.table_location(&name)?;
    let table = env.resolve_table(&name)?;
    let names = column_names(table);
    let qualifier = name.name.clone();
    let all: Vec<(RowId, Vec<Value>)> = {
        let table = env.table_at(&loc)?;
        table.scan(snap).map(|(id, v)| (id, v.to_vec())).collect()
    };
    let mut locked = Vec::new();
    for (id, vals) in all {
        let keep = match &select.filter {
            None => true,
            Some(pred) => {
                let scope = RowScope::with(&qualifier, &names, &vals);
                eval(pred, &mut env, &scope)?.as_bool().unwrap_or(false)
            }
        };
        if keep {
            locked.push((id, vals));
        }
    }
    let (read_log, rows_read) = (std::mem::take(&mut env.read_log), env.rows_read);
    drop(env);
    ctx.absorb(read_log, rows_read);

    {
        let table = table_mut(ctx, &loc)?;
        for (id, vals) in &locked {
            table
                .update(*id, vals.clone(), snap, first_committer_wins)
                .map_err(|e| conflict_err(&name.name, e))?;
        }
    }
    for (id, vals) in locked {
        record_write(ctx, &loc, id, WriteKind::Update, Some(vals.clone()), Some(vals))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------

/// Fire AFTER triggers for `event`. `news`/`olds` are per-affected-row
/// images; bodies see `NEW.<col>` and `OLD.<col>` bindings. Trigger bodies
/// run in the same transaction and may write any database (§4.1.1).
fn fire_triggers(
    ctx: &mut StmtCtx<'_>,
    loc: &TableLoc,
    event: TriggerEvent,
    news: &[Vec<Value>],
    olds: &[Vec<Value>],
    schema_cols: &[crate::ast::ColumnDef],
) -> Result<(), SqlError> {
    // Temp tables never have triggers.
    let TableLoc::Db(db, table) = loc else { return Ok(()) };
    let defs = ctx.catalog.database(db)?.triggers_for(table, event);
    if defs.is_empty() {
        return Ok(());
    }
    if ctx.depth >= MAX_NESTING {
        return Err(SqlError::ConstraintViolation(format!(
            "trigger nesting exceeds {MAX_NESTING}"
        )));
    }
    let row_count = news.len().max(olds.len());
    for i in 0..row_count {
        let mut vars = ctx.vars.clone();
        if let Some(new) = news.get(i) {
            for (col, v) in schema_cols.iter().zip(new) {
                vars.insert(format!("new.{}", col.name), v.clone());
            }
        }
        if let Some(old) = olds.get(i) {
            for (col, v) in schema_cols.iter().zip(old) {
                vars.insert(format!("old.{}", col.name), v.clone());
            }
        }
        for def in &defs {
            run_nested(ctx, &def.body, vars.clone())?;
        }
    }
    Ok(())
}

/// Execute nested statements (trigger or procedure body) with substituted
/// variable bindings and an incremented depth.
pub(super) fn run_nested(
    ctx: &mut StmtCtx<'_>,
    body: &[Statement],
    vars: BTreeMap<String, Value>,
) -> Result<Option<Outcome>, SqlError> {
    let saved_vars = std::mem::replace(&mut ctx.vars, vars);
    ctx.depth += 1;
    let mut last = None;
    let mut result = Ok(());
    for st in body {
        match super::stmt::execute_inner(ctx, st) {
            Ok(o) => last = Some(o),
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    ctx.depth -= 1;
    ctx.vars = saved_vars;
    result.map(|()| last)
}
