//! SELECT execution: FROM materialization (nested-loop joins), filtering,
//! grouping/aggregation, ordering, and projection.

use crate::ast::{Expr, Select, SelectItem, TableRef};
use crate::error::SqlError;
use crate::expr::{eval, is_aggregate, EvalEnv, RowScope};
use crate::result::ResultSet;
use crate::value::Value;

/// One table (or alias) in the materialized relation.
struct RelPart {
    qualifier: String,
    columns: Vec<String>,
    offset: usize,
    width: usize,
}

struct Relation {
    parts: Vec<RelPart>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    fn scope<'a>(&'a self, row: &'a [Value], outer: &RowScope<'a>) -> RowScope<'a> {
        let mut scope = RowScope::empty();
        for p in &self.parts {
            scope.push(&p.qualifier, &p.columns, &row[p.offset..p.offset + p.width]);
        }
        scope.extend_from(outer);
        scope
    }
}

/// Execute a SELECT and return its result set. `outer` carries bindings for
/// correlated subqueries.
pub fn execute_select(
    select: &Select,
    env: &mut EvalEnv<'_>,
    outer: &RowScope<'_>,
) -> Result<ResultSet, SqlError> {
    let relation = materialize_from(select.from.as_ref(), env, outer)?;

    // Filter.
    let mut kept: Vec<usize> = Vec::new();
    for (i, row) in relation.rows.iter().enumerate() {
        let keep = match &select.filter {
            None => true,
            Some(pred) => {
                let scope = relation.scope(row, outer);
                eval(pred, env, &scope)?.as_bool().unwrap_or(false)
            }
        };
        if keep {
            kept.push(i);
        }
    }

    let aggregated = !select.group_by.is_empty() || has_aggregates(select);
    let mut out = if aggregated {
        execute_aggregate(select, &relation, &kept, env, outer)?
    } else {
        execute_plain(select, &relation, &kept, env, outer)?
    };

    // LIMIT/OFFSET apply after ORDER BY (both executors sort internally).
    let offset = select.offset.unwrap_or(0) as usize;
    if offset > 0 {
        out.rows.drain(..offset.min(out.rows.len()));
    }
    if let Some(limit) = select.limit {
        out.rows.truncate(limit as usize);
    }
    Ok(out)
}

fn materialize_from(
    from: Option<&TableRef>,
    env: &mut EvalEnv<'_>,
    outer: &RowScope<'_>,
) -> Result<Relation, SqlError> {
    match from {
        None => Ok(Relation {
            parts: Vec::new(),
            rows: vec![Vec::new()], // one empty row: SELECT 1 returns one row
        }),
        Some(TableRef::Table { name, alias }) => {
            let qualifier = alias.clone().unwrap_or_else(|| name.name.clone());
            let snap = env.snap;
            let table = env.resolve_table(name)?;
            let columns: Vec<String> =
                table.schema.columns.iter().map(|c| c.name.clone()).collect();
            let rows: Vec<Vec<Value>> =
                table.scan(snap).map(|(_, vals)| vals.to_vec()).collect();
            env.rows_read += rows.len() as u64;
            Ok(Relation {
                parts: vec![RelPart { qualifier, columns: columns.clone(), offset: 0, width: columns.len() }],
                rows,
            })
        }
        Some(TableRef::Join { left, right, on }) => {
            let l = materialize_from(Some(left), env, outer)?;
            let r = materialize_from(Some(right), env, outer)?;
            let lwidth: usize = l.parts.iter().map(|p| p.width).sum();
            let mut parts = l.parts;
            for p in r.parts {
                parts.push(RelPart {
                    qualifier: p.qualifier,
                    columns: p.columns,
                    offset: p.offset + lwidth,
                    width: p.width,
                });
            }
            let joined = Relation { parts, rows: Vec::new() };
            let mut rows = Vec::new();
            for lr in &l.rows {
                for rr in &r.rows {
                    let mut combined = Vec::with_capacity(lr.len() + rr.len());
                    combined.extend_from_slice(lr);
                    combined.extend_from_slice(rr);
                    let scope = joined.scope(&combined, outer);
                    if eval(on, env, &scope)?.as_bool().unwrap_or(false) {
                        rows.push(combined);
                    }
                }
            }
            Ok(Relation { parts: joined.parts, rows })
        }
    }
}

fn has_aggregates(select: &Select) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        if let Expr::Function { name, .. } = e {
            if is_aggregate(name) {
                found = true;
            }
        }
    };
    for item in &select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            expr.walk(&mut check);
        }
    }
    if let Some(h) = &select.having {
        h.walk(&mut check);
    }
    found
}

/// Expand projections into (header name, expression or wildcard columns).
fn projection_exprs(
    select: &Select,
    relation: &Relation,
) -> (Vec<String>, Vec<Expr>) {
    let mut names = Vec::new();
    let mut exprs = Vec::new();
    for item in &select.projections {
        match item {
            SelectItem::Wildcard => {
                for p in &relation.parts {
                    for c in &p.columns {
                        names.push(c.clone());
                        exprs.push(Expr::Column(crate::ast::ColumnRef {
                            table: Some(p.qualifier.clone()),
                            name: c.clone(),
                        }));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                exprs.push(expr.clone());
            }
        }
    }
    (names, exprs)
}

fn execute_plain(
    select: &Select,
    relation: &Relation,
    kept: &[usize],
    env: &mut EvalEnv<'_>,
    outer: &RowScope<'_>,
) -> Result<ResultSet, SqlError> {
    let (names, exprs) = projection_exprs(select, relation);
    let mut rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(kept.len()); // (sort keys, output)
    for &i in kept {
        let row = &relation.rows[i];
        let scope = relation.scope(row, outer);
        let mut out_row = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out_row.push(eval(e, env, &scope)?);
        }
        let mut keys = Vec::with_capacity(select.order_by.len());
        for k in &select.order_by {
            let v = match eval(&k.expr, env, &scope) {
                Ok(v) => v,
                Err(SqlError::UnknownColumn(_)) => {
                    // ORDER BY may name a projection alias.
                    alias_value(&k.expr, &names, &out_row)?
                }
                Err(e) => return Err(e),
            };
            keys.push(v);
        }
        rows.push((keys, out_row));
    }
    sort_rows(&mut rows, select);
    Ok(ResultSet { columns: names, rows: rows.into_iter().map(|(_, r)| r).collect() })
}

fn alias_value(expr: &Expr, names: &[String], out_row: &[Value]) -> Result<Value, SqlError> {
    if let Expr::Column(c) = expr {
        if c.table.is_none() {
            if let Some(idx) = names.iter().position(|n| n == &c.name) {
                return Ok(out_row[idx].clone());
            }
        }
    }
    Err(SqlError::UnknownColumn(expr.to_string()))
}

fn sort_rows(rows: &mut [(Vec<Value>, Vec<Value>)], select: &Select) {
    if select.order_by.is_empty() {
        return;
    }
    let dirs: Vec<bool> = select.order_by.iter().map(|k| k.asc).collect();
    rows.sort_by(|a, b| {
        for (i, asc) in dirs.iter().enumerate() {
            let ord = a.0[i].total_cmp(&b.0[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn execute_aggregate(
    select: &Select,
    relation: &Relation,
    kept: &[usize],
    env: &mut EvalEnv<'_>,
    outer: &RowScope<'_>,
) -> Result<ResultSet, SqlError> {
    // Group rows by evaluated GROUP BY keys (stable: first-seen order, then
    // sorted by ORDER BY at the end).
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    for &i in kept {
        let row = &relation.rows[i];
        let scope = relation.scope(row, outer);
        let mut key = Vec::with_capacity(select.group_by.len());
        for g in &select.group_by {
            key.push(eval(g, env, &scope)?);
        }
        match groups.iter_mut().find(|(k, _)| {
            k.len() == key.len()
                && k.iter()
                    .zip(&key)
                    .all(|(a, b)| a.total_cmp(b) == std::cmp::Ordering::Equal)
        }) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    // A query with aggregates but no GROUP BY forms a single group, even
    // when empty (COUNT(*) over an empty table returns 0).
    if groups.is_empty() && select.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let (names, exprs) = projection_exprs(select, relation);
    let mut rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        // Substitute each aggregate node with its computed literal, then
        // evaluate the remaining expression against a representative row.
        let rep = members.first().map(|&i| relation.rows[i].clone());
        let compute = |e: &Expr, env: &mut EvalEnv<'_>| -> Result<Value, SqlError> {
            let mut substituted = e.clone();
            substitute_aggregates(&mut substituted, relation, members, env, outer)?;
            match &rep {
                Some(row) => {
                    let scope = relation.scope(row, outer);
                    eval(&substituted, env, &scope)
                }
                None => eval(&substituted, env, &RowScope::empty()),
            }
        };

        if let Some(h) = &select.having {
            if !compute(h, env)?.as_bool().unwrap_or(false) {
                continue;
            }
        }
        let mut out_row = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out_row.push(compute(e, env)?);
        }
        let mut keys = Vec::with_capacity(select.order_by.len());
        for k in &select.order_by {
            let v = match compute(&k.expr, env) {
                Ok(v) => v,
                Err(SqlError::UnknownColumn(_)) => alias_value(&k.expr, &names, &out_row)?,
                Err(e) => return Err(e),
            };
            keys.push(v);
        }
        rows.push((keys, out_row));
    }
    sort_rows(&mut rows, select);
    Ok(ResultSet { columns: names, rows: rows.into_iter().map(|(_, r)| r).collect() })
}

/// Replace aggregate function nodes in `expr` with literal results computed
/// over the group's member rows.
fn substitute_aggregates(
    expr: &mut Expr,
    relation: &Relation,
    members: &[usize],
    env: &mut EvalEnv<'_>,
    outer: &RowScope<'_>,
) -> Result<(), SqlError> {
    // Manual recursion (walk_mut cannot thread a Result).
    match expr {
        Expr::Function { name, args } if is_aggregate(name) => {
            let v = compute_aggregate(name, args, relation, members, env, outer)?;
            *expr = Expr::Literal(v);
            Ok(())
        }
        Expr::Unary { expr: e, .. } | Expr::IsNull { expr: e, .. } => {
            substitute_aggregates(e, relation, members, env, outer)
        }
        Expr::Binary { left, right, .. } => {
            substitute_aggregates(left, relation, members, env, outer)?;
            substitute_aggregates(right, relation, members, env, outer)
        }
        Expr::Like { expr: e, pattern, .. } => {
            substitute_aggregates(e, relation, members, env, outer)?;
            substitute_aggregates(pattern, relation, members, env, outer)
        }
        Expr::Between { expr: e, low, high, .. } => {
            substitute_aggregates(e, relation, members, env, outer)?;
            substitute_aggregates(low, relation, members, env, outer)?;
            substitute_aggregates(high, relation, members, env, outer)
        }
        Expr::InList { expr: e, list, .. } => {
            substitute_aggregates(e, relation, members, env, outer)?;
            for item in list {
                substitute_aggregates(item, relation, members, env, outer)?;
            }
            Ok(())
        }
        Expr::Function { args, .. } => {
            for a in args {
                substitute_aggregates(a, relation, members, env, outer)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn compute_aggregate(
    name: &str,
    args: &[Expr],
    relation: &Relation,
    members: &[usize],
    env: &mut EvalEnv<'_>,
    outer: &RowScope<'_>,
) -> Result<Value, SqlError> {
    // COUNT(*) is parsed as count with zero args.
    if name == "count" && args.is_empty() {
        return Ok(Value::Int(members.len() as i64));
    }
    let arg = args.first().ok_or_else(|| SqlError::Arity {
        name: name.to_string(),
        expected: 1,
        got: 0,
    })?;
    let mut values = Vec::with_capacity(members.len());
    for &i in members {
        let row = &relation.rows[i];
        let scope = relation.scope(row, outer);
        let v = eval(arg, env, &scope)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    match name {
        "count" => Ok(Value::Int(values.len() as i64)),
        "sum" | "avg" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            let total: f64 = values.iter().filter_map(|v| v.as_f64()).sum();
            if name == "avg" {
                Ok(Value::Float(total / values.len() as f64))
            } else if all_int {
                Ok(Value::Int(total as i64))
            } else {
                Ok(Value::Float(total))
            }
        }
        "min" | "max" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => name == "min",
                            Some(std::cmp::Ordering::Greater) => name == "max",
                            _ => false,
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        other => Err(SqlError::UnknownFunction(other.to_string())),
    }
}
