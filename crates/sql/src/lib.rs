//! # replimid-sql
//!
//! A from-scratch, in-memory SQL engine built as the *substrate* for the
//! replication-middleware reproduction of Cecchet, Candea & Ailamaki,
//! “Middleware-based database replication: the gaps between theory and
//! practice” (SIGMOD 2008).
//!
//! It deliberately implements the awkward corners the paper blames for the
//! theory/practice gap:
//!
//! * multiple database instances per engine, cross-database queries and
//!   triggers (§4.1.1);
//! * three isolation levels with engine-specific error handling — abort-on-
//!   error (PostgreSQL) vs. continue (MySQL) (§4.1.2);
//! * connection-local temporary tables (§4.1.4);
//! * users/grants that live *outside* the data and are lost by default
//!   dumps (§4.1.5);
//! * opaque stored procedures and triggers (§4.2.1);
//! * non-transactional sequences and AUTO_INCREMENT counters that writeset
//!   replication silently misses (§4.2.3, §4.3.2);
//! * `NOW()`/`RAND()`/under-ordered-`LIMIT` non-determinism plus the query
//!   rewriting that statement replication needs (§4.3.2);
//! * a binlog carrying both statement text and extracted writesets, dump/
//!   restore with optional principals, and state checksums for divergence
//!   detection.
//!
//! ## Quick start
//!
//! ```
//! use replimid_sql::{Engine, Value};
//!
//! let (mut engine, conn) = Engine::with_database("shop");
//! engine.execute(conn, "CREATE TABLE items (id INT PRIMARY KEY, name TEXT)").unwrap();
//! engine.execute(conn, "INSERT INTO items VALUES (1, 'book')").unwrap();
//! let result = engine.execute(conn, "SELECT name FROM items WHERE id = 1").unwrap();
//! let rows = result.outcome.rows().unwrap();
//! assert_eq!(rows.rows[0][0], Value::Text("book".into()));
//! ```

pub mod ast;
pub mod auth;
pub mod binlog;
pub mod catalog;
pub mod checksum;
pub mod det;
pub mod dump;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod keycode;
pub mod lexer;
pub mod mvcc;
pub mod nondeterminism;
pub mod parser;
pub mod plan;
mod render;
pub mod result;
pub mod sequence;
pub mod storage;
pub mod value;
pub mod wal;
pub mod writeset;

pub use ast::{IsolationLevel, Privilege, Statement};
pub use auth::{ADMIN_PASSWORD, ADMIN_USER};
pub use binlog::{BinlogEntry, Lsn};
pub use dump::{Dump, DumpOptions};
pub use engine::{ConnId, Engine, EngineConfig, ErrorMode, FeatureSet};
pub use error::SqlError;
pub use mvcc::CommitTs;
pub use nondeterminism::{analyze, rewrite_scalar_rand, rewrite_time_macros, TaintReport};
pub use parser::{parse_statement, parse_statements};
pub use plan::{bind, normalize, CachedPlan, NormalForm, PlanCache};
pub use result::{Cost, ExecResult, Outcome, ResultSet};
pub use value::{DataType, Value};
pub use wal::{
    Checkpoint, CrashKind, DurabilityConfig, IoCounters, RecoveryReport, WalStats,
};
pub use writeset::{Writeset, WsKey};
