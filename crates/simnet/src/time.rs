//! Virtual time. The whole reproduction runs on a simulated clock so that
//! every throughput, latency, failover and MTTR number is deterministic and
//! replayable from a seed — itself one of the paper's §5.1 complaints about
//! replication evaluation ("we know of no way yet to replay that exact same
//! workload").

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn micros(self) -> u64 {
        self.0
    }

    pub fn millis(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    pub fn secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    pub fn saturating_sub(self, other: SimTime) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.secs())
    }
}

/// Duration helpers (all in microseconds).
pub mod dur {
    pub const fn micros(n: u64) -> u64 {
        n
    }
    pub const fn millis(n: u64) -> u64 {
        n * 1_000
    }
    pub const fn secs(n: u64) -> u64 {
        n * 1_000_000
    }
    pub const fn minutes(n: u64) -> u64 {
        n * 60_000_000
    }
    pub const fn hours(n: u64) -> u64 {
        n * 3_600_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(5);
        assert_eq!((t + dur::millis(3)).micros(), 8_000);
        assert_eq!(SimTime(10_000) - SimTime(4_000), 6_000);
        assert_eq!(SimTime(1_000).saturating_sub(SimTime(5_000)), 0);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).millis(), 2_000.0);
        assert_eq!(dur::minutes(2), 120_000_000);
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}
