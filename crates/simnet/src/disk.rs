//! Virtual block-device timing: converts IO *work* (bytes, fsyncs) into
//! virtual *time*.
//!
//! The durable-storage layer under the SQL engine is hermetic and clockless:
//! it counts bytes written/read and fsyncs issued. Node actors feed those
//! counters through a [`DiskModel`] and charge the result to their
//! single-server queue (`Ctx::consume`), so WAL appends, checkpoint writes,
//! and recovery scans all cost simulated wall-clock — which is what makes
//! the MTTR numbers in the recovery experiments honest rather than modeled.

/// Linear disk timing model. Defaults approximate a mid-range datacenter
/// SSD: ~128 MB/s sequential writes, ~256 MB/s reads, 400 µs per fsync
/// (flush barrier + FTL commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskModel {
    /// Microseconds to write 1 KiB sequentially.
    pub write_us_per_kib: u64,
    /// Microseconds to read 1 KiB sequentially.
    pub read_us_per_kib: u64,
    /// Microseconds per fsync barrier.
    pub fsync_us: u64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel { write_us_per_kib: 8, read_us_per_kib: 4, fsync_us: 400 }
    }
}

impl DiskModel {
    /// A spinning-rust profile (~32 MB/s writes, 5 ms fsync) for experiments
    /// that want the checkpoint-interval trade-off amplified.
    pub fn hdd() -> Self {
        DiskModel { write_us_per_kib: 32, read_us_per_kib: 16, fsync_us: 5_000 }
    }

    /// Virtual microseconds for a batch of IO work. Partial KiBs round up
    /// per batch (a short WAL append still touches a whole block).
    pub fn io_us(&self, bytes_written: u64, bytes_read: u64, fsyncs: u64) -> u64 {
        let kib_up = |b: u64| b.div_ceil(1024);
        let mut us = 0u64;
        if bytes_written > 0 {
            us += kib_up(bytes_written) * self.write_us_per_kib;
        }
        if bytes_read > 0 {
            us += kib_up(bytes_read) * self.read_us_per_kib;
        }
        us + fsyncs * self.fsync_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_is_free() {
        assert_eq!(DiskModel::default().io_us(0, 0, 0), 0);
    }

    #[test]
    fn batches_round_up_per_block() {
        let d = DiskModel::default();
        assert_eq!(d.io_us(1, 0, 0), d.write_us_per_kib);
        assert_eq!(d.io_us(1024, 0, 0), d.write_us_per_kib);
        assert_eq!(d.io_us(1025, 0, 0), 2 * d.write_us_per_kib);
        assert_eq!(d.io_us(0, 2048, 1), 2 * d.read_us_per_kib + d.fsync_us);
    }

    #[test]
    fn hdd_is_slower_everywhere() {
        let (ssd, hdd) = (DiskModel::default(), DiskModel::hdd());
        assert!(hdd.io_us(4096, 4096, 2) > ssd.io_us(4096, 4096, 2));
    }
}
