//! Network model: per-link latency/jitter, message loss, duplication,
//! partitions, and transient gray-failure episodes.
//!
//! Partitions are first-class because the paper (§4.3.4.3) complains that
//! "split brain" is treated theoretically while real clusters lose whole
//! racks at once. A partition here blocks messages at *send* time in both
//! directions between groups; messages already in flight still arrive
//! (packets on the wire).
//!
//! Gray failures (§4.1.3, §5.1): a [`LinkFault`] overlays extra loss,
//! duplication, and jitter spikes on a link *for a while* without severing
//! it — the flaky-switch / failing-NIC case that clean crash+partition
//! models miss. Episodes are installed and cleared at runtime (via
//! `ControlOp::SetLinkFault` / `ClearLinkFault` in the kernel).

use std::collections::{HashMap, HashSet};

use replimid_det::DetRng;

/// Identifies a simulated node (actor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One directed link's behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Base one-way latency in microseconds.
    pub latency_us: u64,
    /// Uniform jitter added on top: [0, jitter_us].
    pub jitter_us: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
}

impl LinkSpec {
    /// A LAN-ish link: 100µs ± 50µs.
    pub fn lan() -> Self {
        LinkSpec { latency_us: 100, jitter_us: 50, drop_prob: 0.0 }
    }

    /// A WAN-ish link: 40ms ± 10ms (the paper's intercontinental reality,
    /// §4.3.4.1: "latency is unlikely to evolve dramatically on worldwide
    /// distances due to physical limitations").
    pub fn wan() -> Self {
        LinkSpec { latency_us: 40_000, jitter_us: 10_000, drop_prob: 0.0 }
    }

    /// Zero-latency loopback.
    pub fn local() -> Self {
        LinkSpec { latency_us: 0, jitter_us: 0, drop_prob: 0.0 }
    }
}

/// A transient degradation episode overlaid on a link's base [`LinkSpec`]:
/// the link stays up but loses, duplicates, and delays traffic. All fields
/// add to (never replace) the base link behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFault {
    /// Extra probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered *twice* (retransmit
    /// storm / routing flap).
    pub dup_prob: f64,
    /// Extra uniform jitter added on top of the base link's: [0, this].
    pub jitter_us: u64,
}

impl LinkFault {
    /// A plausibly flaky LAN segment: 10% loss, 5% duplication, multi-ms
    /// jitter spikes.
    pub fn flaky() -> Self {
        LinkFault { drop_prob: 0.10, dup_prob: 0.05, jitter_us: 5_000 }
    }
}

/// The fate of a message decided by [`NetworkModel::transit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered once after this many microseconds.
    Once(u64),
    /// Delivered twice (duplication fault): primary and duplicate delays.
    Twice(u64, u64),
}

impl Delivery {
    /// The primary copy's delay.
    pub fn delay(&self) -> u64 {
        match *self {
            Delivery::Once(d) | Delivery::Twice(d, _) => d,
        }
    }
}

/// The cluster's network.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    default_link: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
    /// Unordered blocked pairs (partitioned).
    blocked: HashSet<(NodeId, NodeId)>,
    /// Active gray-failure episodes, per directed link.
    faults: HashMap<(NodeId, NodeId), LinkFault>,
}

impl NetworkModel {
    pub fn new(default_link: LinkSpec) -> Self {
        NetworkModel {
            default_link,
            overrides: HashMap::new(),
            blocked: HashSet::new(),
            faults: HashMap::new(),
        }
    }

    pub fn lan() -> Self {
        NetworkModel::new(LinkSpec::lan())
    }

    /// Override one directed link (applied symmetrically by
    /// [`NetworkModel::set_link_symmetric`]).
    pub fn set_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.overrides.insert((from, to), spec);
    }

    pub fn set_link_symmetric(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec);
    }

    pub fn link(&self, from: NodeId, to: NodeId) -> LinkSpec {
        if from == to {
            return LinkSpec::local();
        }
        *self.overrides.get(&(from, to)).unwrap_or(&self.default_link)
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Partition the cluster into groups: nodes in different groups cannot
    /// exchange messages. Nodes not listed keep full connectivity.
    pub fn partition(&mut self, groups: &[&[NodeId]]) {
        for (i, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(i + 1) {
                for &a in *ga {
                    for &b in *gb {
                        self.blocked.insert(Self::key(a, b));
                    }
                }
            }
        }
    }

    /// Sever a single pair.
    pub fn block_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert(Self::key(a, b));
    }

    pub fn heal(&mut self) {
        self.blocked.clear();
    }

    pub fn is_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&Self::key(a, b))
    }

    /// Start a gray-failure episode on one directed link.
    pub fn set_fault(&mut self, from: NodeId, to: NodeId, fault: LinkFault) {
        self.faults.insert((from, to), fault);
    }

    /// Start a gray-failure episode on both directions of a pair.
    pub fn set_fault_symmetric(&mut self, a: NodeId, b: NodeId, fault: LinkFault) {
        self.set_fault(a, b, fault);
        self.set_fault(b, a, fault);
    }

    /// End the episode on one directed link.
    pub fn clear_fault(&mut self, from: NodeId, to: NodeId) {
        self.faults.remove(&(from, to));
    }

    /// End the episode on both directions of a pair.
    pub fn clear_fault_symmetric(&mut self, a: NodeId, b: NodeId) {
        self.clear_fault(a, b);
        self.clear_fault(b, a);
    }

    pub fn fault(&self, from: NodeId, to: NodeId) -> Option<LinkFault> {
        self.faults.get(&(from, to)).copied()
    }

    /// Decide the fate of a message: `None` = dropped, `Some(Delivery)` =
    /// delivered once or (duplication fault) twice.
    ///
    /// RNG discipline: every draw is gated behind a non-zero knob, so a
    /// fault-free link consumes exactly the draws it always did — installing
    /// the gray-failure machinery does not shift any pre-existing seeded
    /// stream.
    pub fn transit(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> Option<Delivery> {
        if self.is_blocked(from, to) {
            return None;
        }
        let spec = self.link(from, to);
        if spec.drop_prob > 0.0 && rng.gen::<f64>() < spec.drop_prob {
            return None;
        }
        let fault = if from == to { None } else { self.fault(from, to) };
        if let Some(f) = fault {
            if f.drop_prob > 0.0 && rng.gen::<f64>() < f.drop_prob {
                return None;
            }
        }
        let jitter = if spec.jitter_us > 0 { rng.gen_range(0..=spec.jitter_us) } else { 0 };
        let spike = match fault {
            Some(f) if f.jitter_us > 0 => rng.gen_range(0..=f.jitter_us),
            _ => 0,
        };
        let delay = spec.latency_us + jitter + spike;
        if let Some(f) = fault {
            if f.dup_prob > 0.0 && rng.gen::<f64>() < f.dup_prob {
                // The duplicate trails the original by its own jitter draw
                // (at least 1µs so the copies are distinguishable in time).
                let span = spec.jitter_us + f.jitter_us;
                let trail = if span > 0 { rng.gen_range(1..=span) } else { 1 };
                return Some(Delivery::Twice(delay, delay + trail));
            }
        }
        Some(Delivery::Once(delay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_block_both_directions() {
        let mut net = NetworkModel::lan();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        net.partition(&[&[a], &[b, c]]);
        assert!(net.is_blocked(a, b));
        assert!(net.is_blocked(b, a));
        assert!(net.is_blocked(a, c));
        assert!(!net.is_blocked(b, c));
        net.heal();
        assert!(!net.is_blocked(a, b));
    }

    #[test]
    fn transit_respects_blocking_and_latency() {
        let mut net = NetworkModel::lan();
        let mut rng = DetRng::seed_from_u64(1);
        let (a, b) = (NodeId(0), NodeId(1));
        let d = net.transit(a, b, &mut rng).unwrap().delay();
        assert!((100..=150).contains(&d), "delay {d}");
        net.block_pair(a, b);
        assert!(net.transit(a, b, &mut rng).is_none());
        // Loopback is free even when partitioned from everyone.
        assert_eq!(net.transit(a, a, &mut rng), Some(Delivery::Once(0)));
    }

    #[test]
    fn lossy_link_drops_some() {
        let mut net = NetworkModel::new(LinkSpec { latency_us: 10, jitter_us: 0, drop_prob: 0.5 });
        let mut rng = DetRng::seed_from_u64(7);
        let (a, b) = (NodeId(0), NodeId(1));
        let delivered = (0..200).filter(|_| net.transit(a, b, &mut rng).is_some()).count();
        assert!((60..140).contains(&delivered), "delivered {delivered}");
        net.set_link(a, b, LinkSpec::local());
        assert_eq!(net.transit(a, b, &mut rng), Some(Delivery::Once(0)));
    }

    #[test]
    fn fault_free_links_draw_identically_with_and_without_machinery() {
        // Installing a fault on one link must not perturb the RNG stream
        // seen by other links (draw-count preservation).
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        let plain = NetworkModel::lan();
        let mut faulted = NetworkModel::lan();
        faulted.set_fault_symmetric(a, c, LinkFault::flaky());
        let mut r1 = DetRng::seed_from_u64(3);
        let mut r2 = DetRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(plain.transit(a, b, &mut r1), faulted.transit(a, b, &mut r2));
        }
    }

    #[test]
    fn link_fault_drops_duplicates_and_spikes() {
        let mut net = NetworkModel::new(LinkSpec { latency_us: 10, jitter_us: 0, drop_prob: 0.0 });
        let (a, b) = (NodeId(0), NodeId(1));
        net.set_fault(a, b, LinkFault { drop_prob: 0.3, dup_prob: 0.3, jitter_us: 1_000 });
        let mut rng = DetRng::seed_from_u64(9);
        let mut dropped = 0;
        let mut dups = 0;
        let mut spiked = 0;
        for _ in 0..400 {
            match net.transit(a, b, &mut rng) {
                None => dropped += 1,
                Some(Delivery::Once(d)) => {
                    if d > 10 {
                        spiked += 1;
                    }
                }
                Some(Delivery::Twice(d, d2)) => {
                    assert!(d2 > d, "duplicate trails the original");
                    dups += 1;
                }
            }
        }
        assert!((60..180).contains(&dropped), "dropped {dropped}");
        assert!((30..150).contains(&dups), "dups {dups}");
        assert!(spiked > 100, "spiked {spiked}");
        // Clearing the episode restores clean behaviour.
        net.clear_fault(a, b);
        assert_eq!(net.transit(a, b, &mut rng), Some(Delivery::Once(10)));
        // The reverse direction never had a fault.
        assert_eq!(net.fault(b, a), None);
    }
}
