//! Network model: per-link latency/jitter, message loss, and partitions.
//!
//! Partitions are first-class because the paper (§4.3.4.3) complains that
//! "split brain" is treated theoretically while real clusters lose whole
//! racks at once. A partition here blocks messages at *send* time in both
//! directions between groups; messages already in flight still arrive
//! (packets on the wire).

use std::collections::{HashMap, HashSet};

use replimid_det::DetRng;

/// Identifies a simulated node (actor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One directed link's behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Base one-way latency in microseconds.
    pub latency_us: u64,
    /// Uniform jitter added on top: [0, jitter_us].
    pub jitter_us: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
}

impl LinkSpec {
    /// A LAN-ish link: 100µs ± 50µs.
    pub fn lan() -> Self {
        LinkSpec { latency_us: 100, jitter_us: 50, drop_prob: 0.0 }
    }

    /// A WAN-ish link: 40ms ± 10ms (the paper's intercontinental reality,
    /// §4.3.4.1: "latency is unlikely to evolve dramatically on worldwide
    /// distances due to physical limitations").
    pub fn wan() -> Self {
        LinkSpec { latency_us: 40_000, jitter_us: 10_000, drop_prob: 0.0 }
    }

    /// Zero-latency loopback.
    pub fn local() -> Self {
        LinkSpec { latency_us: 0, jitter_us: 0, drop_prob: 0.0 }
    }
}

/// The cluster's network.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    default_link: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
    /// Unordered blocked pairs (partitioned).
    blocked: HashSet<(NodeId, NodeId)>,
}

impl NetworkModel {
    pub fn new(default_link: LinkSpec) -> Self {
        NetworkModel { default_link, overrides: HashMap::new(), blocked: HashSet::new() }
    }

    pub fn lan() -> Self {
        NetworkModel::new(LinkSpec::lan())
    }

    /// Override one directed link (applied symmetrically by
    /// [`NetworkModel::set_link_symmetric`]).
    pub fn set_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.overrides.insert((from, to), spec);
    }

    pub fn set_link_symmetric(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec);
    }

    pub fn link(&self, from: NodeId, to: NodeId) -> LinkSpec {
        if from == to {
            return LinkSpec::local();
        }
        *self.overrides.get(&(from, to)).unwrap_or(&self.default_link)
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Partition the cluster into groups: nodes in different groups cannot
    /// exchange messages. Nodes not listed keep full connectivity.
    pub fn partition(&mut self, groups: &[&[NodeId]]) {
        for (i, ga) in groups.iter().enumerate() {
            for gb in groups.iter().skip(i + 1) {
                for &a in *ga {
                    for &b in *gb {
                        self.blocked.insert(Self::key(a, b));
                    }
                }
            }
        }
    }

    /// Sever a single pair.
    pub fn block_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert(Self::key(a, b));
    }

    pub fn heal(&mut self) {
        self.blocked.clear();
    }

    pub fn is_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&Self::key(a, b))
    }

    /// Decide the fate of a message: `None` = dropped, `Some(delay)` =
    /// delivered after `delay` microseconds.
    pub fn transit(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> Option<u64> {
        if self.is_blocked(from, to) {
            return None;
        }
        let spec = self.link(from, to);
        if spec.drop_prob > 0.0 && rng.gen::<f64>() < spec.drop_prob {
            return None;
        }
        let jitter = if spec.jitter_us > 0 { rng.gen_range(0..=spec.jitter_us) } else { 0 };
        Some(spec.latency_us + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_block_both_directions() {
        let mut net = NetworkModel::lan();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        net.partition(&[&[a], &[b, c]]);
        assert!(net.is_blocked(a, b));
        assert!(net.is_blocked(b, a));
        assert!(net.is_blocked(a, c));
        assert!(!net.is_blocked(b, c));
        net.heal();
        assert!(!net.is_blocked(a, b));
    }

    #[test]
    fn transit_respects_blocking_and_latency() {
        let mut net = NetworkModel::lan();
        let mut rng = DetRng::seed_from_u64(1);
        let (a, b) = (NodeId(0), NodeId(1));
        let d = net.transit(a, b, &mut rng).unwrap();
        assert!((100..=150).contains(&d), "delay {d}");
        net.block_pair(a, b);
        assert!(net.transit(a, b, &mut rng).is_none());
        // Loopback is free even when partitioned from everyone.
        assert_eq!(net.transit(a, a, &mut rng), Some(0));
    }

    #[test]
    fn lossy_link_drops_some() {
        let mut net = NetworkModel::new(LinkSpec { latency_us: 10, jitter_us: 0, drop_prob: 0.5 });
        let mut rng = DetRng::seed_from_u64(7);
        let (a, b) = (NodeId(0), NodeId(1));
        let delivered = (0..200).filter(|_| net.transit(a, b, &mut rng).is_some()).count();
        assert!((60..140).contains(&delivered), "delivered {delivered}");
        let _ = net.set_link(a, b, LinkSpec::local());
        assert_eq!(net.transit(a, b, &mut rng), Some(0));
    }
}
