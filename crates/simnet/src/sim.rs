//! The discrete-event kernel: actors, message delivery, timers, per-node
//! busy-time (single-server queueing), crash/restart, and scheduled control
//! operations (fault injection).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use replimid_det::DetRng;

use crate::net::{Delivery, LinkFault, NetworkModel, NodeId};
use crate::time::SimTime;

/// A simulated process. `M` is the message type of the whole simulation
/// (typically one enum covering every protocol in play).
pub trait Actor<M> {
    /// Called once when the simulation starts (arm initial timers here).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// A message arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer armed with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _tag: u64) {}

    /// The node just restarted after a crash. In-flight volatile state is
    /// gone; timers armed before the crash will not fire. Durable state (in
    /// our experiments: the database engine the actor owns) survives,
    /// modelling disk persistence.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// Everything an actor may do during a callback.
pub struct Ctx<'a, M> {
    pub me: NodeId,
    now: SimTime,
    queue: &'a mut EventQueue<M>,
    net: &'a NetworkModel,
    rng: &'a mut DetRng,
    meta: &'a mut [NodeMeta],
    stats: &'a mut SimStats,
    fifo: &'a mut std::collections::HashMap<(NodeId, NodeId), SimTime>,
}

impl<M> Ctx<'_, M> {
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-simulation RNG (jitter, workload choices).
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Send a message; it arrives after the link's latency unless the link
    /// is partitioned or lossy. Delivery is FIFO per directed link (TCP-like:
    /// jitter never reorders two messages between the same pair of nodes).
    /// Sending to a crashed node silently loses the message at delivery time
    /// (connection reset).
    pub fn send(&mut self, to: NodeId, msg: M)
    where
        M: Clone,
    {
        self.send_after(to, msg, 0);
    }

    /// Send with an extra sender-side delay before the message leaves —
    /// e.g. a response that must not depart before the service time the
    /// sender consumed for producing it has elapsed.
    pub fn send_after(&mut self, to: NodeId, msg: M, extra_us: u64)
    where
        M: Clone,
    {
        self.stats.messages_sent += 1;
        match self.net.transit(self.me, to, self.rng) {
            Some(delivery) => {
                let dup_delay = match delivery {
                    Delivery::Once(_) => None,
                    Delivery::Twice(_, d2) => Some(d2),
                };
                let mut at = self.now + extra_us + delivery.delay();
                let horizon = self.fifo.entry((self.me, to)).or_insert(SimTime::ZERO);
                if at < *horizon {
                    at = *horizon;
                }
                *horizon = at;
                if let Some(d2) = dup_delay {
                    // Duplication fault: a second copy trails the first. It
                    // advances the FIFO horizon like any later send, so it
                    // never reorders against subsequent traffic.
                    self.stats.messages_duplicated += 1;
                    let mut at2 = self.now + extra_us + d2;
                    let horizon = self.fifo.get_mut(&(self.me, to)).unwrap();
                    if at2 < *horizon {
                        at2 = *horizon;
                    }
                    *horizon = at2;
                    self.queue.push(at, EventKind::Deliver { to, from: self.me, msg: msg.clone() });
                    self.queue.push(at2, EventKind::Deliver { to, from: self.me, msg });
                } else {
                    self.queue.push(at, EventKind::Deliver { to, from: self.me, msg });
                }
            }
            None => self.stats.messages_dropped += 1,
        }
    }

    /// Arm a timer that fires on this node after `delay_us`. Timers do not
    /// survive crashes.
    pub fn set_timer(&mut self, delay_us: u64, tag: u64) {
        let epoch = self.meta[self.me.0].epoch;
        self.queue
            .push(self.now + delay_us, EventKind::Timer { node: self.me, tag, epoch });
    }

    /// Arm a timer at an absolute virtual time (clamped to now). Arrival
    /// processes schedule each arrival at its precomputed instant instead
    /// of chaining relative delays, so interarrival rounding never
    /// accumulates into rate drift over a long open-loop run.
    pub fn set_timer_at(&mut self, at: SimTime, tag: u64) {
        let epoch = self.meta[self.me.0].epoch;
        let at = at.max(self.now);
        self.queue.push(at, EventKind::Timer { node: self.me, tag, epoch });
    }

    /// Account `service_us` of serial processing on this node: subsequent
    /// message deliveries queue behind it (single-server queue). Returns the
    /// time at which the node becomes free again.
    ///
    /// During a brownout (`ControlOp::SetBrownout`) every consumed service
    /// time is stretched by the node's slow factor — the node is *slow but
    /// alive* (§4.1.3's failing-battery anecdote), still answering but
    /// building backlog.
    pub fn consume(&mut self, service_us: u64) -> SimTime {
        let m = &mut self.meta[self.me.0];
        let service_us = if m.slow_factor != 1.0 {
            (service_us as f64 * m.slow_factor) as u64
        } else {
            service_us
        };
        let start = m.busy_until.max(self.now);
        m.busy_until = start + service_us;
        self.stats.busy_us_total += service_us;
        m.busy_until
    }

    /// This node's backlog: how far its busy horizon extends past now.
    pub fn backlog_us(&self) -> u64 {
        self.meta[self.me.0].busy_until.saturating_sub(self.now)
    }

    /// Whether another node is currently crashed. Real distributed systems
    /// cannot ask this — actors implementing failure detectors must not call
    /// it; it exists for *oracle* measurements (e.g. "what was the true
    /// failure time" when computing detection latency).
    pub fn oracle_is_crashed(&self, node: NodeId) -> bool {
        self.meta
            .get(node.0)
            .map(|m| m.crashed)
            .unwrap_or(false)
    }
}

/// What the fault-injection schedule can do (§5.1: benchmarks should
/// integrate fault injection and management operations).
#[derive(Debug, Clone)]
pub enum ControlOp {
    Crash(NodeId),
    Restart(NodeId),
    Partition(Vec<Vec<NodeId>>),
    Heal,
    /// Gray failure: stretch the node's service times by this factor
    /// (slow-but-alive, §4.1.3). A factor of 1.0 is a no-op.
    SetBrownout(NodeId, f64),
    /// End a brownout (service times return to nominal).
    ClearBrownout(NodeId),
    /// Gray failure: overlay loss/duplication/jitter on both directions of
    /// a link without severing it.
    SetLinkFault(NodeId, NodeId, LinkFault),
    /// End a link-fault episode (both directions).
    ClearLinkFault(NodeId, NodeId),
}

enum EventKind<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, tag: u64, epoch: u64 },
    Control(ControlOp),
    /// Single wake marker for a busy node with held deliveries: fires at
    /// the node's free time, carries the lowest held sequence number so it
    /// sorts where that delivery would have (see `step`'s Deliver arm).
    Wake { node: NodeId },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

struct EventQueue<M> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    // Store payloads separately keyed by seq to avoid Ord bounds on M.
    slots: std::collections::HashMap<u64, Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), slots: std::collections::HashMap::new(), next_seq: 0 }
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_at_seq(at, seq, kind);
    }

    /// Re-queue with an existing sequence number (busy-node deferral):
    /// keeping the original seq preserves FIFO against later-sent messages
    /// that land at the same instant.
    fn push_at_seq(&mut self, at: SimTime, seq: u64, kind: EventKind<M>) {
        self.heap.push(Reverse((at, seq)));
        self.slots.insert(seq, Event { at, seq, kind });
    }

    fn pop(&mut self) -> Option<Event<M>> {
        let Reverse((_, seq)) = self.heap.pop()?;
        Some(self.slots.remove(&seq).expect("slot for queued event"))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[derive(Debug, Clone)]
struct NodeMeta {
    crashed: bool,
    busy_until: SimTime,
    /// Bumped on restart so pre-crash timers are invalidated.
    epoch: u64,
    /// Brownout multiplier on consumed service time; 1.0 = nominal.
    slow_factor: f64,
}

impl Default for NodeMeta {
    fn default() -> Self {
        NodeMeta { crashed: false, busy_until: SimTime::ZERO, epoch: 0, slow_factor: 1.0 }
    }
}

/// Aggregate kernel statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    pub messages_sent: u64,
    pub messages_dropped: u64,
    pub messages_duplicated: u64,
    pub events_processed: u64,
    pub busy_us_total: u64,
}

/// Object-safe actor + downcast support (blanket-implemented for every
/// `Actor<M> + 'static`; users never implement this directly).
pub trait AnyActor<M>: Actor<M> {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<M, T: Actor<M> + 'static> AnyActor<M> for T {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The simulation world.
pub struct Sim<M> {
    actors: Vec<Option<Box<dyn AnyActor<M>>>>,
    meta: Vec<NodeMeta>,
    queue: EventQueue<M>,
    pub net: NetworkModel,
    rng: DetRng,
    now: SimTime,
    started: bool,
    stats: SimStats,
    fifo: std::collections::HashMap<(NodeId, NodeId), SimTime>,
    /// Per-node arrival queue for deliveries that found the node busy,
    /// ordered by sequence number (= FIFO arrival order). Invariant: a
    /// node's map is non-empty iff `wake[node]` holds a scheduled `Wake`
    /// marker. Re-heaping every deferred delivery once per service
    /// completion is O(queue²); holding them here and waking once is not.
    held: Vec<std::collections::BTreeMap<u64, (NodeId, M)>>,
    /// Sequence number of the node's scheduled `Wake` marker, if any.
    wake: Vec<Option<u64>>,
}

impl<M> Sim<M> {
    pub fn new(net: NetworkModel, seed: u64) -> Self {
        Sim {
            actors: Vec::new(),
            meta: Vec::new(),
            queue: EventQueue::new(),
            net,
            rng: DetRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            started: false,
            stats: SimStats::default(),
            fifo: std::collections::HashMap::new(),
            held: Vec::new(),
            wake: Vec::new(),
        }
    }

    pub fn add_node<A: Actor<M> + 'static>(&mut self, actor: A) -> NodeId {
        let id = NodeId(self.actors.len());
        self.actors.push(Some(Box::new(actor)));
        self.meta.push(NodeMeta::default());
        self.held.push(std::collections::BTreeMap::new());
        self.wake.push(None);
        id
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn stats(&self) -> SimStats {
        self.stats
    }

    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Schedule a control operation (fault injection) at an absolute time.
    pub fn schedule(&mut self, at: SimTime, op: ControlOp) {
        self.queue.push(at, EventKind::Control(op));
    }

    /// Immediately inject a message to a node (external stimulus). `from` is
    /// reported as the destination itself.
    pub fn inject(&mut self, at: SimTime, to: NodeId, msg: M) {
        self.inject_as(at, to, to, msg);
    }

    /// Inject a message that appears to come from `from` (so the receiver's
    /// replies route there).
    pub fn inject_as(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past");
        self.queue.push(at, EventKind::Deliver { to, from, msg });
    }

    /// Downcast helper for setup and inspection between runs (`A` must be
    /// the concrete actor type registered at `add_node`).
    pub fn with_actor<A: 'static, R>(&mut self, node: NodeId, f: impl FnOnce(&mut A) -> R) -> R {
        let actor = self.actors[node.0].as_mut().expect("actor not in callback");
        let any = actor.as_any_mut();
        f(any.downcast_mut::<A>().expect("actor type mismatch"))
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            self.with_ctx(NodeId(i), |actor, ctx| actor.on_start(ctx));
        }
    }

    fn with_ctx(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Actor<M>, &mut Ctx<'_, M>)) {
        let mut actor = self.actors[node.0].take().expect("re-entrant actor callback");
        {
            let mut ctx = Ctx {
                me: node,
                now: self.now,
                queue: &mut self.queue,
                net: &self.net,
                rng: &mut self.rng,
                meta: &mut self.meta,
                stats: &mut self.stats,
                fifo: &mut self.fifo,
            };
            f(actor.as_mut(), &mut ctx);
        }
        self.actors[node.0] = Some(actor);
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(ev) = self.queue.pop() else { return false };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.stats.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { to, from, msg } => {
                if self.meta[to.0].crashed {
                    self.stats.messages_dropped += 1;
                    return true;
                }
                // Single-server queueing: if the node is busy, park the
                // delivery in its arrival queue. One `Wake` marker at the
                // node's free time then drains the queue a message per
                // service completion; the marker reuses the lowest held
                // seq so it sorts exactly where that delivery would have.
                if self.meta[to.0].busy_until > self.now {
                    self.held[to.0].insert(ev.seq, (from, msg));
                    if self.wake[to.0].is_none() {
                        self.schedule_wake(to);
                    }
                    return true;
                }
                self.with_ctx(to, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, tag, epoch } => {
                if self.meta[node.0].crashed || self.meta[node.0].epoch != epoch {
                    return true;
                }
                self.with_ctx(node, |actor, ctx| actor.on_timer(ctx, tag));
            }
            EventKind::Control(op) => self.apply_control(op),
            EventKind::Wake { node } => {
                self.wake[node.0] = None;
                if self.meta[node.0].crashed {
                    // Deferred deliveries to a node that crashed in the
                    // meantime are lost, exactly as if each had been
                    // requeued and found the node dead.
                    self.stats.messages_dropped += self.held[node.0].len() as u64;
                    self.held[node.0].clear();
                    return true;
                }
                if self.meta[node.0].busy_until > self.now {
                    // Went busy again before the wake: re-aim at the new
                    // free time.
                    self.schedule_wake(node);
                    return true;
                }
                let Some((&seq, _)) = self.held[node.0].iter().next() else { return true };
                let (from, msg) = self.held[node.0].remove(&seq).expect("held delivery");
                self.with_ctx(node, |actor, ctx| actor.on_message(ctx, from, msg));
                if !self.held[node.0].is_empty() {
                    self.schedule_wake(node);
                }
            }
        }
        true
    }

    /// (Re)schedule the `Wake` marker for a node with held deliveries, at
    /// the node's free time, ordered by the lowest held sequence number.
    /// The marker reuses that seq as its own: the delivery's original heap
    /// slot was freed when it was parked, and there is at most one marker
    /// per node, so the seq cannot collide.
    fn schedule_wake(&mut self, node: NodeId) {
        let Some((&seq, _)) = self.held[node.0].iter().next() else { return };
        let at = self.meta[node.0].busy_until.max(self.now);
        self.queue.push_at_seq(at, seq, EventKind::Wake { node });
        self.wake[node.0] = Some(seq);
    }

    fn apply_control(&mut self, op: ControlOp) {
        match op {
            ControlOp::Crash(node) => {
                self.meta[node.0].crashed = true;
                self.meta[node.0].busy_until = self.now;
            }
            ControlOp::Restart(node) => {
                if self.meta[node.0].crashed {
                    self.meta[node.0].crashed = false;
                    self.meta[node.0].epoch += 1;
                    self.with_ctx(node, |actor, ctx| actor.on_restart(ctx));
                }
            }
            ControlOp::Partition(groups) => {
                let refs: Vec<&[NodeId]> = groups.iter().map(|g| g.as_slice()).collect();
                self.net.partition(&refs);
            }
            ControlOp::Heal => self.net.heal(),
            ControlOp::SetBrownout(node, factor) => {
                self.meta[node.0].slow_factor = if factor > 0.0 { factor } else { 1.0 };
            }
            ControlOp::ClearBrownout(node) => {
                self.meta[node.0].slow_factor = 1.0;
            }
            ControlOp::SetLinkFault(a, b, fault) => {
                self.net.set_fault_symmetric(a, b, fault);
            }
            ControlOp::ClearLinkFault(a, b) => {
                self.net.clear_fault_symmetric(a, b);
            }
        }
    }

    /// Run until the queue drains or virtual time reaches `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.start_if_needed();
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Drain every queued event (use with closed workloads that terminate).
    pub fn run_to_quiescence(&mut self) {
        self.start_if_needed();
        while self.step() {}
    }

    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::dur;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Pinger {
        peer: usize,
        pongs: Vec<(u64, u32)>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(NodeId(self.peer), Msg::Ping(1));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.pongs.push((ctx.now().micros(), n));
                if n < 3 {
                    ctx.send(NodeId(self.peer), Msg::Ping(n + 1));
                }
            }
        }
    }

    struct Ponger;

    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                ctx.consume(10);
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = Sim::new(NetworkModel::lan(), 42);
        let a = sim.add_node(Pinger { peer: 1, pongs: vec![] });
        let _b = sim.add_node(Ponger);
        sim.run_to_quiescence();
        sim.with_actor::<Pinger, _>(a, |p| {
            assert_eq!(p.pongs.len(), 3);
            assert!(p.pongs[0].0 >= 200, "two LAN hops minimum");
            assert!(p.pongs.windows(2).all(|w| w[0].0 < w[1].0));
        });
    }

    #[test]
    fn crash_drops_messages_and_restart_revives() {
        let mut sim = Sim::new(NetworkModel::lan(), 1);
        let a = sim.add_node(Pinger { peer: 1, pongs: vec![] });
        let b = sim.add_node(Ponger);
        sim.schedule(SimTime::ZERO, ControlOp::Crash(b));
        sim.run_until(SimTime::from_millis(10));
        sim.with_actor::<Pinger, _>(a, |p| assert!(p.pongs.is_empty()));
        // Restart and ping again.
        sim.schedule(SimTime::from_millis(10), ControlOp::Restart(b));
        let t = SimTime::from_millis(11);
        sim.inject_as(t, a, b, Msg::Ping(9));
        sim.run_to_quiescence();
        sim.with_actor::<Pinger, _>(a, |p| {
            assert_eq!(p.pongs.len(), 1, "revived node answered");
            assert_eq!(p.pongs[0].1, 9);
        });
    }

    struct Busy {
        handled: Vec<u64>,
    }

    impl Actor<Msg> for Busy {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {
            self.handled.push(ctx.now().micros());
            ctx.consume(dur::millis(1));
        }
    }

    #[test]
    fn busy_nodes_serialize_deliveries() {
        let mut sim = Sim::new(NetworkModel::new(crate::net::LinkSpec::local()), 3);
        let b = sim.add_node(Busy { handled: vec![] });
        for _ in 0..3 {
            sim.inject(SimTime::ZERO, b, Msg::Ping(0));
        }
        sim.run_to_quiescence();
        sim.with_actor::<Busy, _>(b, |busy| {
            assert_eq!(busy.handled, vec![0, 1_000, 2_000], "1ms service each");
        });
    }

    #[test]
    fn timers_do_not_survive_crash() {
        struct T {
            fired: bool,
        }
        impl Actor<Msg> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(dur::millis(5), 7);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                self.fired = true;
            }
        }
        let mut sim = Sim::new(NetworkModel::lan(), 5);
        let n = sim.add_node(T { fired: false });
        sim.schedule(SimTime::from_millis(1), ControlOp::Crash(n));
        sim.schedule(SimTime::from_millis(2), ControlOp::Restart(n));
        sim.run_until(SimTime::from_millis(20));
        sim.with_actor::<T, _>(n, |t| assert!(!t.fired, "pre-crash timer must not fire"));
    }

    #[test]
    fn partition_control_blocks_messages() {
        let mut sim = Sim::new(NetworkModel::lan(), 9);
        let a = sim.add_node(Pinger { peer: 1, pongs: vec![] });
        let b = sim.add_node(Ponger);
        sim.schedule(SimTime::ZERO, ControlOp::Partition(vec![vec![a], vec![b]]));
        sim.run_until(SimTime::from_millis(5));
        sim.with_actor::<Pinger, _>(a, |p| assert!(p.pongs.is_empty()));
        assert!(sim.stats().messages_dropped >= 1);
    }

    #[test]
    fn brownout_stretches_service_then_recovers() {
        let mut sim = Sim::new(NetworkModel::new(crate::net::LinkSpec::local()), 4);
        let b = sim.add_node(Busy { handled: vec![] });
        sim.schedule(SimTime::ZERO, ControlOp::SetBrownout(b, 5.0));
        sim.inject(SimTime(1), b, Msg::Ping(0)); // 5ms under brownout
        sim.inject(SimTime(2), b, Msg::Ping(0)); // queues behind it
        sim.schedule(SimTime::from_millis(6), ControlOp::ClearBrownout(b));
        sim.inject(SimTime::from_millis(20), b, Msg::Ping(0)); // nominal again
        sim.run_to_quiescence();
        sim.with_actor::<Busy, _>(b, |busy| {
            assert_eq!(busy.handled[0], 1);
            assert_eq!(busy.handled[1], 5_001, "second waited out 5x service");
            assert_eq!(busy.handled[2], 20_000);
        });
        // Nominal service resumed: total busy = 5ms + 5ms + 1ms.
        assert_eq!(sim.stats().busy_us_total, 11_000);
    }

    #[test]
    fn link_fault_control_duplicates_and_clears() {
        // A sender that pings on two timers: once during the dup episode,
        // once after it clears.
        struct SendTwice {
            peer: usize,
        }
        impl Actor<Msg> for SendTwice {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(dur::millis(1), 1);
                ctx.set_timer(dur::millis(5), 2);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
                ctx.send(NodeId(self.peer), Msg::Ping(tag as u32));
            }
        }
        // Zero-jitter base link + dup_prob 1.0: every send during the
        // episode delivers exactly twice, FIFO preserved.
        let mut sim = Sim::new(NetworkModel::new(crate::net::LinkSpec::local()), 6);
        let sink = sim.add_node(Busy { handled: vec![] });
        let src = sim.add_node(SendTwice { peer: 0 });
        sim.schedule(
            SimTime::ZERO,
            ControlOp::SetLinkFault(
                src,
                sink,
                crate::net::LinkFault { drop_prob: 0.0, dup_prob: 1.0, jitter_us: 0 },
            ),
        );
        sim.schedule(SimTime::from_millis(4), ControlOp::ClearLinkFault(src, sink));
        sim.run_to_quiescence();
        sim.with_actor::<Busy, _>(sink, |b| {
            assert_eq!(b.handled.len(), 3, "ping 1 twice, ping 2 once");
        });
        assert_eq!(sim.stats().messages_duplicated, 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Sim::new(NetworkModel::lan(), seed);
            let a = sim.add_node(Pinger { peer: 1, pongs: vec![] });
            let _ = sim.add_node(Ponger);
            sim.run_to_quiescence();
            let mut out = Vec::new();
            sim.with_actor::<Pinger, _>(a, |p| out = p.pongs.clone());
            out
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different jitter draws");
    }
}

#[cfg(test)]
mod send_after_tests {
    use super::*;
    use crate::net::LinkSpec;

    #[derive(Debug, Clone)]
    struct N(u64);

    struct Echo {
        service_us: u64,
        received: Vec<(u64, u64)>, // (payload, at)
    }

    impl Actor<N> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, N>, from: NodeId, msg: N) {
            self.received.push((msg.0, ctx.now().micros()));
            ctx.consume(self.service_us);
            let backlog = ctx.backlog_us();
            ctx.send_after(from, N(msg.0 + 100), backlog);
        }
    }

    struct Sink {
        got: Vec<(u64, u64)>,
    }

    impl Actor<N> for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, N>, _from: NodeId, msg: N) {
            self.got.push((msg.0, ctx.now().micros()));
        }
    }

    #[test]
    fn responses_wait_for_service_time() {
        let mut sim = Sim::new(NetworkModel::new(LinkSpec::local()), 1);
        let sink = sim.add_node(Sink { got: vec![] });
        let echo = sim.add_node(Echo { service_us: 1_000, received: vec![] });
        sim.inject_as(SimTime::ZERO, sink, echo, N(1));
        sim.run_to_quiescence();
        sim.with_actor::<Sink, _>(sink, |s| {
            assert_eq!(s.got.len(), 1);
            assert!(s.got[0].1 >= 1_000, "reply left only after the 1ms service");
        });
    }

    #[test]
    fn deferred_deliveries_keep_fifo_against_later_sends() {
        // Two messages sent 1µs apart to a node that is busy: both must be
        // processed in send order even though the first is requeued.
        let mut sim = Sim::new(NetworkModel::new(LinkSpec::local()), 2);
        let sink = sim.add_node(Sink { got: vec![] });
        let echo = sim.add_node(Echo { service_us: 500, received: vec![] });
        sim.inject_as(SimTime(0), sink, echo, N(1)); // starts 500µs of work
        sim.inject_as(SimTime(100), sink, echo, N(2)); // arrives while busy
        sim.inject_as(SimTime(400), sink, echo, N(3)); // also while busy
        sim.run_to_quiescence();
        sim.with_actor::<Echo, _>(echo, |e| {
            let order: Vec<u64> = e.received.iter().map(|&(p, _)| p).collect();
            assert_eq!(order, vec![1, 2, 3], "FIFO preserved across deferral");
        });
    }
}
