//! # replimid-simnet
//!
//! Deterministic discrete-event cluster simulator: virtual time, actors with
//! message passing and timers, per-node busy-time (single-server queueing),
//! a network model with latency/jitter/loss/partitions, and scheduled fault
//! injection (crash, restart, partition, heal).
//!
//! This is the "testbed" substrate for the replication middleware: the paper
//! (§5.1) asks for benchmarks that integrate fault injection and replayable
//! workloads; a seeded simulation gives exactly that.

pub mod disk;
pub mod net;
pub mod sim;
pub mod time;

pub use disk::DiskModel;
pub use net::{Delivery, LinkFault, LinkSpec, NetworkModel, NodeId};
pub use sim::{Actor, AnyActor, ControlOp, Ctx, Sim, SimStats};
pub use time::{dur, SimTime};
