//! `detcheck`: a minimal seeded property-test harness.
//!
//! Differences from proptest, deliberately: no shrinking (cases are drawn
//! from small hand-written generators, so failures are already readable),
//! no persistence files (regressions are promoted to explicit named
//! `#[test]` cases by hand), and fully deterministic scheduling — the case
//! seeds depend only on the property name and case index, never on wall
//! clock or thread identity.
//!
//! Usage:
//!
//! ```
//! use replimid_det::{detcheck, DetRng};
//!
//! detcheck::check("addition_commutes", 64, |rng| {
//!     let (a, b) = (rng.gen::<u32>() as u64, rng.gen::<u32>() as u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! On failure the panic names the property and the reproducing case seed;
//! replay it in isolation with [`replay`] (the basis for pinned regression
//! tests) or by setting `DETCHECK_SEED=<seed>` to skip all other cases.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::DetRng;

/// Stable 64-bit FNV-1a hash of the property name: the per-property base
/// seed. Must never change, or recorded regression seeds lose meaning.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed of case `index` of property `name` (SplitMix64 over the name
/// hash, so consecutive cases get decorrelated generators).
pub fn case_seed(name: &str, index: u32) -> u64 {
    let mut rng = DetRng::seed_from_u64(fnv1a(name) ^ 0x5bf0_3635);
    let mut seed = 0;
    for _ in 0..=index {
        seed = rng.next_u64();
    }
    seed
}

/// Run `cases` seeded cases of the property. The property receives a
/// `DetRng` to draw its inputs from and signals failure by panicking
/// (`assert!` and friends). The first failing case aborts the run with a
/// message naming the reproducing seed.
///
/// Set `DETCHECK_SEED=<u64>` to run only that seed (replaying a failure
/// under a debugger without wading through the passing prefix).
pub fn check(name: &str, cases: u32, prop: impl Fn(&mut DetRng)) {
    if let Ok(s) = std::env::var("DETCHECK_SEED") {
        let seed: u64 = s.parse().unwrap_or_else(|_| {
            panic!("DETCHECK_SEED must be a u64, got {s:?}")
        });
        replay(name, seed, prop);
        return;
    }
    for index in 0..cases {
        let seed = case_seed(name, index);
        let mut rng = DetRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(cause) = outcome {
            let msg = payload_str(&*cause);
            panic!(
                "property '{name}' failed on case {index}/{cases} (case seed {seed}): {msg}\n\
                 replay with detcheck::replay(\"{name}\", {seed}, ..) or DETCHECK_SEED={seed}"
            );
        }
    }
}

/// Run the property once with an explicit case seed. This is how recorded
/// regressions stay alive after migration off proptest: pin the seed in a
/// named `#[test]` so the reproduced failure keeps running forever.
pub fn replay(name: &str, seed: u64, prop: impl Fn(&mut DetRng)) {
    let mut rng = DetRng::seed_from_u64(seed);
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut rng)));
    if let Err(cause) = outcome {
        let msg = payload_str(&*cause);
        panic!("property '{name}' failed replaying case seed {seed}: {msg}");
    }
}

fn payload_str(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------
// Generator combinators: the handful the migrated suites need.
// ---------------------------------------------------------------------

/// Pick one element of a non-empty slice.
pub fn pick<'a, T>(rng: &mut DetRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// A `Vec` with length drawn from `[min_len, max_len]`.
pub fn vec_of<T>(
    rng: &mut DetRng,
    min_len: usize,
    max_len: usize,
    mut item: impl FnMut(&mut DetRng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(min_len..=max_len);
    (0..n).map(|_| item(rng)).collect()
}

/// `Some(value)` half the time.
pub fn option_of<T>(rng: &mut DetRng, item: impl FnOnce(&mut DetRng) -> T) -> Option<T> {
    if rng.gen_bool(0.5) {
        Some(item(rng))
    } else {
        None
    }
}

/// A string of length `[min_len, max_len]` over the given alphabet.
pub fn string_from(rng: &mut DetRng, alphabet: &[char], min_len: usize, max_len: usize) -> String {
    let n = rng.gen_range(min_len..=max_len);
    (0..n).map(|_| *pick(rng, alphabet)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes_all_cases() {
        let mut ran = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("always_true", 32, |rng| {
            let _ = rng.next_u64();
            counter.set(counter.get() + 1);
        });
        ran += counter.get();
        assert_eq!(ran, 32);
    }

    #[test]
    fn failing_property_reports_reproducing_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("fails_when_even", 64, |rng| {
                let v = rng.next_u64();
                assert!(v % 2 == 1, "drew even value {v}");
            });
        }))
        .expect_err("property must fail");
        let msg = payload_str(&*err);
        assert!(msg.contains("fails_when_even"), "{msg}");
        // The advertised seed must actually reproduce the failure.
        let seed: u64 = msg
            .split("case seed ")
            .nth(1)
            .and_then(|rest| rest.split(')').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no seed in: {msg}"));
        let mut rng = DetRng::seed_from_u64(seed);
        assert_eq!(rng.next_u64() % 2, 0, "seed must reproduce the even draw");
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("p", 0), case_seed("p", 0));
        assert_ne!(case_seed("p", 0), case_seed("p", 1));
        assert_ne!(case_seed("p", 0), case_seed("q", 0));
    }

    #[test]
    fn replay_runs_the_exact_seed() {
        let seen = std::cell::Cell::new(0u64);
        replay("whatever", 12345, |rng| seen.set(rng.next_u64()));
        let mut rng = DetRng::seed_from_u64(12345);
        assert_eq!(seen.get(), rng.next_u64());
    }

    #[test]
    fn combinators_are_deterministic() {
        let run = |seed| {
            let mut rng = DetRng::seed_from_u64(seed);
            let v = vec_of(&mut rng, 1, 5, |r| r.gen_range(0..100i64));
            let s = string_from(&mut rng, &['a', 'b', 'c'], 0, 8);
            let o = option_of(&mut rng, |r| *pick(r, &[1, 2, 3]));
            (v, s, o)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
