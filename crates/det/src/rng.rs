//! `DetRng`: xoshiro256++ seeded via SplitMix64.
//!
//! Algorithm choices follow Blackman & Vigna's reference implementations
//! (public domain). xoshiro256++ passes BigCrush, is four u64s of state,
//! and needs ~6 ALU ops per draw — fast enough that the simulator's hot
//! path never notices it. SplitMix64 expands a single u64 seed into the
//! 256-bit state, guaranteeing distinct, well-mixed streams even for
//! adjacent seeds (0, 1, 2, ...), which the experiment harness relies on.

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Expand a 64-bit seed into the full 256-bit state with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Construct from raw state (known-answer tests only). All-zero state
    /// is degenerate for xoshiro and is rejected.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        DetRng { s }
    }

    /// The core xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draw a value of type `T` (uniform over the type's range; `f64` is
    /// uniform in `[0, 1)` with 53 bits of precision).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open (`a..b`) or inclusive (`a..=b`) range.
    /// Panics on empty ranges, matching the convention callers expect.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: true with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice (little-endian words of the stream).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform in `[0, bound)` without modulo bias (rejection sampling on
    /// the short "unfair" prefix of the modulus classes).
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }
}

/// Types [`DetRng::gen`] can produce.
pub trait Sample: Sized {
    fn sample(rng: &mut DetRng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for i64 {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Sample for usize {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in [0, 1): top 53 bits scaled by 2^-53.
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut DetRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                if width > u64::MAX as u128 {
                    // Full-width range: every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded(width as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer vectors computed with an independent implementation of
    // the Blackman–Vigna reference algorithms.

    #[test]
    fn splitmix64_known_answers() {
        let mut s = 1_234_567u64;
        assert_eq!(splitmix64(&mut s), 6_457_827_717_110_365_317);
        assert_eq!(splitmix64(&mut s), 3_203_168_211_198_807_973);
        assert_eq!(splitmix64(&mut s), 9_817_491_932_198_370_423);
        let mut z = 0u64;
        assert_eq!(splitmix64(&mut z), 16_294_208_416_658_607_535);
        assert_eq!(splitmix64(&mut z), 7_960_286_522_194_355_700);
    }

    #[test]
    fn xoshiro256pp_known_answers() {
        let mut rng = DetRng::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_expansion_uses_splitmix() {
        let rng = DetRng::seed_from_u64(42);
        assert_eq!(
            rng.s,
            [
                13_679_457_532_755_275_413,
                2_949_826_092_126_892_291,
                5_139_283_748_462_763_858,
                6_349_198_060_258_255_764,
            ]
        );
        let mut rng = rng;
        assert_eq!(rng.next_u64(), 15_021_278_609_987_233_951);
        assert_eq!(rng.next_u64(), 5_881_210_131_331_364_753);
    }

    #[test]
    fn f64_is_unit_interval_and_deterministic() {
        let mut rng = DetRng::seed_from_u64(42);
        let first: f64 = rng.gen();
        assert!((first - 0.814_305_145_122_909_9).abs() < 1e-15);
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_inclusivity() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(0..=3);
            assert!(v <= 3);
            saw_lo |= v == 0;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "inclusive range must reach both endpoints");
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
        // Half-open range never yields the upper bound.
        for _ in 0..1_000 {
            assert_eq!(rng.gen_range(7..8), 7i32);
        }
        // Negative-only range.
        for _ in 0..100 {
            let v: i64 = rng.gen_range(i64::MIN..i64::MIN + 2);
            assert!(v == i64::MIN || v == i64::MIN + 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = DetRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(99);
        assert!(!(0..1_000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1_000).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&heads), "heads {heads}");
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = DetRng::seed_from_u64(5);
        let mut b = DetRng::seed_from_u64(5);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..20], &w2[..4]);
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let mut a = DetRng::seed_from_u64(1_000);
        let mut b = DetRng::seed_from_u64(1_000);
        let mut c = DetRng::seed_from_u64(1_001);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc, "adjacent seeds must decorrelate");
    }
}
