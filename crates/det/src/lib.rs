//! Hermetic determinism substrate for the whole workspace.
//!
//! Two pieces, both with zero non-workspace dependencies:
//!
//! * [`DetRng`] — a SplitMix64-seeded xoshiro256++ generator exposing the
//!   small API surface the codebase actually uses (`seed_from_u64`, `gen`,
//!   `gen_range`, `gen_bool`, `fill_bytes`). Every simulation, workload
//!   generator, and experiment draws from it, so same-seed runs are
//!   bit-identical across machines and toolchains.
//! * [`detcheck`] — a minimal seeded property-test harness: N seeded cases
//!   per property, failures reported as the reproducing case seed, and
//!   explicit regression-seed replay so reproduced failures are never
//!   silently dropped.
//!
//! The build environment has no registry access, which is why these live in
//! the tree rather than coming from `rand`/`proptest` (see DESIGN.md,
//! "Hermetic builds").

pub mod detcheck;
mod rng;

pub use rng::{DetRng, Sample, SampleRange};
