//! # replimid-core
//!
//! Middleware-based database replication — the primary contribution of the
//! reproduction of Cecchet, Candea & Ailamaki (SIGMOD 2008). See DESIGN.md
//! at the workspace root for the architecture and the per-experiment index.

pub mod backoff;
pub mod balancer;
pub mod certifier;
pub mod client;
pub mod cluster;
pub mod db_node;
pub mod fleet;
pub mod health;
pub mod metrics;
pub mod middleware;
pub mod msg;
pub mod partition;
pub mod recovery;
pub mod rewrite;
pub mod session;
pub mod trace;

pub use backoff::{delay_us as backoff_delay_us, BackoffConfig};
pub use balancer::{Balancer, Granularity, Policy};
pub use certifier::{Certifier, CertifierStats, Verdict};
pub use client::{Client, ClientConfig, ClientMetrics, ScriptSource, TxSource};
pub use cluster::{Cluster, ClusterConfig};
pub use db_node::{DbNode, RecoveryInfo};
pub use fleet::{FleetConfig, FleetMetrics, SessionFleet};
pub use health::{HealthEvent, HealthState, HealthTracker, QuarantineConfig};
pub use metrics::{AvailabilityTracker, Counters, DegradedTracker, Histogram};
pub use middleware::{Middleware, Mode, MwConfig, MwMetrics, ReadPolicy};
pub use msg::{AdminCmd, BackendId, ClientReply, ClientRequest, Msg, ReplyBody, ReplyError, SessionId};
pub use partition::{PartitionScheme, Partitioner, Placement, Route};
pub use recovery::{RecoveryLog, ReplayMode};
pub use rewrite::NondetPolicy;
pub use session::SessionTable;
pub use trace::{CompletedTrace, SpanRec, Stage, TraceId, TraceSink, TraceSummary};
