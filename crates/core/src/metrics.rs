//! Metrics the paper says replication evaluations should report (§5.1):
//! latency distributions, throughput, abort/commit counts, and — the
//! neglected ones — availability, MTTF, MTTR, and downtime windows.

/// Log-scaled latency histogram (microseconds), power-of-two buckets from
/// 1µs to ~17 minutes.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 31],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { buckets: [0; 31], count: 0, sum: 0, max: 0 }
    }

    pub fn record(&mut self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(30);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += us;
        self.max = self.max.max(us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (µs). Buckets are approximate;
    /// the sum is not — trace reconciliation depends on that.
    pub fn sum_us(&self) -> u64 {
        self.sum
    }

    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Approximate quantile: the upper bound of the containing bucket,
    /// clamped to the maximum recorded sample (a bucket bound can exceed
    /// every sample it contains — one 1µs sample must not report p99=2µs).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (1u64 << (i + 1)).min(self.max);
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Tracks service availability over virtual time: callers report each
/// request outcome; the tracker reconstructs downtime windows and derives
/// MTTF/MTTR/nines.
#[derive(Debug, Clone, Default)]
pub struct AvailabilityTracker {
    /// (start_us, end_us) of completed outage windows.
    outages: Vec<(u64, u64)>,
    /// Start of the current outage, if we are in one.
    down_since: Option<u64>,
    first_event: Option<u64>,
    last_event: u64,
    /// Most recent success: failure reports may carry *backdated*
    /// timestamps (when the failed request was dispatched), but an outage
    /// can never begin before the last observed success.
    last_ok: u64,
}

impl AvailabilityTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, now_us: u64, ok: bool) {
        if self.first_event.is_none() {
            self.first_event = Some(now_us);
        }
        self.last_event = self.last_event.max(now_us);
        if ok {
            self.last_ok = self.last_ok.max(now_us);
        }
        match (ok, self.down_since) {
            (false, None) => self.down_since = Some(now_us.max(self.last_ok)),
            // A success backdated before the outage started (failure
            // reports carry dispatch times, and `start` is clamped to
            // `last_ok`, which can sit in this report's future) proves
            // nothing about recovery: the outage stays open. Pushing
            // `(start, now_us)` there would invert the window and
            // underflow `downtime_us`.
            (true, Some(start)) if now_us >= start => {
                self.outages.push((start, now_us));
                self.down_since = None;
            }
            _ => {}
        }
    }

    /// Close the observation window at `end_us`. An open outage can start
    /// *after* `end_us` (backdated failure clamped to a later `last_ok`);
    /// clamp so the recorded window is never inverted.
    pub fn finish(&mut self, end_us: u64) {
        self.last_event = self.last_event.max(end_us);
        if let Some(start) = self.down_since.take() {
            self.outages.push((start, end_us.max(start)));
        }
    }

    pub fn outage_count(&self) -> usize {
        self.outages.len()
    }

    pub fn downtime_us(&self) -> u64 {
        // Both push sites guarantee e >= s; saturate anyway so a bad window
        // can never panic the metrics path.
        self.outages.iter().map(|(s, e)| e.saturating_sub(*s)).sum()
    }

    pub fn observed_us(&self) -> u64 {
        match self.first_event {
            Some(first) => self.last_event.saturating_sub(first),
            None => 0,
        }
    }

    /// Mean time to repair: average outage length.
    pub fn mttr_us(&self) -> f64 {
        if self.outages.is_empty() {
            0.0
        } else {
            self.downtime_us() as f64 / self.outages.len() as f64
        }
    }

    /// Mean time to failure: average uptime between outages.
    pub fn mttf_us(&self) -> f64 {
        if self.outages.is_empty() {
            self.observed_us() as f64
        } else {
            let uptime = self.observed_us().saturating_sub(self.downtime_us());
            uptime as f64 / self.outages.len() as f64
        }
    }

    /// Availability ratio: MTTF / (MTTF + MTTR) ≈ uptime / total.
    pub fn availability(&self) -> f64 {
        let total = self.observed_us();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.downtime_us() as f64 / total as f64
    }

    /// "Nines" of availability (the paper's 5-nines = 5.26 min/year bar).
    pub fn nines(&self) -> f64 {
        let a = self.availability();
        if a >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - a).log10()
        }
    }

    pub fn outage_windows(&self) -> &[(u64, u64)] {
        &self.outages
    }
}

/// Middleware-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    pub reads: u64,
    pub writes: u64,
    pub commits: u64,
    pub aborts: u64,
    pub certification_failures: u64,
    pub rejected_statements: u64,
    pub rewritten_statements: u64,
    pub failovers: u64,
    pub lost_transactions: u64,
    pub divergence_detected: u64,
    /// Backends quarantined by the latency circuit breaker.
    pub quarantine_trips: u64,
    /// Half-open probe reads routed to quarantined backends.
    pub quarantine_probes: u64,
    /// Quarantined backends that passed a probe and rejoined rotation.
    pub quarantine_rejoins: u64,
    /// Failovers where the oracle says the backend was actually alive —
    /// the detector was fooled by a brownout or lossy link.
    pub false_evictions: u64,
    /// Writes rejected fast because the cluster was in degraded read-only
    /// mode (write quorum lost).
    pub degraded_write_rejects: u64,
    /// Tripwire: reads that reached a quarantined backend through the
    /// normal path (must stay 0 — probes are counted separately).
    pub reads_routed_to_quarantined: u64,
    /// Group-commit flushes triggered by the batch filling (`batch_max`).
    pub batch_flush_size: u64,
    /// Group-commit flushes triggered by the deadline timer.
    pub batch_flush_deadline: u64,
    /// Freshness-routed reads where at least one online candidate was
    /// excluded as stale (the freshness filter actually bit).
    pub fresh_filtered_stale: u64,
    /// Freshness-routed reads that fell back to the primary because no
    /// replica had caught up to the session's stamp.
    pub fresh_fallback_primary: u64,
    /// Reads parked in the freshness wait queue until a replica caught up.
    pub freshness_waits: u64,
    /// Parked reads whose wait deadline expired (served by the primary or
    /// failed as unavailable).
    pub freshness_wait_timeouts: u64,
    /// Plan-cache lookups that found a prepared template (admission skipped
    /// the parser; the backend skips it too via `ExecutePlan`).
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that missed (template prepared and inserted) or
    /// hit an uncacheable statement shape.
    pub plan_cache_misses: u64,
    /// Prepared templates evicted by the cache's LRU bound.
    pub plan_cache_evictions: u64,
    /// Multi-group transactions committed by the cross-group 2PC (every
    /// involved group voted yes).
    pub xgroup_commits: u64,
    /// Multi-group transactions aborted because at least one involved
    /// group voted no (reservations in yes-voting groups retracted).
    pub xgroup_aborts: u64,
    /// Conflict-class cache: delivery-time table-class lookups answered
    /// from the per-template cache (the threaded AST was not re-walked).
    pub cert_class_hits: u64,
    /// Conflict-class cache misses (class derived by walking the AST and,
    /// when cacheable, inserted).
    pub cert_class_misses: u64,
    /// LPRF picks where folding replication lag into the score demoted the
    /// backend that plain least-pending would have chosen.
    pub lprf_lag_demotions: u64,
    /// Writeset-mode fan-out flushes sent as one `ApplyWritesetBatch`
    /// message per backend instead of one `ApplyWriteset` per transaction.
    pub ws_apply_batch_flushes: u64,
    /// Graceful drains started (`AdminCmd::DrainBackend` accepted).
    pub drains_started: u64,
    /// Drains that reached `Removed` — gracefully (in-flight work allowed
    /// to complete) or forcibly (the backend died mid-drain).
    pub drains_completed: u64,
    /// Removed backends re-admitted by `AdminCmd::AddBackend`; the next
    /// pong starts the normal rejoin procedure.
    pub backends_added: u64,
}

/// Tracks time spent in degraded read-only mode (write quorum lost but
/// reads still served). Degraded time is *not* downtime — that distinction
/// is the point — so it gets its own tracker beside [`AvailabilityTracker`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradedTracker {
    since: Option<u64>,
    total_us: u64,
    episodes: u64,
}

impl DegradedTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_degraded(&self) -> bool {
        self.since.is_some()
    }

    pub fn enter(&mut self, now_us: u64) {
        if self.since.is_none() {
            self.since = Some(now_us);
            self.episodes += 1;
        }
    }

    pub fn exit(&mut self, now_us: u64) {
        if let Some(start) = self.since.take() {
            self.total_us += now_us.saturating_sub(start);
        }
    }

    /// Close the observation window (still-degraded time counts).
    pub fn finish(&mut self, end_us: u64) {
        self.exit(end_us);
    }

    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    pub fn episodes(&self) -> u64 {
        self.episodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for us in [100, 200, 300, 400, 50_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        assert!(h.mean_us() > 10_000.0 / 5.0);
        assert!(h.quantile_us(0.5) >= 200 && h.quantile_us(0.5) <= 512);
        assert!(h.quantile_us(1.0) >= 50_000);
        assert_eq!(h.max_us(), 50_000);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        // Regression: a single 1µs sample lands in the [1,2) bucket, whose
        // upper bound (2) used to be reported as p99 > max.
        let mut h = Histogram::new();
        h.record(1);
        assert_eq!(h.quantile_us(0.99), 1);
        assert_eq!(h.quantile_us(1.0), h.max_us());

        let mut h = Histogram::new();
        for us in [3, 5, 700, 50_000] {
            h.record(us);
        }
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert!(
                h.quantile_us(q) <= h.max_us(),
                "q={q}: {} > max {}",
                h.quantile_us(q),
                h.max_us()
            );
        }
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 1_000_000);
    }

    #[test]
    fn availability_windows() {
        let mut t = AvailabilityTracker::new();
        t.record(0, true);
        t.record(1_000_000, false); // outage starts
        t.record(1_500_000, false);
        t.record(2_000_000, true); // repaired after 1s
        t.record(10_000_000, false);
        t.finish(11_000_000); // still down at close: 1s outage
        assert_eq!(t.outage_count(), 2);
        assert_eq!(t.downtime_us(), 2_000_000);
        assert!((t.mttr_us() - 1_000_000.0).abs() < 1.0);
        let a = t.availability();
        assert!((0.8..0.85).contains(&a), "availability {a}");
        assert!(t.nines() < 1.0);
    }

    #[test]
    fn availability_backdated_reports_never_invert_windows() {
        // Failure reports are backdated to the failed request's dispatch
        // time (see Middleware::backend_failed), so `record(t0, false)` with
        // t0 in the past is normal. The outage start is clamped to the last
        // observed success — which can be *later* than a subsequently
        // reported success or an early `finish`.
        let mut t = AvailabilityTracker::new();
        t.record(5_000_000, true); // last_ok = 5s
        t.record(1_000_000, false); // backdated failure -> outage opens at 5s
        t.record(3_000_000, true); // backdated success: outage must stay open
        assert_eq!(t.outage_count(), 0);
        // Closing the window before the clamped start must not push an
        // inverted (start > end) outage; downtime stays 0, no underflow.
        t.finish(2_000_000);
        assert_eq!(t.outage_count(), 1);
        assert_eq!(t.downtime_us(), 0);
        let _ = t.mttr_us();
        assert!(t.availability() <= 1.0);

        // Same shape, but the repair arrives after the clamped start: the
        // window is (5s, 6s), exactly 1s of downtime.
        let mut t = AvailabilityTracker::new();
        t.record(5_000_000, true);
        t.record(1_000_000, false);
        t.record(6_000_000, true);
        assert_eq!(t.outage_count(), 1);
        assert_eq!(t.downtime_us(), 1_000_000);
    }

    #[test]
    fn degraded_tracker_episodes() {
        let mut d = DegradedTracker::new();
        assert!(!d.is_degraded());
        d.enter(1_000);
        d.enter(2_000); // idempotent while degraded
        assert!(d.is_degraded());
        d.exit(5_000);
        assert_eq!(d.total_us(), 4_000);
        assert_eq!(d.episodes(), 1);
        d.enter(10_000);
        d.finish(12_000);
        assert_eq!(d.total_us(), 6_000);
        assert_eq!(d.episodes(), 2);
        assert!(!d.is_degraded());
    }

    #[test]
    fn availability_perfect_service() {
        let mut t = AvailabilityTracker::new();
        t.record(0, true);
        t.record(1_000, true);
        t.finish(2_000);
        assert_eq!(t.availability(), 1.0);
        assert!(t.nines().is_infinite());
        assert_eq!(t.mttr_us(), 0.0);
    }
}
