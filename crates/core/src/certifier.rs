//! Writeset certification for transaction-based multi-master replication
//! (§4.3.2; the Postgres-R / Middle-R lineage).
//!
//! Certification is deterministic from the totally-ordered stream of
//! certification requests, so every middleware replica reaches the same
//! verdicts — which is precisely what makes the certifier *replicable*
//! instead of the single point of failure §3.2 warns about. The experiments
//! can still configure a deliberately-unreplicated certifier to reproduce
//! the SPOF outage.

use std::collections::HashMap;

use replimid_sql::{Writeset, WsKey};

/// One certified transaction in the conflict window.
#[derive(Debug, Clone)]
struct Certified {
    /// Position in the certification sequence (1-based).
    pos: u64,
    /// Keys written (released again if the certification is retracted by a
    /// cross-group abort).
    key_hashes: Vec<u64>,
}

/// First-committer-wins certifier with a sliding conflict window.
#[derive(Debug, Clone)]
pub struct Certifier {
    /// Certification sequence position (count of certified transactions).
    pos: u64,
    window: Vec<Certified>,
    /// Per-key last-certified position (fast path).
    last_writer: HashMap<u64, u64>,
    /// Keep at most this many transactions in the window; transactions
    /// older than everything active can be pruned by the caller via
    /// `prune_before`.
    max_window: usize,
    stats: CertifierStats,
}

/// Outcome of certification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Commit,
    /// A concurrent transaction already certified a write to an overlapping
    /// key (first-committer-wins).
    Abort,
}

/// Running totals for the certification stage, deterministic from the
/// ordered request stream (every replica's copy agrees). Snapshotted into
/// `MwMetrics` for per-run reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertifierStats {
    /// Certification requests processed.
    pub checks: u64,
    pub commits: u64,
    pub aborts: u64,
    /// Writeset keys examined across all checks.
    pub keys_checked: u64,
    /// Largest conflict window observed (certified transactions retained).
    pub max_window: usize,
}

impl Certifier {
    pub fn new() -> Self {
        Certifier {
            pos: 0,
            window: Vec::new(),
            last_writer: HashMap::new(),
            max_window: 65_536,
            stats: CertifierStats::default(),
        }
    }

    /// Snapshot of the running certification statistics.
    pub fn stats(&self) -> CertifierStats {
        self.stats
    }

    /// Current position; transactions snapshot this when they begin.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Certify a transaction that began at `start_pos` with writeset `ws`.
    /// `pk_of` resolves primary keys for key extraction. Deterministic:
    /// every replica feeding the same ordered stream gets the same verdicts.
    pub fn certify(
        &mut self,
        start_pos: u64,
        ws: &Writeset,
        pk_of: impl Fn(&str, &str) -> Option<usize>,
    ) -> Verdict {
        let keys: Vec<WsKey> = ws.keys(&pk_of);
        let hashes: Vec<u64> = keys.iter().map(WsKey::hash).collect();
        self.stats.checks += 1;
        self.stats.keys_checked += hashes.len() as u64;
        for h in &hashes {
            if let Some(&writer_pos) = self.last_writer.get(h) {
                if writer_pos > start_pos {
                    self.stats.aborts += 1;
                    return Verdict::Abort;
                }
            }
        }
        self.stats.commits += 1;
        // Passed: record it.
        self.pos += 1;
        let pos = self.pos;
        for &h in &hashes {
            self.last_writer.insert(h, pos);
        }
        self.window.push(Certified { pos, key_hashes: hashes });
        self.stats.max_window = self.stats.max_window.max(self.window.len());
        if self.window.len() > self.max_window {
            let cutoff = self.window[self.window.len() - self.max_window].pos;
            self.prune_before(cutoff);
        }
        Verdict::Commit
    }

    /// Certify a group-committed batch in admission order. Exactly
    /// equivalent to calling [`certify`](Self::certify) once per item:
    /// conflict state (window, `last_writer`, position) carries across the
    /// batch, so an earlier batch member's commit aborts a later overlapping
    /// member whose `start_pos` predates it — the one-call form exists so
    /// the middleware hands the whole flush to the certifier at once and
    /// the order inside the batch cannot be perturbed by interleaving.
    pub fn certify_batch(
        &mut self,
        items: &[(u64, &Writeset)],
        pk_of: impl Fn(&str, &str) -> Option<usize>,
    ) -> Vec<Verdict> {
        items
            .iter()
            .map(|&(start_pos, ws)| self.certify(start_pos, ws, &pk_of))
            .collect()
    }

    /// Undo the certification recorded at `pos` (cross-group 2PC abort:
    /// this group voted yes — optimistically inserting its keys — but
    /// another involved group voted no, so the reservation is released).
    /// The position itself stays consumed; only the conflict entries go.
    /// Deterministic: every replica retracts at the same point in its
    /// group-local stream because the decision is a pure function of the
    /// involved streams.
    pub fn retract(&mut self, pos: u64) {
        let Some(idx) = self.window.iter().position(|c| c.pos == pos) else {
            return; // already pruned past it — nothing left to release
        };
        let removed = self.window.remove(idx);
        for h in &removed.key_hashes {
            if self.last_writer.get(h) == Some(&pos) {
                // Roll the key back to the newest surviving writer, if any
                // (a later transaction may already have re-certified it).
                let prev = self
                    .window
                    .iter()
                    .filter(|c| c.key_hashes.contains(h))
                    .map(|c| c.pos)
                    .max();
                match prev {
                    Some(p) => {
                        self.last_writer.insert(*h, p);
                    }
                    None => {
                        self.last_writer.remove(h);
                    }
                }
            }
        }
        self.stats.commits -= 1;
        self.stats.aborts += 1;
    }

    /// Drop window entries older than `pos` (no active transaction started
    /// before it). Key entries are retained in `last_writer` only while
    /// their writer remains in the window.
    pub fn prune_before(&mut self, pos: u64) {
        self.window.retain(|c| c.pos >= pos);
        let retained: std::collections::HashSet<u64> =
            self.window.iter().map(|c| c.pos).collect();
        self.last_writer.retain(|_, p| retained.contains(p) || *p >= pos);
        let _ = &retained;
    }

    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

impl Default for Certifier {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replimid_sql::mvcc::{RowId, WriteKind, WriteRecord};
    use replimid_sql::Value;

    fn ws(keys: &[i64]) -> Writeset {
        Writeset {
            entries: keys
                .iter()
                .map(|&k| WriteRecord {
                    database: "d".into(),
                    table: "t".into(),
                    row: RowId(k as u64),
                    kind: WriteKind::Update,
                    old: Some(vec![Value::Int(k), Value::Int(0)]),
                    new: Some(vec![Value::Int(k), Value::Int(1)]),
                    temp: false,
                })
                .collect(),
            counters: None,
        }
    }

    fn pk(_db: &str, _t: &str) -> Option<usize> {
        Some(0)
    }

    #[test]
    fn non_overlapping_both_commit() {
        let mut c = Certifier::new();
        let s = c.position();
        assert_eq!(c.certify(s, &ws(&[1]), pk), Verdict::Commit);
        assert_eq!(c.certify(s, &ws(&[2]), pk), Verdict::Commit);
    }

    #[test]
    fn first_committer_wins_on_overlap() {
        let mut c = Certifier::new();
        let s = c.position(); // both transactions started here
        assert_eq!(c.certify(s, &ws(&[1, 2]), pk), Verdict::Commit);
        assert_eq!(c.certify(s, &ws(&[2, 3]), pk), Verdict::Abort, "overlaps key 2");
        // A transaction that started after the first commit is fine.
        let s2 = c.position();
        assert_eq!(c.certify(s2, &ws(&[2]), pk), Verdict::Commit);
    }

    #[test]
    fn serial_rewrites_of_same_key_commit() {
        let mut c = Certifier::new();
        for _ in 0..10 {
            let s = c.position();
            assert_eq!(c.certify(s, &ws(&[7]), pk), Verdict::Commit);
        }
    }

    #[test]
    fn determinism_across_replicas() {
        let run = || {
            let mut c = Certifier::new();
            let mut verdicts = Vec::new();
            let s0 = c.position();
            verdicts.push(c.certify(s0, &ws(&[1, 2]), pk));
            verdicts.push(c.certify(s0, &ws(&[2]), pk));
            let s1 = c.position();
            verdicts.push(c.certify(s1, &ws(&[1]), pk));
            verdicts.push(c.certify(0, &ws(&[9]), pk));
            verdicts
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_track_checks_and_verdicts() {
        let mut c = Certifier::new();
        let s = c.position();
        assert_eq!(c.certify(s, &ws(&[1, 2]), pk), Verdict::Commit);
        assert_eq!(c.certify(s, &ws(&[2]), pk), Verdict::Abort);
        assert_eq!(c.certify(c.position(), &ws(&[3]), pk), Verdict::Commit);
        let st = c.stats();
        assert_eq!(st.checks, 3);
        assert_eq!(st.commits, 2);
        assert_eq!(st.aborts, 1);
        assert_eq!(st.keys_checked, 4);
        assert_eq!(st.max_window, 2);
    }

    #[test]
    fn batch_certification_matches_sequential() {
        let sets = [ws(&[1, 2]), ws(&[2, 3]), ws(&[4]), ws(&[2])];
        let starts = [0u64, 0, 0, 2];

        let mut seq = Certifier::new();
        let sequential: Vec<Verdict> = starts
            .iter()
            .zip(&sets)
            .map(|(&s, w)| seq.certify(s, w, pk))
            .collect();

        let mut bat = Certifier::new();
        let items: Vec<(u64, &Writeset)> =
            starts.iter().copied().zip(sets.iter()).collect();
        let batched = bat.certify_batch(&items, pk);

        assert_eq!(batched, sequential);
        // Conflict state carried across the batch: member 1 aborted against
        // member 0's in-batch commit, member 3 started after it and passed.
        assert_eq!(batched, vec![Verdict::Commit, Verdict::Abort, Verdict::Commit, Verdict::Commit]);
        assert_eq!(bat.position(), seq.position());
        assert_eq!(bat.stats(), seq.stats());
        assert_eq!(bat.window_len(), seq.window_len());
    }

    #[test]
    fn retract_releases_reserved_keys() {
        let mut c = Certifier::new();
        let s = c.position();
        assert_eq!(c.certify(s, &ws(&[1]), pk), Verdict::Commit);
        let reserved = c.position();
        // A concurrent writer of key 1 aborts against the reservation...
        assert_eq!(c.certify(s, &ws(&[1]), pk), Verdict::Abort);
        // ...until the cross-group decision retracts it.
        c.retract(reserved);
        assert_eq!(c.certify(s, &ws(&[1]), pk), Verdict::Commit);
        // Retracting a pos whose key was since re-certified keeps the newer
        // writer authoritative.
        c.retract(reserved);
        assert_eq!(c.certify(s, &ws(&[1]), pk), Verdict::Abort);
    }

    #[test]
    fn pruning_keeps_recent_conflicts() {
        let mut c = Certifier::new();
        let s = c.position();
        c.certify(s, &ws(&[1]), pk);
        let mid = c.position();
        c.certify(mid, &ws(&[2]), pk);
        c.prune_before(mid);
        // Conflict with the recent write must still be detected.
        assert_eq!(c.certify(mid, &ws(&[2]), pk), Verdict::Abort);
    }
}
