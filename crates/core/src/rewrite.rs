//! Middleware-side statement preparation for statement-based replication:
//! non-determinism analysis plus the rewriting of §4.3.2.

use replimid_sql::ast::Statement;
use replimid_sql::{analyze, rewrite_scalar_rand, rewrite_time_macros, TaintReport};

/// What to do with statements the analyzer flags (the three stances real
/// middleware takes; experiment E6 compares them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NondetPolicy {
    /// Rewrite what is rewritable (time macros, scalar RAND); reject the
    /// rest. The production-safe stance.
    RewriteAndReject,
    /// Rewrite what is rewritable and *broadcast the rest anyway* —
    /// demonstrates the divergence the paper warns about.
    RewriteBestEffort,
    /// Broadcast verbatim (a naive middleware). Maximum divergence.
    Ignore,
}

/// Result of preparing a write statement for broadcast.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub sql: String,
    /// The broadcast statement itself (`sql` is its rendering). Carried so
    /// the middleware can thread the admission-time parse through delivery
    /// and fan-out instead of re-parsing the text it just produced.
    pub stmt: Statement,
    pub report: TaintReport,
    pub substitutions: usize,
}

/// Why a statement was refused.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejected {
    pub reason: String,
}

/// Analyze and (per policy) rewrite a write statement before total-order
/// broadcast. `now_us` is the middleware's clock (all replicas will execute
/// the same literal); `rand_value` is drawn once by the middleware.
pub fn prepare_for_broadcast(
    stmt: &Statement,
    policy: NondetPolicy,
    now_us: i64,
    rand_value: f64,
) -> Result<Prepared, Rejected> {
    let report = analyze(stmt);
    if report.is_deterministic() {
        return Ok(Prepared { sql: stmt.to_string(), stmt: stmt.clone(), report, substitutions: 0 });
    }
    match policy {
        NondetPolicy::Ignore => {
            Ok(Prepared { sql: stmt.to_string(), stmt: stmt.clone(), report, substitutions: 0 })
        }
        NondetPolicy::RewriteBestEffort | NondetPolicy::RewriteAndReject => {
            let mut rewritten = stmt.clone();
            let mut n = 0;
            if report.uses_now {
                n += rewrite_time_macros(&mut rewritten, now_us);
            }
            if report.uses_rand_scalar {
                n += rewrite_scalar_rand(&mut rewritten, rand_value);
            }
            let residual = analyze(&rewritten);
            if !residual.is_deterministic() && policy == NondetPolicy::RewriteAndReject {
                let reason = if residual.uses_rand_per_row {
                    "per-row RAND() cannot be rewritten for statement replication".to_string()
                } else {
                    "SELECT ... LIMIT without ORDER BY yields different rows per replica"
                        .to_string()
                };
                return Err(Rejected { reason });
            }
            Ok(Prepared { sql: rewritten.to_string(), stmt: rewritten, report, substitutions: n })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replimid_sql::parse_statement;

    fn prep(sql: &str, policy: NondetPolicy) -> Result<Prepared, Rejected> {
        prepare_for_broadcast(&parse_statement(sql).unwrap(), policy, 42_000_000, 0.5)
    }

    #[test]
    fn deterministic_passes_untouched() {
        let p = prep("UPDATE t SET x = 1", NondetPolicy::RewriteAndReject).unwrap();
        assert_eq!(p.substitutions, 0);
        assert!(p.report.is_deterministic());
    }

    #[test]
    fn time_macro_rewritten() {
        let p = prep(
            "INSERT INTO t (ts) VALUES (now())",
            NondetPolicy::RewriteAndReject,
        )
        .unwrap();
        assert_eq!(p.substitutions, 1);
        assert!(p.sql.contains("TIMESTAMP 42000000"));
    }

    #[test]
    fn per_row_rand_rejected_or_passed_by_policy() {
        let sql = "UPDATE t SET x = rand()";
        assert!(prep(sql, NondetPolicy::RewriteAndReject).is_err());
        let p = prep(sql, NondetPolicy::RewriteBestEffort).unwrap();
        assert!(p.sql.contains("rand()"), "left in place: {}", p.sql);
        let p = prep(sql, NondetPolicy::Ignore).unwrap();
        assert!(p.report.uses_rand_per_row);
    }

    #[test]
    fn unordered_limit_rejected() {
        let sql = "UPDATE foo SET v = 1 WHERE id IN (SELECT id FROM foo WHERE v IS NULL LIMIT 5)";
        let err = prep(sql, NondetPolicy::RewriteAndReject).unwrap_err();
        assert!(err.reason.contains("LIMIT"));
        assert!(prep(sql, NondetPolicy::RewriteBestEffort).is_ok());
    }
}
