//! The Sequoia-style recovery log (§4.4.2): every totally-ordered write the
//! cluster executed — statement text (statement replication) or certified
//! writeset (writeset replication) — with per-backend checkpoints. A removed
//! or failed replica rejoins by replaying the log from its checkpoint; once
//! it is close to the head, the middleware enacts a global barrier for the
//! final hop.

use std::collections::HashMap;

use replimid_sql::mvcc::{RowId, WriteKind, WriteRecord};
use replimid_sql::{BinlogEntry, CommitTs, Lsn, Writeset};

use crate::msg::BackendId;

/// What one log entry carries.
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    Sql { default_db: Option<String>, sql: String },
    Ws(Writeset),
}

/// One logged write.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Global order position (1-based, dense).
    pub seq: u64,
    pub payload: LogPayload,
    /// Tables written (for parallel replay grouping).
    pub tables: Vec<String>,
}

impl LogEntry {
    pub fn is_writeset(&self) -> bool {
        matches!(self.payload, LogPayload::Ws(_))
    }
}

/// Replay mode for resynchronization (E9): the paper notes a serial replayer
/// "may never catch up if the workload is update-heavy".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    Serial,
    /// Entries touching disjoint tables replay concurrently; the cost of a
    /// batch is the longest per-table chain instead of the sum.
    Parallel,
}

/// Convert log entries into the `BinlogEntry` shape the database node's
/// apply path consumes. For SQL entries the writeset carries synthetic
/// zero-row records naming the written tables, so the parallel-apply cost
/// model can group them; the statements themselves drive execution.
pub fn to_binlog_entries(entries: &[LogEntry]) -> Vec<BinlogEntry> {
    entries
        .iter()
        .map(|e| match &e.payload {
            LogPayload::Sql { default_db, sql } => BinlogEntry {
                lsn: Lsn(e.seq),
                commit_ts: CommitTs(e.seq),
                default_db: default_db.clone(),
                statements: vec![sql.clone()],
                writeset: Writeset {
                    entries: e
                        .tables
                        .iter()
                        .map(|t| WriteRecord {
                            database: String::new(),
                            table: t.clone(),
                            row: RowId(0),
                            kind: WriteKind::Update,
                            old: None,
                            new: None,
                            temp: false,
                        })
                        .collect(),
                    counters: None,
                },
            },
            LogPayload::Ws(ws) => BinlogEntry {
                lsn: Lsn(e.seq),
                commit_ts: CommitTs(e.seq),
                default_db: None,
                statements: Vec::new(),
                writeset: ws.clone(),
            },
        })
        .collect()
}

/// Needs-full-resync signal from [`RecoveryLog::read_after`]: the rejoiner's
/// checkpoint fell below the truncation boundary, so the log can no longer
/// bring it up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogTruncated {
    /// The checkpoint the rejoiner asked to read after.
    pub checkpoint: u64,
    /// The truncation boundary it fell below.
    pub truncated: u64,
}

#[derive(Debug, Clone)]
pub struct RecoveryLog {
    entries: Vec<LogEntry>,
    next_seq: u64,
    /// Backend -> last entry seq known applied (checkpoint).
    checkpoints: HashMap<BackendId, u64>,
    /// Entries at or below this seq were purged.
    truncated: u64,
}

impl RecoveryLog {
    pub fn new() -> Self {
        RecoveryLog { entries: Vec::new(), next_seq: 1, checkpoints: HashMap::new(), truncated: 0 }
    }

    pub fn append_sql(&mut self, default_db: Option<String>, sql: String, tables: Vec<String>) -> u64 {
        self.push(LogPayload::Sql { default_db, sql }, tables)
    }

    pub fn append_ws(&mut self, ws: Writeset) -> u64 {
        let tables = ws.tables().into_iter().map(|(_, t)| t).collect();
        self.push(LogPayload::Ws(ws), tables)
    }

    fn push(&mut self, payload: LogPayload, tables: Vec<String>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(LogEntry { seq, payload, tables });
        seq
    }

    pub fn head(&self) -> u64 {
        self.next_seq - 1
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Void an entry: it was ordered and logged, but *no backend executed
    /// it* and the client was told so (it will retry as a new entry).
    /// Replaying it would double-apply the retried transaction. The slot
    /// stays (positions are dense); the payload becomes a no-op.
    pub fn void(&mut self, seq: u64) {
        if seq <= self.truncated {
            return;
        }
        let idx = (seq - self.truncated - 1) as usize;
        if let Some(e) = self.entries.get_mut(idx) {
            debug_assert_eq!(e.seq, seq);
            e.payload = LogPayload::Ws(Writeset::default());
            e.tables.clear();
        }
    }

    /// Record that `backend` has applied everything up to `seq` ("a
    /// checkpoint is inserted, pointing to the last update statement
    /// executed by the removed node").
    pub fn checkpoint(&mut self, backend: BackendId, seq: u64) {
        self.checkpoints.insert(backend, seq);
    }

    pub fn checkpoint_of(&self, backend: BackendId) -> Option<u64> {
        self.checkpoints.get(&backend).copied()
    }

    /// Entries after `seq`, up to `limit`. An empty tail means the caller
    /// is caught up. `Err(LogTruncated)` is the explicit needs-full-resync
    /// signal: the log was truncated past the checkpoint, the entries this
    /// replica needs are gone, and the only way back is a dump restore —
    /// callers must not treat it like an empty (or misaligned) slice.
    pub fn read_after(&self, seq: u64, limit: usize) -> Result<&[LogEntry], LogTruncated> {
        if seq < self.truncated {
            return Err(LogTruncated { checkpoint: seq, truncated: self.truncated });
        }
        let skip = (seq - self.truncated) as usize;
        let slice = &self.entries[skip.min(self.entries.len())..];
        Ok(&slice[..slice.len().min(limit)])
    }

    /// Purge entries at or below the minimum checkpoint across backends
    /// (safe: everyone has them). Returns the number purged.
    pub fn purge_to_min_checkpoint(&mut self) -> usize {
        let Some(&min) = self.checkpoints.values().min() else { return 0 };
        self.truncate(min)
    }

    /// Purge entries at or below `up_to` unconditionally (log-full pressure;
    /// may force rejoining replicas into full resync, §4.4.2).
    pub fn force_truncate(&mut self, up_to: u64) -> usize {
        self.truncate(up_to)
    }

    fn truncate(&mut self, up_to: u64) -> usize {
        // Clamp to the head: truncating "past the end" must not push
        // `truncated` beyond `next_seq - 1`, or the dense-position
        // invariant (entries[i].seq == truncated + 1 + i) breaks for every
        // later append — `void` would silently skip live entries and
        // `read_after` would demand full resync for seqs that exist.
        let up_to = up_to.min(self.head());
        if up_to <= self.truncated {
            return 0;
        }
        let n = ((up_to - self.truncated) as usize).min(self.entries.len());
        self.entries.drain(..n);
        self.truncated = up_to;
        n
    }

    /// Estimate the *virtual* replay cost of a batch: serial replay costs
    /// the sum of per-entry costs; parallel replay costs the heaviest
    /// per-table-group chain (entries sharing any table serialize).
    ///
    /// This is a *model* — a flat per-entry price with no IO — kept for the
    /// E9 what-if comparison of replay scheduling strategies. The MTTR
    /// numbers reported by the durability experiments (E20) do not use it:
    /// there, a restarted node pays the measured cost of loading its
    /// checkpoint, scanning and re-executing its WAL suffix, and the
    /// block-device time of both (`DbNode::on_restart`, `Stage::Replay`),
    /// and the middleware-side rejoin window is clocked from real
    /// recovery-log shipping.
    pub fn replay_cost_us(entries: &[LogEntry], mode: ReplayMode, per_entry_us: u64) -> u64 {
        match mode {
            ReplayMode::Serial => entries.len() as u64 * per_entry_us,
            ReplayMode::Parallel => {
                let mut group_of_table: HashMap<&str, usize> = HashMap::new();
                let mut group_cost: Vec<u64> = Vec::new();
                let mut parent: Vec<usize> = Vec::new();
                fn find(parent: &mut [usize], mut x: usize) -> usize {
                    while parent[x] != x {
                        parent[x] = parent[parent[x]];
                        x = parent[x];
                    }
                    x
                }
                for e in entries {
                    let mut target: Option<usize> = None;
                    for t in &e.tables {
                        if let Some(&g) = group_of_table.get(t.as_str()) {
                            let root = find(&mut parent, g);
                            match target {
                                None => target = Some(root),
                                Some(existing) => {
                                    let r2 = find(&mut parent, existing);
                                    if r2 != root {
                                        parent[root] = r2;
                                        group_cost[r2] += group_cost[root];
                                        group_cost[root] = 0;
                                    }
                                    target = Some(find(&mut parent, r2));
                                }
                            }
                        }
                    }
                    let g = match target {
                        Some(g) => find(&mut parent, g),
                        None => {
                            let g = parent.len();
                            parent.push(g);
                            group_cost.push(0);
                            g
                        }
                    };
                    for t in &e.tables {
                        group_of_table.insert(t.as_str(), g);
                    }
                    group_cost[g] += per_entry_us;
                }
                group_cost.into_iter().max().unwrap_or(0)
            }
        }
    }
}

impl Default for RecoveryLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(n: u64) -> RecoveryLog {
        let mut l = RecoveryLog::new();
        for i in 0..n {
            l.append_sql(
                Some("d".into()),
                format!("UPDATE t{} SET x = {i}", i % 3),
                vec![format!("t{}", i % 3)],
            );
        }
        l
    }

    #[test]
    fn append_and_read() {
        let l = log_with(5);
        assert_eq!(l.head(), 5);
        let tail = l.read_after(2, 10).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].seq, 3);
        let capped = l.read_after(0, 2).unwrap();
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn checkpoints_and_purge() {
        let mut l = log_with(10);
        l.checkpoint(BackendId(0), 4);
        l.checkpoint(BackendId(1), 7);
        assert_eq!(l.purge_to_min_checkpoint(), 4);
        assert!(l.read_after(2, 10).is_err(), "behind truncation point");
        assert_eq!(l.read_after(4, 100).unwrap().len(), 6);
        assert_eq!(l.checkpoint_of(BackendId(0)), Some(4));
    }

    #[test]
    fn parallel_replay_exploits_disjoint_tables() {
        // 9 entries over 3 disjoint tables: parallel replay is 3x faster.
        let l = log_with(9);
        let entries = l.read_after(0, 100).unwrap();
        let serial = RecoveryLog::replay_cost_us(entries, ReplayMode::Serial, 100);
        let parallel = RecoveryLog::replay_cost_us(entries, ReplayMode::Parallel, 100);
        assert_eq!(serial, 900);
        assert_eq!(parallel, 300);
    }

    #[test]
    fn parallel_replay_merges_overlapping_groups() {
        let mut l = RecoveryLog::new();
        l.append_sql(None, "a".into(), vec!["t1".into()]);
        l.append_sql(None, "b".into(), vec!["t2".into()]);
        l.append_sql(None, "c".into(), vec!["t1".into(), "t2".into()]); // joins both
        l.append_sql(None, "d".into(), vec!["t3".into()]);
        let entries = l.read_after(0, 100).unwrap();
        let parallel = RecoveryLog::replay_cost_us(entries, ReplayMode::Parallel, 10);
        // t1+t2 merge into one 30us chain; t3 alone is 10us.
        assert_eq!(parallel, 30);
    }

    /// Pins the exact truncation-boundary contract after `force_truncate`:
    /// `read_after(seq)` is `Err(LogTruncated)` (full resync) strictly
    /// below the truncation point, `Ok` starting at the first surviving
    /// entry at exactly `seq == truncated`, and `Ok(&[])` (caught up) at
    /// the head.
    #[test]
    fn force_truncate_boundary_semantics() {
        let mut l = log_with(10);
        assert_eq!(l.force_truncate(6), 6);

        // seq < truncated: the entries this replica still needs are gone.
        assert!(l.read_after(5, 100).is_err(), "below boundary: full resync");
        // seq == truncated: everything the caller needs survives — the
        // first entry handed back is exactly truncated + 1.
        let tail = l.read_after(6, 100).unwrap();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].seq, 7);
        // seq == head: caught up, empty tail (NOT a resync signal).
        assert_eq!(l.read_after(10, 100).unwrap().len(), 0);
        // Re-truncating at or below the boundary is a no-op.
        assert_eq!(l.force_truncate(6), 0);
        assert_eq!(l.force_truncate(3), 0);
    }

    /// Regression for the rejoin-after-truncation contract: a rejoiner's
    /// checkpoint relative to the boundary must yield, respectively, the
    /// explicit needs-full-resync error (strictly below), the surviving
    /// tail (exactly at), and a caught-up empty tail (at the head) — never
    /// a silently misaligned or empty slice.
    #[test]
    fn rejoiner_checkpoint_vs_truncation_boundary() {
        let mut l = log_with(10);
        l.force_truncate(6);

        // checkpoint < truncated: explicit full-resync signal, carrying
        // both positions so the caller can log/act on the gap.
        let err = l.read_after(3, 100).unwrap_err();
        assert_eq!(err, LogTruncated { checkpoint: 3, truncated: 6 });

        // checkpoint == truncated: the whole surviving tail, correctly
        // aligned (first entry is exactly truncated + 1).
        let tail = l.read_after(6, 100).unwrap();
        assert_eq!(tail.len(), 4);
        assert!(tail.iter().enumerate().all(|(i, e)| e.seq == 7 + i as u64), "misaligned tail");

        // checkpoint == head: caught up — an empty Ok, not a resync.
        assert_eq!(l.read_after(l.head(), 100), Ok(&[][..]));
    }

    #[test]
    fn void_at_truncation_boundary() {
        let mut l = log_with(10);
        l.force_truncate(6);
        // Voiding at or below the boundary is a no-op (entry purged).
        l.void(6);
        l.void(1);
        // The first surviving entry (seq 7) is index 0: voiding it must
        // hit that entry, not its neighbour.
        assert!(!l.read_after(6, 100).unwrap()[0].is_writeset());
        l.void(7);
        let tail = l.read_after(6, 100).unwrap();
        assert!(tail[0].is_writeset(), "seq 7 payload replaced with no-op writeset");
        assert!(tail[0].tables.is_empty());
        assert!(!tail[1].is_writeset(), "seq 8 untouched");
        // Voiding the head entry works too (last index).
        l.void(10);
        assert!(l.read_after(9, 100).unwrap()[0].is_writeset());
    }

    /// Regression for the over-truncation off-by-one: forcing the boundary
    /// past the head used to leave `truncated > head`, so entries appended
    /// afterwards were unreachable (`read_after` -> `None`) and unvoidable.
    #[test]
    fn force_truncate_past_head_clamps_to_head() {
        let mut l = log_with(5);
        assert_eq!(l.force_truncate(100), 5, "only 5 entries existed to purge");
        assert_eq!(l.head(), 5);
        // The boundary clamped to the head: reading at the head yields an
        // empty tail, not a resync.
        assert_eq!(l.read_after(5, 100).unwrap().len(), 0);
        let seq = l.append_sql(None, "UPDATE t0 SET x = 1".into(), vec!["t0".into()]);
        assert_eq!(seq, 6);
        // The fresh entry is dense with the boundary and fully reachable.
        let tail = l.read_after(5, 100).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 6);
        l.void(6);
        assert!(l.read_after(5, 100).unwrap()[0].is_writeset(), "fresh entry voidable");
    }

    #[test]
    fn binlog_conversion_preserves_payload_kind() {
        let mut l = RecoveryLog::new();
        l.append_sql(Some("d".into()), "UPDATE t SET x = 1".into(), vec!["t".into()]);
        l.append_ws(Writeset::default());
        let entries = to_binlog_entries(l.read_after(0, 10).unwrap());
        assert_eq!(entries[0].statements.len(), 1);
        assert_eq!(entries[0].writeset.tables(), vec![(String::new(), "t".to_string())]);
        assert!(entries[1].statements.is_empty());
    }
}
