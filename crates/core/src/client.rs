//! Closed-loop client actor: runs transactions from a [`TxSource`], measures
//! end-to-end latency and throughput, retries retryable aborts, and fails
//! over between middleware replicas on timeout — the behaviour §4.3.3 says
//! real drivers need and mostly lack.

use std::collections::BTreeMap;

use replimid_det::DetRng;
use replimid_simnet::{Actor, Ctx, NodeId};

use crate::backoff::{self, BackoffConfig};
use crate::metrics::Histogram;
use crate::msg::{ClientRequest, Msg, ReplyError, SessionId};
use crate::trace::{Stage, TraceId, TraceSink};

/// Produces the next transaction to run: a list of SQL statements. Include
/// BEGIN/COMMIT explicitly for multi-statement transactions; single
/// statements run in autocommit.
pub trait TxSource {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String>;
}

/// A fixed script, cycled forever (test helper).
pub struct ScriptSource {
    pub txs: Vec<Vec<String>>,
    cursor: usize,
}

impl ScriptSource {
    pub fn new(txs: Vec<Vec<String>>) -> Self {
        ScriptSource { txs, cursor: 0 }
    }
}

impl TxSource for ScriptSource {
    fn next_tx(&mut self, _rng: &mut DetRng) -> Vec<String> {
        let tx = self.txs[self.cursor % self.txs.len()].clone();
        self.cursor += 1;
        tx
    }
}

#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub session: SessionId,
    /// Middleware nodes, in failover preference order.
    pub middlewares: Vec<NodeId>,
    /// Closed-loop think time between transactions.
    pub think_time_us: u64,
    /// Per-statement timeout before failing over to the next middleware.
    pub request_timeout_us: u64,
    /// Retries for retryable aborts (certification/write conflicts).
    pub max_retries: u32,
    /// Stop issuing new transactions after this many completed (0 = run
    /// until the simulation ends).
    pub tx_limit: u64,
    /// Capped exponential backoff (with jitter) applied before abort
    /// retries and timeout failovers. Zero-delay retries synchronize every
    /// victim of a failure into a thundering herd against the survivors —
    /// the §4.3.4.2 load-induced-timeout spiral.
    pub backoff: BackoffConfig,
}

impl ClientConfig {
    pub fn new(session: SessionId, middlewares: Vec<NodeId>) -> Self {
        ClientConfig {
            session,
            middlewares,
            think_time_us: 1_000,
            request_timeout_us: 500_000,
            max_retries: 5,
            tx_limit: 0,
            backoff: BackoffConfig::client(),
        }
    }
}

/// Per-client measurements.
#[derive(Debug, Clone, Default)]
pub struct ClientMetrics {
    pub committed: u64,
    pub aborted: u64,
    pub failed: u64,
    pub timeouts: u64,
    pub failovers: u64,
    pub stmt_latency: Histogram,
    pub tx_latency: Histogram,
    /// Committed-transaction count per virtual second (throughput series).
    pub commits_per_sec: BTreeMap<u64, u64>,
    /// Errors per virtual second (degraded-mode visibility).
    pub errors_per_sec: BTreeMap<u64, u64>,
    /// The most recent error, for diagnostics.
    pub last_error: Option<String>,
    /// Client-side trace spans: one trace per transaction (spanning every
    /// retry attempt), tiled by ClientRtt / Retry / Backoff / Rollback.
    pub trace: TraceSink,
}

const TIMER_THINK: u64 = 1;
/// Backed-off retry of an aborted transaction.
const TIMER_RETRY: u64 = 2;
/// Backed-off failover resend after a request timeout.
const TIMER_RESEND: u64 = 3;
const TIMER_TIMEOUT_BASE: u64 = 100;

enum Phase {
    Idle,
    /// Executing `tx`, at statement `index`; statement sent at `sent_us`.
    Running { tx: Vec<String>, index: usize, started_us: u64, sent_us: u64, retries: u32 },
    /// Cleaning up a failed transaction before retrying or skipping.
    RollingBack { tx: Vec<String>, started_us: u64, retries: u32, retry: bool },
    /// Waiting out the retry backoff before re-attempting `tx`.
    BackingOff { tx: Vec<String>, retries: u32 },
    Done,
}

/// The client actor. The transaction source is boxed so the actor has a
/// concrete type (the simulator's inspection API downcasts to it).
pub struct Client {
    cfg: ClientConfig,
    source: Box<dyn TxSource>,
    phase: Phase,
    stmt_seq: u64,
    mw_index: usize,
    /// Consecutive timeouts on the current statement (backoff exponent).
    timeout_streak: u32,
    /// Statement the pending TIMER_RESEND belongs to (staleness guard).
    resend_seq: u64,
    /// Per-client transaction counter (low bits of the trace id).
    trace_ctr: u64,
    /// Trace id of the in-flight transaction (0 = none open).
    cur_trace: u64,
    pub metrics: ClientMetrics,
}

impl Client {
    pub fn new(cfg: ClientConfig, source: impl TxSource + 'static) -> Self {
        Client {
            cfg,
            source: Box::new(source),
            phase: Phase::Idle,
            stmt_seq: 0,
            mw_index: 0,
            timeout_streak: 0,
            resend_seq: 0,
            trace_ctr: 0,
            cur_trace: 0,
            metrics: ClientMetrics::default(),
        }
    }

    /// Attribute the window since this trace's previous event to `stage`.
    fn trace_span(&mut self, stage: Stage, now_us: u64) {
        if self.cur_trace != 0 {
            self.metrics.trace.span(TraceId(self.cur_trace), stage, now_us);
        }
    }

    /// Close the in-flight transaction's trace at `now_us`.
    fn trace_end(&mut self, now_us: u64) {
        if self.cur_trace != 0 {
            self.metrics.trace.end(TraceId(self.cur_trace), now_us);
            self.cur_trace = 0;
        }
    }

    fn middleware(&self) -> NodeId {
        self.cfg.middlewares[self.mw_index % self.cfg.middlewares.len()]
    }

    fn send_current(&mut self, ctx: &mut Ctx<'_, Msg>, sql: String) {
        let req = ClientRequest {
            session: self.cfg.session,
            stmt_seq: self.stmt_seq,
            trace: self.cur_trace,
            sql,
        };
        let mw = self.middleware();
        ctx.send(mw, Msg::Request(req));
        ctx.set_timer(self.cfg.request_timeout_us, TIMER_TIMEOUT_BASE + self.stmt_seq);
    }

    fn begin_tx(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.cfg.tx_limit > 0
            && self.metrics.committed + self.metrics.failed >= self.cfg.tx_limit
        {
            self.phase = Phase::Done;
            return;
        }
        let tx = self.source.next_tx(ctx.rng());
        if tx.is_empty() {
            self.phase = Phase::Done;
            return;
        }
        // One trace per transaction, spanning every retry attempt; ids are
        // globally unique and monotone per client (session in the high
        // bits), which the sink's bounded eviction relies on.
        self.trace_ctr += 1;
        self.cur_trace = (self.cfg.session.0 << 24) | self.trace_ctr;
        self.metrics.trace.begin(TraceId(self.cur_trace), ctx.now().micros());
        self.start_attempt(ctx, tx, 0);
    }

    fn start_attempt(&mut self, ctx: &mut Ctx<'_, Msg>, tx: Vec<String>, retries: u32) {
        let now = ctx.now().micros();
        self.stmt_seq += 1;
        let sql = tx[0].clone();
        self.phase = Phase::Running { tx, index: 0, started_us: now, sent_us: now, retries };
        self.send_current(ctx, sql);
    }

    fn tx_committed(&mut self, ctx: &mut Ctx<'_, Msg>, started_us: u64) {
        let now = ctx.now().micros();
        self.metrics.committed += 1;
        self.metrics.tx_latency.record(now - started_us);
        *self.metrics.commits_per_sec.entry(now / 1_000_000).or_insert(0) += 1;
        self.trace_end(now);
        self.phase = Phase::Idle;
        ctx.set_timer(self.cfg.think_time_us.max(1), TIMER_THINK);
    }

    fn tx_failed(&mut self, ctx: &mut Ctx<'_, Msg>, tx: Vec<String>, started_us: u64, retries: u32, retryable: bool) {
        let now = ctx.now().micros();
        *self.metrics.errors_per_sec.entry(now / 1_000_000).or_insert(0) += 1;
        if retryable && retries < self.cfg.max_retries {
            self.metrics.aborted += 1;
            // Roll back whatever transaction context remains, then retry.
            self.stmt_seq += 1;
            self.phase = Phase::RollingBack { tx, started_us, retries, retry: true };
            self.send_current(ctx, "ROLLBACK".into());
        } else {
            self.metrics.failed += 1;
            self.stmt_seq += 1;
            self.phase = Phase::RollingBack { tx, started_us, retries, retry: false };
            self.send_current(ctx, "ROLLBACK".into());
        }
    }

    fn on_reply(&mut self, ctx: &mut Ctx<'_, Msg>, stmt_seq: u64, result: Result<(), ReplyError>) {
        if stmt_seq != self.stmt_seq {
            return; // stale (timed-out request answered late)
        }
        self.timeout_streak = 0;
        let now = ctx.now().micros();
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Running { tx, index, started_us, sent_us, retries } => {
                self.metrics.stmt_latency.record(now - sent_us);
                self.trace_span(Stage::ClientRtt, now);
                match result {
                    Ok(()) => {
                        if index + 1 < tx.len() {
                            self.stmt_seq += 1;
                            let sql = tx[index + 1].clone();
                            self.phase = Phase::Running {
                                tx,
                                index: index + 1,
                                started_us,
                                sent_us: now,
                                retries,
                            };
                            self.send_current(ctx, sql);
                        } else {
                            self.tx_committed(ctx, started_us);
                        }
                    }
                    Err(e) => {
                        let retryable = e.is_retryable();
                        self.metrics.last_error = Some(format!("{e:?}"));
                        self.tx_failed(ctx, tx, started_us, retries, retryable);
                    }
                }
            }
            Phase::RollingBack { tx, started_us, retries, retry } => {
                // Rollback acknowledged (or failed — either way, move on).
                self.trace_span(Stage::Rollback, now);
                if retry {
                    // Back off before the retry: every victim of the same
                    // conflict/failure retrying at once re-creates it.
                    let delay = backoff::delay_us(self.cfg.backoff, retries, ctx.rng());
                    self.phase = Phase::BackingOff { tx, retries };
                    ctx.set_timer(delay, TIMER_RETRY);
                } else {
                    let _ = started_us;
                    self.trace_end(now);
                    self.phase = Phase::Idle;
                    ctx.set_timer(self.cfg.think_time_us.max(1), TIMER_THINK);
                }
            }
            other => self.phase = other,
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, stmt_seq: u64) {
        if stmt_seq != self.stmt_seq {
            return; // reply already arrived
        }
        // Only meaningful while a request is outstanding.
        let outstanding = matches!(self.phase, Phase::Running { .. } | Phase::RollingBack { .. });
        if !outstanding {
            return;
        }
        self.metrics.timeouts += 1;
        self.metrics.failovers += 1;
        // The wait on the (presumed dead) request counts as retry time.
        self.trace_span(Stage::Retry, ctx.now().micros());
        *self
            .metrics
            .errors_per_sec
            .entry(ctx.now().micros() / 1_000_000)
            .or_insert(0) += 1;
        // Fail over to the next middleware and retry the same statement —
        // the dedup key (session, stmt_seq) makes this safe. The resend is
        // delayed by a backed-off, jittered amount: every client that timed
        // out on the same dead node would otherwise arrive at the survivor
        // in lockstep, exactly when it is absorbing the failover load.
        self.mw_index += 1;
        let attempt = self.timeout_streak;
        self.timeout_streak += 1;
        self.resend_seq = self.stmt_seq;
        let delay = backoff::delay_us(self.cfg.backoff, attempt, ctx.rng());
        ctx.set_timer(delay, TIMER_RESEND);
    }

    fn fire_resend(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Stale if a reply arrived during the backoff.
        if self.resend_seq != self.stmt_seq {
            return;
        }
        let sql = match &self.phase {
            Phase::Running { tx, index, .. } => tx[*index].clone(),
            Phase::RollingBack { .. } => "ROLLBACK".into(),
            _ => return,
        };
        // The backed-off wait between timeout and resend is retry time too.
        self.trace_span(Stage::Retry, ctx.now().micros());
        if let Phase::Running { sent_us, .. } = &mut self.phase {
            *sent_us = ctx.now().micros();
        }
        self.send_current(ctx, sql);
    }
}

impl Actor<Msg> for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Stagger client start-up a little to avoid lockstep.
        let jitter = (self.cfg.session.0 % 97) * 100;
        ctx.set_timer(1_000 + jitter, TIMER_THINK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        if let Msg::Reply(reply) = msg {
            if reply.session != self.cfg.session {
                return;
            }
            let result = reply.result.map(|_| ());
            self.on_reply(ctx, reply.stmt_seq, result);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TIMER_THINK => {
                if matches!(self.phase, Phase::Idle) {
                    self.begin_tx(ctx);
                }
            }
            TIMER_RETRY => {
                if let Phase::BackingOff { .. } = self.phase {
                    let Phase::BackingOff { tx, retries } =
                        std::mem::replace(&mut self.phase, Phase::Idle)
                    else {
                        unreachable!()
                    };
                    self.trace_span(Stage::Backoff, ctx.now().micros());
                    self.start_attempt(ctx, tx, retries + 1);
                }
            }
            TIMER_RESEND => self.fire_resend(ctx),
            t if t >= TIMER_TIMEOUT_BASE => self.on_timeout(ctx, t - TIMER_TIMEOUT_BASE),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_source_cycles() {
        let mut s = ScriptSource::new(vec![vec!["SELECT 1".into()], vec!["SELECT 2".into()]]);
        let mut rng = DetRng::seed_from_u64(0);
        assert_eq!(s.next_tx(&mut rng)[0], "SELECT 1");
        assert_eq!(s.next_tx(&mut rng)[0], "SELECT 2");
        assert_eq!(s.next_tx(&mut rng)[0], "SELECT 1");
    }
}
