//! The database-node actor: one replica's RDBMS process, wrapping a
//! `replimid_sql::Engine`, with per-statement virtual CPU accounting, crash
//! semantics (sessions and in-flight transactions die; durable state and the
//! binlog survive), and the apply paths used by log shipping and recovery.

use std::collections::{HashMap, HashSet};

use replimid_simnet::{Actor, Ctx, DiskModel, NodeId};
use replimid_sql::engine::ConnId;
use replimid_sql::{
    BinlogEntry, CrashKind, DumpOptions, Engine, Lsn, Outcome, RecoveryReport, SqlError,
    WalStats, ADMIN_PASSWORD, ADMIN_USER,
};

use crate::msg::{BatchExecResult, CommitNote, DbOp, DbResp, Msg, ReplyBody};
use crate::trace::{Stage, TraceSink};

/// Virtual cost constants specific to node-level operations.
pub mod cost {
    /// Per-row cost of producing or loading a dump.
    pub const DUMP_ROW_US: u64 = 3;
    /// Fixed dump/restore overhead.
    pub const DUMP_BASE_US: u64 = 2_000;
    /// Checksum cost per call (scan-ish).
    pub const CHECKSUM_US: u64 = 500;
}

/// What a durable node's restart actually cost: the crash it recovered
/// from, the storage layer's account of the work, and the virtual time the
/// node spent unavailable to traffic while doing it (checkpoint load + WAL
/// replay + device IO). This is the *local* half of MTTR; the middleware's
/// rejoin window (`MwMetrics::recoveries`) is the other half.
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    pub kind: CrashKind,
    pub report: RecoveryReport,
    /// Virtual microseconds the restart consumed before serving again.
    pub local_us: u64,
    /// When (virtual µs) the restart began.
    pub at_us: u64,
}

/// One simulated database server.
pub struct DbNode {
    engine: Engine,
    default_db: Option<String>,
    /// Heterogeneity: CPU cost multiplier (×2 = the paper's RAID battery
    /// failure making a replica twice as slow, §4.1.3).
    pub speed_factor: f64,
    conns: HashMap<u64, ConnId>,
    /// Dedicated connection for applying shipped/replayed statements.
    repl_conn: Option<ConnId>,
    /// Last *foreign* LSN applied via ApplyBinlog (slave role).
    applied_lsn: Lsn,
    /// Highest ordered-statement sequence executed (total order / recovery
    /// replay idempotence). Durable metadata, like the binlog itself.
    ordered_applied: u64,
    /// Op ids already processed: the endpoint half of reliable transport.
    /// Flaky links can deliver a message twice (`LinkFault::dup_prob`);
    /// a real TCP stack dedups retransmits before the app sees them, so a
    /// duplicated operation must not execute twice. Volatile (lost on
    /// crash, like the connections the ops arrived on).
    seen_ops: HashSet<u64>,
    /// Per-operation service-time attribution (`Stage::DbService` spans,
    /// detached: db work is not tied to one client trace window).
    pub trace: TraceSink,
    /// Timing model for the durable devices (no-op when the engine runs
    /// without durability).
    pub disk: DiskModel,
    /// How the *next* crash mangles the durable image (consumed at restart).
    pending_crash: CrashKind,
    /// Report of the most recent durable restart, if any.
    pub last_recovery: Option<RecoveryInfo>,
}

impl DbNode {
    pub fn new(engine: Engine, default_db: Option<String>) -> Self {
        // A fresh replica is initialized from the same snapshot as its
        // peers, so everything already in its binlog (the schema load)
        // counts as applied.
        let applied_lsn = engine.binlog_head();
        let mut node = DbNode {
            engine,
            default_db,
            speed_factor: 1.0,
            conns: HashMap::new(),
            repl_conn: None,
            applied_lsn,
            ordered_applied: 0,
            seen_ops: HashSet::new(),
            trace: TraceSink::new(),
            disk: DiskModel::default(),
            pending_crash: CrashKind::Clean,
            last_recovery: None,
        };
        if node.engine.has_durability() {
            // The replica's initial disk image is a fsynced checkpoint of
            // the freshly loaded schema: provisioning happens before the
            // simulation starts, so the setup IO is free (not charged to
            // virtual time). Without this, a crash before the first
            // checkpoint could lose unsynced schema records and leave the
            // node unable to replay ordered statements against it.
            node.engine.wal_force_checkpoint(node.applied_lsn.0, 0);
            let _ = node.engine.take_io();
        }
        node
    }

    pub fn with_speed(mut self, factor: f64) -> Self {
        self.speed_factor = factor;
        self
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    pub fn applied_lsn(&self) -> Lsn {
        self.applied_lsn
    }

    /// Highest ordered-statement sequence this node has applied.
    pub fn ordered_applied(&self) -> u64 {
        self.ordered_applied
    }

    /// Arm the crash injector: the next `ControlOp::Crash` of this node
    /// mangles the durable image with `kind` semantics at restart time.
    /// (Nothing reads the devices while the node is down and in-flight
    /// sends to a crashed node are dropped, so applying the damage lazily
    /// at restart is observationally identical to applying it at the
    /// crash instant.)
    pub fn set_pending_crash(&mut self, kind: CrashKind) {
        self.pending_crash = kind;
    }

    /// Durable-device statistics, if this node runs with durability.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.engine.wal_stats()
    }

    fn conn_for(&mut self, token: u64) -> Result<ConnId, SqlError> {
        if let Some(&c) = self.conns.get(&token) {
            return Ok(c);
        }
        let c = self.engine.connect(ADMIN_USER, ADMIN_PASSWORD)?;
        if let Some(db) = &self.default_db {
            self.engine.execute(c, &format!("USE {db}"))?;
        }
        self.conns.insert(token, c);
        Ok(c)
    }

    fn repl_conn(&mut self) -> Result<ConnId, SqlError> {
        if let Some(c) = self.repl_conn {
            return Ok(c);
        }
        let c = self.engine.connect(ADMIN_USER, ADMIN_PASSWORD)?;
        self.repl_conn = Some(c);
        Ok(c)
    }

    fn scaled(&self, us: u64) -> u64 {
        (us as f64 * self.speed_factor) as u64
    }

    /// Durable-storage maintenance after each operation: mirror freshly
    /// committed binlog entries (and position advances) into the WAL, fsync
    /// on policy, checkpoint on policy — then convert the device work into
    /// virtual time on this node's queue. Runs *before* the response's
    /// service time is read, so the commit's durability cost is part of the
    /// latency the middleware observes (group commit, in effect, when one
    /// message carried several transactions). No-op without durability.
    fn wal_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.engine.has_durability() {
            return;
        }
        let m = self.engine.wal_maintain(self.applied_lsn.0, self.ordered_applied);
        let io = self.engine.take_io();
        let mut us = self.disk.io_us(io.bytes_written, io.bytes_read, io.fsyncs);
        if let Some(rows) = m.checkpoint_rows {
            // Snapshotting engine state costs the same CPU as a dump.
            us += cost::DUMP_BASE_US + rows * cost::DUMP_ROW_US;
        }
        if us > 0 {
            ctx.consume(self.scaled(us));
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, op: DbOp) -> Option<DbResp> {
        self.engine.set_clock(ctx.now().micros() as i64);
        match op {
            DbOp::Execute { op, conn, sql, seq } => {
                if let Some(sq) = seq {
                    if std::env::var("REPLIMID_DEBUG2").is_ok() {
                        eprintln!(
                            "[{} n{}] exec arrive seq {sq}",
                            ctx.now().micros(),
                            ctx.me.0
                        );
                    }
                    if sq <= self.ordered_applied && std::env::var("REPLIMID_DEBUG").is_ok() {
                        eprintln!(
                            "[{}] skip exec seq {sq} (ordered_applied={}) sql={sql}",
                            ctx.now().micros(),
                            self.ordered_applied
                        );
                    }
                    if sq <= self.ordered_applied {
                        // Already applied before a failure was declared:
                        // idempotent skip.
                        return Some(DbResp::ExecOk {
                            op,
                            body: ReplyBody::Ack,
                            commit: None,
                            tainted: false,
                        });
                    }
                }
                let resp = match self
                    .conn_for(conn)
                    .and_then(|c| self.engine.execute(c, &sql))
                {
                    Ok(res) => {
                        ctx.consume(self.scaled(res.cost.cpu_us));
                        let body = match res.outcome {
                            Outcome::Rows(rs) => ReplyBody::Rows(rs),
                            Outcome::Affected(n) => ReplyBody::Affected(n),
                            Outcome::Ack => ReplyBody::Ack,
                        };
                        let commit = res.commit.map(|c| CommitNote {
                            writeset: c.writeset,
                            lsn: self.engine.binlog_head(),
                        });
                        if let Some(sq) = seq {
                            self.ordered_applied = self.ordered_applied.max(sq);
                        }
                        DbResp::ExecOk { op, body, commit, tainted: res.tainted }
                    }
                    Err(err) => {
                        ctx.consume(self.scaled(replimid_sql::result::cost_model::STATEMENT_BASE_US));
                        DbResp::ExecErr { op, err }
                    }
                };
                Some(resp)
            }
            DbOp::ExecutePlan { op, conn, plan, seq } => {
                if let Some(sq) = seq {
                    if sq <= self.ordered_applied {
                        // Already applied before a failure was declared:
                        // idempotent skip (same contract as `Execute`).
                        return Some(DbResp::ExecOk {
                            op,
                            body: ReplyBody::Ack,
                            commit: None,
                            tainted: false,
                        });
                    }
                }
                let resp = match plan.bind().and_then(|stmt| {
                    let c = self.conn_for(conn)?;
                    self.engine.execute_prepared(c, &stmt)
                }) {
                    Ok(res) => {
                        ctx.consume(self.scaled(res.cost.cpu_us));
                        let body = match res.outcome {
                            Outcome::Rows(rs) => ReplyBody::Rows(rs),
                            Outcome::Affected(n) => ReplyBody::Affected(n),
                            Outcome::Ack => ReplyBody::Ack,
                        };
                        let commit = res.commit.map(|c| CommitNote {
                            writeset: c.writeset,
                            lsn: self.engine.binlog_head(),
                        });
                        if let Some(sq) = seq {
                            self.ordered_applied = self.ordered_applied.max(sq);
                        }
                        DbResp::ExecOk { op, body, commit, tainted: res.tainted }
                    }
                    Err(err) => {
                        // No SQL text arrived, so no parse happened even on
                        // the error path.
                        ctx.consume(self.scaled(
                            replimid_sql::result::cost_model::STATEMENT_BASE_US
                                - replimid_sql::result::cost_model::PARSE_US,
                        ));
                        DbResp::ExecErr { op, err }
                    }
                };
                Some(resp)
            }
            DbOp::ExecuteBatch { op, stmts } => {
                let mut results = Vec::with_capacity(stmts.len());
                // Per-statement table sets for the parallel-replay grouping:
                // statements writing disjoint tables apply concurrently, so
                // the batch is charged the longest dependent chain, not the
                // sum — this is where grouped apply beats N round-trips.
                let mut tables: Vec<Vec<(String, String)>> = Vec::new();
                let mut costs: Vec<u64> = Vec::new();
                for stmt in stmts {
                    if let Some(sq) = stmt.seq {
                        if sq <= self.ordered_applied {
                            // Same idempotence contract as `Execute`.
                            results.push(BatchExecResult::Ok {
                                body: ReplyBody::Ack,
                                commit: None,
                                tainted: false,
                            });
                            continue;
                        }
                    }
                    match self
                        .conn_for(stmt.conn)
                        .and_then(|c| self.engine.execute(c, &stmt.sql))
                    {
                        Ok(res) => {
                            let body = match res.outcome {
                                Outcome::Rows(rs) => ReplyBody::Rows(rs),
                                Outcome::Affected(n) => ReplyBody::Affected(n),
                                Outcome::Ack => ReplyBody::Ack,
                            };
                            let commit = res.commit.map(|c| CommitNote {
                                writeset: c.writeset,
                                lsn: self.engine.binlog_head(),
                            });
                            // Statements on one connection serialize even
                            // when their tables are disjoint: chain them
                            // with a synthetic per-connection key ("\0" is
                            // not a legal database name).
                            let mut tbls = commit
                                .as_ref()
                                .map(|c| c.writeset.tables())
                                .unwrap_or_default();
                            tbls.push(("\0conn".into(), stmt.conn.to_string()));
                            tables.push(tbls);
                            costs.push(res.cost.cpu_us);
                            if let Some(sq) = stmt.seq {
                                self.ordered_applied = self.ordered_applied.max(sq);
                            }
                            results.push(BatchExecResult::Ok { body, commit, tainted: res.tainted });
                        }
                        Err(err) => {
                            tables.push(vec![("\0conn".into(), stmt.conn.to_string())]);
                            costs.push(replimid_sql::result::cost_model::STATEMENT_BASE_US);
                            results.push(BatchExecResult::Err { err });
                        }
                    }
                }
                ctx.consume(self.scaled(grouped_chain_cost(&tables, &costs)));
                Some(DbResp::ExecBatchOut { op, results })
            }
            DbOp::ExecuteBatchPlan { op, stmts } => {
                // Prepared-statement twin of `ExecuteBatch`: same grouped
                // cost model, same idempotence, but each statement binds a
                // shipped template instead of being parsed.
                let mut results = Vec::with_capacity(stmts.len());
                let mut tables: Vec<Vec<(String, String)>> = Vec::new();
                let mut costs: Vec<u64> = Vec::new();
                for stmt in stmts {
                    if let Some(sq) = stmt.seq {
                        if sq <= self.ordered_applied {
                            results.push(BatchExecResult::Ok {
                                body: ReplyBody::Ack,
                                commit: None,
                                tainted: false,
                            });
                            continue;
                        }
                    }
                    match stmt.plan.bind().and_then(|bound| {
                        let c = self.conn_for(stmt.conn)?;
                        self.engine.execute_prepared(c, &bound)
                    }) {
                        Ok(res) => {
                            let body = match res.outcome {
                                Outcome::Rows(rs) => ReplyBody::Rows(rs),
                                Outcome::Affected(n) => ReplyBody::Affected(n),
                                Outcome::Ack => ReplyBody::Ack,
                            };
                            let commit = res.commit.map(|c| CommitNote {
                                writeset: c.writeset,
                                lsn: self.engine.binlog_head(),
                            });
                            let mut tbls = commit
                                .as_ref()
                                .map(|c| c.writeset.tables())
                                .unwrap_or_default();
                            tbls.push(("\0conn".into(), stmt.conn.to_string()));
                            tables.push(tbls);
                            costs.push(res.cost.cpu_us);
                            if let Some(sq) = stmt.seq {
                                self.ordered_applied = self.ordered_applied.max(sq);
                            }
                            results.push(BatchExecResult::Ok { body, commit, tainted: res.tainted });
                        }
                        Err(err) => {
                            tables.push(vec![("\0conn".into(), stmt.conn.to_string())]);
                            costs.push(
                                replimid_sql::result::cost_model::STATEMENT_BASE_US
                                    - replimid_sql::result::cost_model::PARSE_US,
                            );
                            results.push(BatchExecResult::Err { err });
                        }
                    }
                }
                ctx.consume(self.scaled(grouped_chain_cost(&tables, &costs)));
                Some(DbResp::ExecBatchOut { op, results })
            }
            DbOp::PrepareWriteset { op, conn } => {
                let resp = match self
                    .conn_for(conn)
                    .and_then(|c| self.engine.pending_writeset(c))
                {
                    Ok(ws) => DbResp::WritesetOut { op, ws: Box::new(ws) },
                    Err(err) => DbResp::ExecErr { op, err },
                };
                Some(resp)
            }
            DbOp::ApplyWriteset { op, ws } => {
                let resp = match self.engine.apply_writeset(&ws) {
                    Ok(res) => {
                        ctx.consume(self.scaled(res.cost.cpu_us.max(ws.len() as u64 * 4)));
                        DbResp::ApplyOk { op, applied_lsn: self.applied_lsn }
                    }
                    Err(err) => DbResp::ApplyErr { op, err },
                };
                Some(resp)
            }
            DbOp::ApplyWritesetBatch { op, parts } => {
                // Each part is an independent transaction; parts touching
                // disjoint tables apply concurrently, so the batch is
                // charged the longest dependent chain (same model as
                // `ExecuteBatch`), while outcomes stay per-part.
                let mut results = Vec::with_capacity(parts.len());
                let mut tables: Vec<Vec<(String, String)>> = Vec::with_capacity(parts.len());
                let mut costs: Vec<u64> = Vec::with_capacity(parts.len());
                for ws in &parts {
                    match self.engine.apply_writeset(ws) {
                        Ok(res) => {
                            tables.push(ws.tables());
                            costs.push(res.cost.cpu_us.max(ws.len() as u64 * 4));
                            results.push(None);
                        }
                        Err(err) => {
                            tables.push(ws.tables());
                            costs.push(ws.len() as u64 * 4);
                            results.push(Some(err));
                        }
                    }
                }
                ctx.consume(self.scaled(grouped_chain_cost(&tables, &costs)));
                Some(DbResp::ApplyBatchOut { op, results })
            }
            DbOp::ApplyBinlog { op, entries, use_writesets, parallel_apply, space } => {
                Some(self.apply_binlog(ctx, op, entries, use_writesets, parallel_apply, space))
            }
            DbOp::BinlogAfter { op, after } => {
                let head = self.engine.binlog_head();
                let resp = match self.engine.binlog_after(after) {
                    Some(entries) => DbResp::BinlogOut { op, entries, resync_needed: false, head },
                    None => DbResp::BinlogOut { op, entries: Vec::new(), resync_needed: true, head },
                };
                Some(resp)
            }
            DbOp::Dump { op, include_programs, include_principals } => {
                let dump = self.engine.dump(DumpOptions { include_principals, include_programs });
                ctx.consume(self.scaled(cost::DUMP_BASE_US + dump.row_count() * cost::DUMP_ROW_US));
                let head = self.engine.binlog_head().max(self.applied_lsn);
                Some(DbResp::DumpOut { op, dump: Box::new(dump), head })
            }
            DbOp::Restore { op, dump, baseline, ordered_baseline } => {
                let rows = dump.row_count();
                match self.engine.restore(&dump) {
                    Ok(()) => {
                        ctx.consume(self.scaled(cost::DUMP_BASE_US + rows * cost::DUMP_ROW_US));
                        self.applied_lsn = baseline;
                        self.ordered_applied = ordered_baseline;
                        if self.engine.has_durability() {
                            // A full resync replaces the in-memory state
                            // wholesale; checkpoint immediately so a stale
                            // on-disk image cannot resurrect pre-resync
                            // state at the next crash. (Device IO is
                            // charged by the wal_tick after this handler.)
                            self.engine
                                .wal_force_checkpoint(self.applied_lsn.0, self.ordered_applied);
                            ctx.consume(
                                self.scaled(cost::DUMP_BASE_US + rows * cost::DUMP_ROW_US),
                            );
                        }
                        Some(DbResp::RestoreOk { op })
                    }
                    Err(err) => Some(DbResp::ApplyErr { op, err }),
                }
            }
            DbOp::Checksum { op, full } => {
                ctx.consume(self.scaled(cost::CHECKSUM_US));
                let value = if full {
                    self.engine.checksum_full()
                } else {
                    self.engine.checksum_data()
                };
                Some(DbResp::ChecksumOut { op, value })
            }
            DbOp::Ping { op } => {
                // `head` is this node's own binlog position (meaningful when
                // it acts as a master); `applied_lsn` is the foreign LSN it
                // has applied (meaningful as a slave).
                Some(DbResp::Pong {
                    op,
                    applied_lsn: self.applied_lsn,
                    head: self.engine.binlog_head(),
                    ordered_applied: self.ordered_applied,
                })
            }
            DbOp::Disconnect { conn } => {
                if let Some(c) = self.conns.remove(&conn) {
                    self.engine.disconnect(c);
                }
                None
            }
        }
    }

    fn apply_binlog(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        op: u64,
        entries: Vec<BinlogEntry>,
        use_writesets: bool,
        parallel_apply: bool,
        space: crate::msg::ApplySpace,
    ) -> DbResp {
        use crate::msg::ApplySpace;
        let mark = |d: &mut Self, lsn: Lsn| match space {
            ApplySpace::None => {}
            ApplySpace::Binlog => d.applied_lsn = d.applied_lsn.max(lsn),
            ApplySpace::Ordered => d.ordered_applied = d.ordered_applied.max(lsn.0),
        };
        let skip = |d: &Self, lsn: Lsn| match space {
            ApplySpace::None => false,
            ApplySpace::Binlog => lsn <= d.applied_lsn,
            ApplySpace::Ordered => lsn.0 <= d.ordered_applied,
        };
        // Group entries by connected table components for the parallel
        // cost model (serial applies sum; parallel charges the longest
        // chain — §4.4.2's "extraction of parallelism from the log").
        let mut per_entry_cost: Vec<u64> = Vec::with_capacity(entries.len());
        let mut max_lsn = match space {
            ApplySpace::Binlog => self.applied_lsn,
            ApplySpace::Ordered => Lsn(self.ordered_applied),
            ApplySpace::None => Lsn(0),
        };
        for entry in &entries {
            if skip(self, entry.lsn) {
                continue; // already applied (overlapping batches / pre-crash races)
            }
            let mut entry_cost = 0u64;
            let result: Result<(), SqlError> = if use_writesets {
                self.engine.apply_writeset(&entry.writeset).map(|r| {
                    entry_cost += r.cost.cpu_us.max(entry.writeset.len() as u64 * 4);
                })
            } else {
                (|| {
                    let c = self.repl_conn()?;
                    if let Some(db) = &entry.default_db {
                        self.engine.execute(c, &format!("USE {db}"))?;
                    }
                    for stmt in &entry.statements {
                        let r = self.engine.execute(c, stmt)?;
                        entry_cost += r.cost.cpu_us;
                    }
                    Ok(())
                })()
            };
            if let Err(err) = result {
                ctx.consume(self.scaled(per_entry_cost.iter().sum::<u64>() + entry_cost));
                // Entries before the failure are durably applied.
                mark(self, max_lsn);
                return DbResp::ApplyErr { op, err };
            }
            per_entry_cost.push(entry_cost);
            max_lsn = max_lsn.max(entry.lsn);
            mark(self, max_lsn);
        }
        let total: u64 = per_entry_cost.iter().sum();
        let charged = if parallel_apply {
            parallel_cost(&entries, &per_entry_cost)
        } else {
            total
        };
        ctx.consume(self.scaled(charged));
        mark(self, max_lsn);
        DbResp::ApplyOk {
            op,
            applied_lsn: match space {
                crate::msg::ApplySpace::Binlog => self.applied_lsn,
                _ => max_lsn,
            },
        }
    }
}

/// Longest chain over connected components of entries sharing tables.
fn parallel_cost(entries: &[BinlogEntry], costs: &[u64]) -> u64 {
    let tables: Vec<Vec<(String, String)>> =
        entries.iter().map(|e| e.writeset.tables()).collect();
    grouped_chain_cost(&tables, costs)
}

/// Union-find core of the parallel cost model: items sharing any table key
/// fall into one group whose costs sum; disjoint groups run concurrently,
/// so the charge is the maximum group sum.
fn grouped_chain_cost(tables: &[Vec<(String, String)>], costs: &[u64]) -> u64 {
    use std::collections::HashMap as Map;
    let mut group_of_table: Map<(String, String), usize> = Map::new();
    let mut parent: Vec<usize> = Vec::new();
    let mut group_cost: Vec<u64> = Vec::new();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (item_tables, &cost) in tables.iter().zip(costs) {
        let mut target: Option<usize> = None;
        for t in item_tables {
            if let Some(&g) = group_of_table.get(t) {
                let root = find(&mut parent, g);
                match target {
                    None => target = Some(root),
                    Some(existing) => {
                        let r = find(&mut parent, existing);
                        if r != root {
                            parent[root] = r;
                            group_cost[r] += group_cost[root];
                            group_cost[root] = 0;
                            target = Some(r);
                        }
                    }
                }
            }
        }
        let g = match target {
            Some(g) => find(&mut parent, g),
            None => {
                parent.push(parent.len());
                group_cost.push(0);
                parent.len() - 1
            }
        };
        for t in item_tables {
            group_of_table.insert(t.clone(), g);
        }
        group_cost[g] += cost;
    }
    group_cost.into_iter().max().unwrap_or(0)
}

/// The op id carried by an operation, if it expects a response.
fn op_id(op: &DbOp) -> Option<u64> {
    match op {
        DbOp::Execute { op, .. }
        | DbOp::ExecutePlan { op, .. }
        | DbOp::ExecuteBatch { op, .. }
        | DbOp::ExecuteBatchPlan { op, .. }
        | DbOp::PrepareWriteset { op, .. }
        | DbOp::ApplyWriteset { op, .. }
        | DbOp::ApplyWritesetBatch { op, .. }
        | DbOp::ApplyBinlog { op, .. }
        | DbOp::BinlogAfter { op, .. }
        | DbOp::Dump { op, .. }
        | DbOp::Restore { op, .. }
        | DbOp::Checksum { op, .. }
        | DbOp::Ping { op } => Some(*op),
        DbOp::Disconnect { .. } => None,
    }
}

impl Actor<Msg> for DbNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        if let Msg::Db(op) = msg {
            // Transport-level dedup: a link-fault duplicate of an already-
            // processed op is dropped here, as TCP would.
            if let Some(id) = op_id(&op) {
                if !self.seen_ops.insert(id) {
                    return;
                }
            }
            let resp = self.handle(ctx, op);
            self.wal_tick(ctx);
            if let Some(resp) = resp {
                // The response leaves only after this operation's own
                // service time (accumulated via `consume`) has elapsed —
                // including the WAL append/fsync the operation caused.
                let service = ctx.backlog_us();
                let now = ctx.now().micros();
                self.trace.record_detached(Stage::DbService, now, now + service);
                ctx.send_after(from, Msg::DbR(resp), service);
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.engine.set_clock(ctx.now().micros() as i64);
        if self.engine.has_durability() {
            // Real crash semantics: the in-memory engine died with the
            // process, so EVERYTHING volatile is gone — sessions included;
            // the rebuilt engine has no connections to tear down. What
            // survives is exactly what the durable devices hold, mangled
            // by the injected crash kind, and the node pays for reading it
            // back (checkpoint load + WAL replay + device IO) in virtual
            // time before it can answer a single ping. That busy window is
            // the local, *measured* half of MTTR.
            self.conns.clear();
            self.repl_conn = None;
            self.seen_ops.clear();
            let kind = std::mem::replace(&mut self.pending_crash, CrashKind::Clean);
            let entropy = ctx.rng().next_u64();
            let report = self.engine.crash_recover(kind, entropy);
            self.applied_lsn = Lsn(report.applied_lsn);
            self.ordered_applied = report.ordered_applied;
            let io = self.engine.take_io();
            let mut cpu = report.replay_cpu_us;
            if report.checkpoint_loaded {
                cpu += cost::DUMP_BASE_US + report.checkpoint_rows * cost::DUMP_ROW_US;
            }
            let local_us =
                self.scaled(cpu + self.disk.io_us(io.bytes_written, io.bytes_read, io.fsyncs));
            ctx.consume(local_us);
            let now = ctx.now().micros();
            self.trace.record_detached(Stage::Replay, now, now + local_us);
            self.last_recovery = Some(RecoveryInfo { kind, report, local_us, at_us: now });
            return;
        }
        // Legacy (non-durable) crash semantics: every session is gone; open
        // transactions abort. Durable state (tables, binlog, counters)
        // survives by fiat — the engine itself is kept.
        // Disconnect in token order: map drain order varies per process,
        // and disconnect releases engine-side state (temp tables, open tx).
        let mut conns: Vec<(u64, ConnId)> = self.conns.drain().collect();
        conns.sort_by_key(|&(t, _)| t);
        for (_, c) in conns {
            self.engine.disconnect(c);
        }
        if let Some(c) = self.repl_conn.take() {
            self.engine.disconnect(c);
        }
        self.seen_ops.clear();
    }
}
