//! Cluster assembly and experiment driving: builds the simulated world
//! (database nodes, middleware replicas, clients, network), exposes fault
//! injection and management operations, and collects metrics — the harness
//! surface used by examples, integration tests, and the experiment binary.

use replimid_det::DetRng;
use replimid_simnet::{ControlOp, LinkFault, NetworkModel, NodeId, Sim, SimTime};
use replimid_sql::{Engine, EngineConfig, ADMIN_PASSWORD, ADMIN_USER};

use crate::client::{Client, ClientConfig, ClientMetrics, TxSource};
use crate::db_node::DbNode;
use crate::fleet::{FleetConfig, FleetMetrics, SessionFleet};
use crate::middleware::{Middleware, Mode, MwConfig, MwMetrics};
use crate::msg::{BackendId, Msg, SessionId};

/// Everything needed to assemble one cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    pub seed: u64,
    pub mw: MwConfig,
    /// Number of middleware replicas (peers in one GCS group).
    pub middlewares: usize,
    /// Backends per middleware replica.
    pub backends_per_mw: usize,
    /// Per-backend CPU speed factors (cycled if shorter than the backend
    /// count). 1.0 = nominal; 2.0 = twice as slow (§4.1.3 heterogeneity).
    pub backend_speed: Vec<f64>,
    /// Engine template; each backend gets a distinct RAND() seed.
    pub engine: EngineConfig,
    /// Schema/bootstrap script executed on every backend before start.
    pub schema: Vec<String>,
    /// Default database selected on every backend connection.
    pub default_db: String,
    pub net: NetworkModel,
}

impl ClusterConfig {
    pub fn new(mode: Mode, schema: Vec<String>, default_db: &str) -> Self {
        ClusterConfig {
            seed: 42,
            mw: MwConfig::defaults(mode),
            middlewares: 1,
            backends_per_mw: 3,
            backend_speed: vec![1.0],
            engine: EngineConfig::default(),
            schema,
            default_db: default_db.to_string(),
            net: NetworkModel::lan(),
        }
    }
}

/// The running cluster.
pub struct Cluster {
    pub sim: Sim<Msg>,
    /// Database nodes, grouped per middleware: `db_nodes[mw][backend]`.
    pub db_nodes: Vec<Vec<NodeId>>,
    pub mw_nodes: Vec<NodeId>,
    pub client_nodes: Vec<NodeId>,
    next_session: u64,
}

impl Cluster {
    /// Build the cluster: engines are created and schema-loaded *before*
    /// the simulation starts (time-zero state is identical on every
    /// backend, like replicas initialized from the same dump).
    pub fn build(cfg: ClusterConfig) -> Cluster {
        let mut cfg = cfg;
        // Fill in the certifier's schema knowledge from the schema script.
        if cfg.mw.pk_map.is_empty() {
            cfg.mw.pk_map = pk_map_from_schema(&cfg.schema);
        }
        if cfg.mw.default_db.is_none() {
            cfg.mw.default_db = Some(cfg.default_db.clone());
        }
        let mut sim: Sim<Msg> = Sim::new(cfg.net.clone(), cfg.seed);
        let total_backends = cfg.middlewares * cfg.backends_per_mw;

        // Node id layout: [db nodes 0..B) [middlewares B..B+M) [clients...].
        let mut db_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(cfg.middlewares);
        let mut engine_seed = cfg.seed.wrapping_mul(1000);
        for mwi in 0..cfg.middlewares {
            let mut group = Vec::with_capacity(cfg.backends_per_mw);
            for bi in 0..cfg.backends_per_mw {
                engine_seed += 1;
                let mut econf = cfg.engine.clone();
                econf.name = format!("mw{mwi}-db{bi}");
                econf.seed = engine_seed;
                let engine = build_engine(econf, &cfg.schema);
                let speed = cfg.backend_speed
                    [(mwi * cfg.backends_per_mw + bi) % cfg.backend_speed.len()];
                let node = sim.add_node(
                    DbNode::new(engine, Some(cfg.default_db.clone())).with_speed(speed),
                );
                group.push(node);
            }
            db_nodes.push(group);
        }
        let mw_ids: Vec<NodeId> =
            (0..cfg.middlewares).map(|i| NodeId(total_backends + i)).collect();
        let mut mw_nodes = Vec::with_capacity(cfg.middlewares);
        for (mwi, backends) in db_nodes.iter().enumerate() {
            let mw = Middleware::new(cfg.mw.clone(), mwi, mw_ids.clone(), backends.clone());
            let node = sim.add_node(mw);
            debug_assert_eq!(node, mw_ids[mwi]);
            mw_nodes.push(node);
        }
        Cluster { sim, db_nodes, mw_nodes, client_nodes: Vec::new(), next_session: 1 }
    }

    /// Add a closed-loop client driving transactions from `source`.
    /// `configure` tweaks the default client config.
    pub fn add_client<S: TxSource + 'static>(
        &mut self,
        source: S,
        configure: impl FnOnce(&mut ClientConfig),
    ) -> NodeId {
        let session = SessionId(self.next_session);
        self.next_session += 1;
        // Clients prefer a "home" middleware (spread round-robin) and fail
        // over to the others.
        let mut mws = self.mw_nodes.clone();
        let n = mws.len().max(1);
        mws.rotate_left((session.0 as usize) % n);
        let mut cc = ClientConfig::new(session, mws);
        configure(&mut cc);
        let node = self.sim.add_node(Client::new(cc, source));
        self.client_nodes.push(node);
        node
    }

    /// Reserve `n` consecutive session ids for an externally built driver
    /// (e.g. the open-loop driver in `replimid-workload`), so its sessions
    /// never collide with later `add_client`/`add_session_fleet` calls.
    pub fn alloc_sessions(&mut self, n: usize) -> u64 {
        let first = self.next_session;
        self.next_session += n as u64;
        first
    }

    /// Add a [`SessionFleet`]: one actor multiplexing `sessions` closed-loop
    /// sessions against middleware `mw` (the 10⁵–10⁶-session driver for the
    /// freshness experiments). `configure` tweaks the default fleet config;
    /// the session-id block (including headroom for churn) is reserved here
    /// so later `add_client` calls cannot collide.
    pub fn add_session_fleet(
        &mut self,
        mw: usize,
        sessions: usize,
        configure: impl FnOnce(&mut FleetConfig),
    ) -> NodeId {
        let first = self.next_session;
        // Reserve the live block plus generous churn headroom.
        self.next_session += sessions as u64 * 64;
        let mut fc = FleetConfig::new(first, sessions, self.mw_nodes[mw]);
        configure(&mut fc);
        self.sim.add_node(SessionFleet::new(fc))
    }

    pub fn run_for(&mut self, duration_us: u64) {
        let until = self.sim.now() + duration_us;
        self.sim.run_until(until);
    }

    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    // ------------------------------------------------------------------
    // Fault injection & management operations (§5.1)
    // ------------------------------------------------------------------

    pub fn crash_backend_at(&mut self, at: SimTime, mw: usize, backend: usize) {
        self.sim.schedule(at, ControlOp::Crash(self.db_nodes[mw][backend]));
    }

    /// Crash a backend at `at` with explicit durable-image semantics: how
    /// much of the WAL tail the crash destroys (`CrashKind::Clean` loses
    /// nothing, `LostTail` drops everything past the last fsync, `TornTail`
    /// additionally leaves a half-written record for the scanner to
    /// truncate). Only meaningful for backends built with
    /// `EngineConfig::durability`; without it the kind is ignored and this
    /// is exactly `crash_backend_at`.
    pub fn crash_backend_with(
        &mut self,
        at: SimTime,
        mw: usize,
        backend: usize,
        kind: replimid_sql::CrashKind,
    ) {
        let node = self.db_nodes[mw][backend];
        self.sim.with_actor::<DbNode, _>(node, |d| d.set_pending_crash(kind));
        self.sim.schedule(at, ControlOp::Crash(node));
    }

    /// The report of a backend's most recent durable restart (crash kind,
    /// replay counts, measured local recovery time), if it has had one.
    pub fn backend_recovery(
        &mut self,
        mw: usize,
        backend: usize,
    ) -> Option<crate::db_node::RecoveryInfo> {
        let node = self.db_nodes[mw][backend];
        self.sim.with_actor::<DbNode, _>(node, |d| d.last_recovery.clone())
    }

    /// A backend's ordered-statement apply position (durable metadata).
    pub fn backend_ordered_applied(&mut self, mw: usize, backend: usize) -> u64 {
        let node = self.db_nodes[mw][backend];
        self.sim.with_actor::<DbNode, _>(node, |d| d.ordered_applied())
    }

    /// Durable-device statistics for a backend (None without durability).
    pub fn backend_wal_stats(
        &mut self,
        mw: usize,
        backend: usize,
    ) -> Option<replimid_sql::WalStats> {
        let node = self.db_nodes[mw][backend];
        self.sim.with_actor::<DbNode, _>(node, |d| d.wal_stats())
    }

    pub fn restart_backend_at(&mut self, at: SimTime, mw: usize, backend: usize) {
        self.sim.schedule(at, ControlOp::Restart(self.db_nodes[mw][backend]));
    }

    pub fn crash_middleware_at(&mut self, at: SimTime, mw: usize) {
        self.sim.schedule(at, ControlOp::Crash(self.mw_nodes[mw]));
    }

    pub fn restart_middleware_at(&mut self, at: SimTime, mw: usize) {
        self.sim.schedule(at, ControlOp::Restart(self.mw_nodes[mw]));
    }

    /// Gray failure: stretch a backend's service times by `factor` starting
    /// at `at` (slow-but-alive; pings still answer, just late).
    pub fn brownout_backend_at(&mut self, at: SimTime, mw: usize, backend: usize, factor: f64) {
        self.sim.schedule(at, ControlOp::SetBrownout(self.db_nodes[mw][backend], factor));
    }

    pub fn clear_brownout_at(&mut self, at: SimTime, mw: usize, backend: usize) {
        self.sim.schedule(at, ControlOp::ClearBrownout(self.db_nodes[mw][backend]));
    }

    /// Gray failure: overlay loss/duplication/jitter on the middleware <->
    /// backend link (both directions) without severing it.
    pub fn flaky_link_at(&mut self, at: SimTime, mw: usize, backend: usize, fault: LinkFault) {
        self.sim.schedule(
            at,
            ControlOp::SetLinkFault(self.mw_nodes[mw], self.db_nodes[mw][backend], fault),
        );
    }

    pub fn clear_flaky_link_at(&mut self, at: SimTime, mw: usize, backend: usize) {
        self.sim.schedule(
            at,
            ControlOp::ClearLinkFault(self.mw_nodes[mw], self.db_nodes[mw][backend]),
        );
    }

    pub fn partition_at(&mut self, at: SimTime, groups: Vec<Vec<NodeId>>) {
        self.sim.schedule(at, ControlOp::Partition(groups));
    }

    pub fn heal_at(&mut self, at: SimTime) {
        self.sim.schedule(at, ControlOp::Heal);
    }

    /// Inject a management command to middleware `mw` at time `at`.
    pub fn admin_at(&mut self, at: SimTime, mw: usize, cmd: crate::msg::AdminCmd) {
        let node = self.mw_nodes[mw];
        self.sim.inject(at, node, Msg::Admin(cmd));
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    pub fn client_metrics(&mut self, node: NodeId) -> ClientMetrics {
        self.sim.with_actor::<Client, _>(node, |c| c.metrics.clone())
    }

    /// Sum of committed transactions across all clients.
    pub fn total_commits(&mut self) -> u64 {
        let nodes = self.client_nodes.clone();
        nodes
            .iter()
            .map(|&n| self.sim.with_actor::<Client, _>(n, |c| c.metrics.committed))
            .sum()
    }

    pub fn fleet_metrics(&mut self, node: NodeId) -> FleetMetrics {
        self.sim.with_actor::<SessionFleet, _>(node, |f| f.metrics.clone())
    }

    pub fn mw_metrics(&mut self, mw: usize) -> MwMetrics {
        let node = self.mw_nodes[mw];
        let now = self.sim.now().micros();
        self.sim.with_actor::<Middleware, _>(node, |m| {
            let mut snap = m.metrics.clone();
            snap.availability.finish(now);
            snap.degraded.finish(now);
            snap
        })
    }

    /// A database node's service-time trace sink (`Stage::DbService` spans
    /// recorded per operation).
    pub fn db_trace(&mut self, mw: usize, backend: usize) -> crate::trace::TraceSink {
        let node = self.db_nodes[mw][backend];
        self.sim.with_actor::<DbNode, _>(node, |d| d.trace.clone())
    }

    /// Data checksums of every backend (divergence detection across the
    /// whole cluster).
    pub fn backend_checksums(&mut self) -> Vec<Vec<u64>> {
        let groups = self.db_nodes.clone();
        groups
            .iter()
            .map(|group| {
                group
                    .iter()
                    .map(|&n| {
                        self.sim.with_actor::<DbNode, _>(n, |d| d.engine().checksum_data())
                    })
                    .collect()
            })
            .collect()
    }

    pub fn backend_full_checksums(&mut self) -> Vec<Vec<u64>> {
        let groups = self.db_nodes.clone();
        groups
            .iter()
            .map(|group| {
                group
                    .iter()
                    .map(|&n| {
                        self.sim.with_actor::<DbNode, _>(n, |d| d.engine().checksum_full())
                    })
                    .collect()
            })
            .collect()
    }

    /// Direct access to a backend's engine (test assertions).
    pub fn with_backend_engine<R>(
        &mut self,
        mw: usize,
        backend: usize,
        f: impl FnOnce(&mut Engine) -> R,
    ) -> R {
        let node = self.db_nodes[mw][backend];
        self.sim.with_actor::<DbNode, _>(node, |d| f(d.engine_mut()))
    }

    pub fn with_middleware<R>(&mut self, mw: usize, f: impl FnOnce(&mut Middleware) -> R) -> R {
        let node = self.mw_nodes[mw];
        self.sim.with_actor::<Middleware, _>(node, f)
    }

    /// Which backend index is currently the master (master-slave mode).
    pub fn master_of(&mut self, mw: usize) -> BackendId {
        self.with_middleware(mw, |m| m.master_backend())
    }
}

/// Build one backend engine and run the bootstrap script on it.
pub fn build_engine(config: EngineConfig, schema: &[String]) -> Engine {
    let mut engine = Engine::new(config);
    let conn = engine.connect(ADMIN_USER, ADMIN_PASSWORD).expect("admin login");
    for stmt in schema {
        engine
            .execute(conn, stmt)
            .unwrap_or_else(|e| panic!("schema statement failed: {stmt}: {e}"));
    }
    engine.disconnect(conn);
    engine
}

/// Derive (database, table) -> primary-key column index from a schema
/// script (the certifier's catalog knowledge).
pub fn pk_map_from_schema(
    schema: &[String],
) -> std::collections::HashMap<(String, String), usize> {
    use replimid_sql::ast::Statement;
    let mut map = std::collections::HashMap::new();
    let mut current_db: Option<String> = None;
    for sql in schema {
        let Ok(stmt) = replimid_sql::parse_statement(sql) else { continue };
        match stmt {
            Statement::UseDatabase { name } => current_db = Some(name),
            Statement::CreateTable { name, columns, temporary: false, .. } => {
                let db = name.database.clone().or_else(|| current_db.clone());
                if let (Some(db), Some(pk)) = (db, columns.iter().position(|c| c.primary_key)) {
                    map.insert((db, name.name.clone()), pk);
                }
            }
            _ => {}
        }
    }
    map
}

/// Deterministic RNG for workload setup outside actors.
pub fn seeded_rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pk_map_extraction() {
        let schema = vec![
            "CREATE DATABASE shop".to_string(),
            "USE shop".to_string(),
            "CREATE TABLE a (id INT PRIMARY KEY, v INT)".to_string(),
            "CREATE TABLE b (x INT, y INT)".to_string(),
            "CREATE TABLE other.c (k INT PRIMARY KEY)".to_string(),
        ];
        let map = pk_map_from_schema(&schema);
        assert_eq!(map.get(&("shop".into(), "a".into())), Some(&0));
        assert_eq!(map.get(&("shop".into(), "b".into())), None);
        assert_eq!(map.get(&("other".into(), "c".into())), Some(&0));
    }
}
