//! The replication middleware (the paper's subject): a JDBC-proxy-style
//! controller (Fig. 7) between clients and database replicas.
//!
//! One `Middleware` actor implements, selected by [`Mode`]:
//!
//! * **Multi-master statement replication** — write statements are rewritten
//!   (§4.3.2), totally ordered through the peer group (replimid-gcs), logged
//!   in the Sequoia-style recovery log (§4.4.2), and executed on every
//!   backend; reads are load-balanced locally (§3.2).
//! * **Multi-master writeset replication** — transactions execute on one
//!   delegate backend; at COMMIT the writeset is extracted, certified in
//!   total order (first-committer-wins), then committed at the delegate and
//!   applied everywhere else.
//! * **Master-slave** — writes to the master, reads on slaves, binlog
//!   shipping 1-safe (async, bounded loss window) or 2-safe (commit waits
//!   for the slave), hot-standby failover with promotion of the most
//!   caught-up slave (§2.2).
//! * **Partitioned statement replication** — Fig. 2: writes route to the
//!   owning partition's replica group; scans scatter.
//!
//! Middleware peers replicate session write state through the total order,
//! which is what makes client failover transparent (the Sequoia claim,
//! §4.3.3): a client that times out on one middleware retries the same
//! (session, stmt_seq) on a peer, which deduplicates.

use std::collections::{HashMap, HashSet, VecDeque};

use replimid_gcs::{
    Action as GAction, AdaptiveConfig, AdaptiveThreshold, GcsConfig, GroupMember,
    HeartbeatConfig, MemberId, ShardedMember,
};
use replimid_simnet::{Actor, Ctx, NodeId};
use replimid_sql::ast::Statement;
use replimid_sql::{parse_statement, Lsn, PlanCache, SqlError, Writeset};

use crate::balancer::{Balancer, Granularity, Policy};
use crate::certifier::{Certifier, CertifierStats, Verdict};
use crate::health::{HealthEvent, HealthTracker, QuarantineConfig};
use crate::metrics::{AvailabilityTracker, Counters, DegradedTracker, Histogram};
use crate::msg::{
    AdminCmd, ApplySpace, BackendId, ClientReply, ClientRequest, DbOp, DbResp, Msg, PlanExec,
    ReplEvent, ReplyBody, ReplyError, SessionId,
};
use crate::partition::{Partitioner, Placement, Route};
use crate::recovery::{RecoveryLog, ReplayMode};
use crate::rewrite::{prepare_for_broadcast, NondetPolicy};
use crate::session::SessionTable;
use crate::trace::{Stage, TraceId, TraceSink};

/// Timer tags (1 is reserved by the GCS tick).
const TIMER_PING: u64 = 2;
const TIMER_SHIP: u64 = 3;
/// Group-commit flush deadline (write-path batching).
const TIMER_BATCH: u64 = 4;
/// Op-timeout timers: TIMER_OP_BASE + op id.
const TIMER_OP_BASE: u64 = 1_000_000_000;
/// Freshness-wait deadlines: TIMER_FRESH_BASE + waiter id. A read parked
/// for a fresh-enough replica is released early by `drain_fresh_waiters`;
/// this timer is the wait-or-primary escape hatch.
const TIMER_FRESH_BASE: u64 = 500_000_000;
/// Retry timers for writeset applications blocked by a local uncommitted
/// transaction (released once that transaction certifies/aborts).
const TIMER_RETRY_BASE: u64 = 1_000;
const APPLY_RETRY_DELAY_US: u64 = 5_000;
const APPLY_RETRY_MAX: u32 = 100;
/// Partial replication: per-group sequencer heartbeat ticks, tagged
/// `SHARD_TICK_BASE + group` so `on_timer` can route each tick back to its
/// shard (the embedded `GroupMember`s all arm the same `TICK_TAG`).
const SHARD_TICK_BASE: u64 = 100;
/// Partial replication: per-group group-commit flush deadlines, tagged
/// `SHARD_BATCH_BASE + group`.
const SHARD_BATCH_BASE: u64 = 500;
/// Hard cap on table groups — keeps the shard timer-tag ranges disjoint
/// from each other and from the global tags above.
pub(crate) const MAX_GROUPS: usize = 64;

/// Replication strategy.
#[derive(Debug, Clone)]
pub enum Mode {
    MultiMasterStatement { nondet: NondetPolicy },
    MultiMasterWriteset,
    MasterSlave {
        /// 2-safe: the client's commit acknowledgment waits until every live
        /// slave applied the entry (§2.2). 1-safe otherwise.
        two_safe: bool,
        ship_interval_us: u64,
        use_writesets: bool,
        parallel_apply: bool,
        /// Allow reads on the master when slaves lag or for session
        /// consistency.
        read_master: bool,
    },
    PartitionedStatement {
        partitioner: Partitioner,
        /// Backend ids per partition (replica groups).
        groups: Vec<Vec<BackendId>>,
    },
}

/// Read routing (consistency knob, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Any healthy replica (GSI-flavoured: may read stale state in writeset
    /// or master-slave modes).
    Any,
    /// Read where you last wrote (session consistency / strong session SI).
    SessionSticky,
    /// Freshness-constrained routing (the Hihooi design): any replica whose
    /// applied position has reached the session's last committed write
    /// qualifies — reads spread across every fresh replica instead of
    /// pinning to one, and read-your-writes holds by construction. When no
    /// replica qualifies the read parks until the freshness vector catches
    /// up, bounded by `MwConfig::freshness_wait_max_us` (then
    /// wait-or-primary kicks in).
    Fresh,
    /// Freshness routing with a slack of `k` positions: a replica qualifies
    /// for a session's read when its applied position is within `k` of the
    /// session's last committed write (`fresh_pos >= stamp - k`). `k = 0`
    /// is exactly [`ReadPolicy::Fresh`]; larger `k` trades bounded
    /// read-your-writes violations for fewer parked reads — the continuous
    /// consistency/performance dial the paper's §3.3 taxonomy only samples
    /// at its endpoints.
    BoundedStaleness(u64),
    /// Monotonic reads (the §3.3 session guarantee [`ReadPolicy::Fresh`]
    /// does not give to read-only sessions): a session's reads never go
    /// backwards in replication time. The freshness stamp is the max of the
    /// session's last committed write AND the highest replica position any
    /// of its reads has already observed, so two successive reads with no
    /// write in between cannot land on a replica older than the first one.
    MonotonicReads,
}

impl ReadPolicy {
    /// How far behind a session's write stamp a replica may be and still
    /// serve its reads: `Some(0)` for [`ReadPolicy::Fresh`], `Some(k)` for
    /// [`ReadPolicy::BoundedStaleness`], `None` when freshness routing is
    /// off entirely.
    pub fn freshness_slack(&self) -> Option<u64> {
        match self {
            ReadPolicy::Fresh | ReadPolicy::MonotonicReads => Some(0),
            ReadPolicy::BoundedStaleness(k) => Some(*k),
            ReadPolicy::Any | ReadPolicy::SessionSticky => None,
        }
    }
}

#[derive(Debug, Clone)]
pub struct MwConfig {
    pub mode: Mode,
    pub granularity: Granularity,
    pub policy: Policy,
    pub read_policy: ReadPolicy,
    /// Backend failure detection: ping interval + silence timeout.
    pub heartbeat: HeartbeatConfig,
    /// Per-operation timeout (detects backend death mid-request).
    pub op_timeout_us: u64,
    pub gcs: GcsConfig,
    /// (database, table) -> primary key column index (the certifier's schema
    /// knowledge; built by the cluster builder).
    pub pk_map: HashMap<(String, String), usize>,
    pub recovery_batch: usize,
    pub replay_mode: ReplayMode,
    /// When a rejoining replica is within this many log entries of the head,
    /// the middleware enacts the global barrier for the final hop (§4.4.2).
    pub barrier_threshold: u64,
    /// Default database of client sessions, recorded with logged statements
    /// so recovery replay executes them in the right database.
    pub default_db: Option<String>,
    /// §4.3.4.3: refuse writes unless this middleware's group view holds a
    /// strict majority of the peers — the C-and-A-over-P stance. Off by
    /// default (a 2-replica middleware pair has no useful majority).
    pub require_majority: bool,
    /// Latency circuit breaker for gray failures: quarantine backends whose
    /// completed-op latency degrades far past their own baseline. Off
    /// (`None`) by default — quarantine filters read routing and delegate
    /// selection only; replication fan-out always includes quarantined
    /// backends so they stay consistent.
    pub quarantine: Option<QuarantineConfig>,
    /// Degrade to read-only instead of hard unavailability when fewer than
    /// floor(n/2)+1 backends are online: reads keep flowing off the
    /// survivors, writes fail fast with [`ReplyError::Degraded`]. Off by
    /// default.
    pub degrade_to_read_only: bool,
    /// Accrual-style adaptive silence thresholds for *backend* failure
    /// detection (§4.3.4.2): a browned-out backend whose pongs stretch
    /// raises its own timeout instead of being evicted. The fixed
    /// `heartbeat.timeout_us` should equal the adaptive floor. Off (`None`)
    /// by default.
    pub adaptive_detection: Option<AdaptiveConfig>,
    /// Group-commit batching on the totally-ordered write path: admitted
    /// writes accumulate until `batch_max` events are buffered (size flush)
    /// or `batch_deadline_us` elapses since the first buffered event
    /// (deadline flush), then ship as ONE total-order slot. 1 disables
    /// batching entirely — the write path is byte-identical to the
    /// unbatched implementation.
    pub batch_max: usize,
    /// Deadline for a partially-filled batch (virtual µs). Irrelevant when
    /// `batch_max <= 1`.
    pub batch_deadline_us: u64,
    /// [`ReadPolicy::Fresh`] only: how long a read may park waiting for a
    /// fresh-enough replica before the wait-or-primary fallback serves it
    /// (master-slave: the master, which is always fresh; multi-master: the
    /// most caught-up candidate). Bounds read latency under replication
    /// lag without giving up freshness in the common case.
    pub freshness_wait_max_us: u64,
    /// Middleware-side prepared-statement cache capacity (templates). With
    /// a non-zero capacity each client statement is normalized (literals →
    /// params), repeat shapes reuse the cached parse, and backends receive
    /// the parsed template + params (`DbOp::ExecutePlan`) instead of SQL
    /// text, skipping their parser. 0 disables the cache entirely — the
    /// statement path is byte-identical to the pre-cache implementation.
    pub plan_cache: usize,
    /// Partial replication (the scale-past-full-replication gap): a
    /// table-group placement map. Each group gets its own sequencer (an
    /// independent total-order stream with a dense per-group position
    /// space), its own certifier shard, its own recovery-log stream, and
    /// its own group-commit buffer; writesets fan out only to the backends
    /// hosting their group. Placement restricts *replication and read
    /// routing*, not schema — every backend keeps the full schema, only
    /// row flow is partial. `None`, and any trivial placement (one group
    /// hosted everywhere — normalized away at construction), is full
    /// replication: the single-sequencer path runs byte-for-byte.
    /// Writeset mode only.
    pub placement: Option<Placement>,
    /// Freshness-aware LPRF: fold each backend's replication lag
    /// (certified head − applied watermark) into its routing score as an
    /// additive penalty, so a replica drowning in unapplied writesets
    /// stops looking idle to the balancer. Off by default (scores are
    /// byte-identical when off).
    pub lag_aware_lprf: bool,
    /// Batch remote writeset applications into ONE `ApplyWritesetBatch`
    /// message per backend per group-commit flush (the writeset-mode
    /// sibling of the statement path's `ExecuteBatch` fan-out).
    /// Per-statement outcomes, retries, and watermark advancement are
    /// unchanged — only the transport is grouped. Off by default.
    pub ws_apply_batch: bool,
    /// Conflict-class cache capacity: written-table sets keyed by plan
    /// template identity, so repeated statement shapes skip the
    /// delivery-time AST walk. Effective with the plan cache on (shared
    /// templates give stable identities); 0 disables.
    pub class_cache: usize,
    /// Modeled CPU cost (virtual µs) of one conflict-class extraction
    /// walk, charged on every cache miss (or per delivery with the cache
    /// off). 0 = extraction is free, as in the pre-cache implementation.
    pub class_cost_us: u64,
    /// Backend indices that start in [`BackendState::Removed`] — spare
    /// capacity provisioned but not yet admitted, so an elasticity
    /// experiment can `AddBackend` one under live load. Empty by default.
    pub initial_removed: Vec<usize>,
}

impl MwConfig {
    pub fn defaults(mode: Mode) -> Self {
        MwConfig {
            mode,
            granularity: Granularity::Query,
            policy: Policy::Lprf,
            read_policy: ReadPolicy::Any,
            heartbeat: HeartbeatConfig::lan(),
            op_timeout_us: 1_000_000,
            gcs: GcsConfig::lan(replimid_gcs::OrderProtocol::FixedSequencer),
            pk_map: HashMap::new(),
            recovery_batch: 64,
            replay_mode: ReplayMode::Serial,
            barrier_threshold: 16,
            default_db: None,
            require_majority: false,
            quarantine: None,
            degrade_to_read_only: false,
            adaptive_detection: None,
            batch_max: 1,
            batch_deadline_us: 200,
            freshness_wait_max_us: 20_000,
            plan_cache: 0,
            placement: None,
            lag_aware_lprf: false,
            ws_apply_batch: false,
            class_cache: 0,
            class_cost_us: 0,
            initial_removed: Vec::new(),
        }
    }
}

/// Tracks the contiguous prefix of certified-writeset positions a backend
/// has durably applied. Certification windows must be sampled against this
/// watermark *when a transaction's BEGIN executes at its delegate* — using
/// the middleware's own certifier position instead opens a race where a
/// writeset certified-but-not-yet-applied is invisible to the new snapshot
/// yet excluded from its conflict window (a lost update).
#[derive(Debug, Clone, Default)]
pub(crate) struct Watermark {
    next: u64,
    done: std::collections::BTreeSet<u64>,
}

impl Watermark {
    pub(crate) fn new() -> Self {
        Watermark { next: 1, done: std::collections::BTreeSet::new() }
    }

    pub(crate) fn at(pos: u64) -> Self {
        Watermark { next: pos + 1, done: std::collections::BTreeSet::new() }
    }

    pub(crate) fn mark(&mut self, pos: u64) {
        if pos < self.next {
            return;
        }
        self.done.insert(pos);
        while self.done.remove(&self.next) {
            self.next += 1;
        }
    }

    pub(crate) fn value(&self) -> u64 {
        self.next - 1
    }
}

#[derive(Debug, Clone, PartialEq)]
enum BackendState {
    Online,
    Down,
    /// Replaying the recovery log from `next`.
    Recovering { next: u64, inflight: bool },
    /// Full resynchronization via dump + catch-up.
    Resyncing,
    /// Graceful removal in progress: out of routing and fan-out, but
    /// in-flight operations are allowed to complete before the backend
    /// parks in [`BackendState::Removed`].
    Draining,
    /// Administratively out of rotation: alive (it still pongs) but not
    /// serving, replicating, or rejoining. Only `AdminCmd::AddBackend`
    /// brings it back (via `Down` + the normal rejoin machinery).
    Removed,
}

#[derive(Debug)]
struct Backend {
    node: NodeId,
    state: BackendState,
    last_pong_us: u64,
    /// Recovery-log position this backend has acknowledged (multi-master).
    applied_seq: u64,
    /// Binlog LSN this backend reported applied (master-slave).
    applied_lsn: Lsn,
    /// Certified-writeset positions durably applied (writeset mode).
    cert_mark: Watermark,
    /// Virtual time the current drain started (0 = not draining).
    drain_started_us: u64,
}

impl Backend {
    fn online(&self) -> bool {
        self.state == BackendState::Online
    }
}

#[derive(Debug, Clone)]
enum CurrentKind {
    Read {
        #[allow(dead_code)] // recorded for diagnostics
        backend: BackendId,
    },
    /// Waiting for our published write to come back through the total order.
    OrderedWait,
    /// Waiting for the local exec fan-out to finish.
    ExecGroup {
        #[allow(dead_code)] // recorded for diagnostics
        group: u64,
    },
    /// Writeset mode: implicit BEGIN in flight, then `then_sql`.
    WsBegin { then_sql: Option<String>, then_autocommit: bool },
    /// Writeset mode: statement executing at the delegate.
    WsStmt { autocommit: bool },
    /// Writeset mode: PrepareWriteset in flight.
    WsPrepare,
    /// Writeset mode: certification published, waiting for delivery.
    WsCertifyWait,
    /// Writeset mode: delegate commit + remote applies in flight.
    WsFinalize { remaining: usize, failed: bool },
    /// Master-slave: write executing at the master.
    MsWrite {
        #[allow(dead_code)]
        backend: BackendId,
    },
    /// Master-slave 2-safe: waiting for slave appliance.
    MsTwoSafe { remaining: usize },
    /// Statement pinned to the session's temp-table backend.
    TempExec {
        #[allow(dead_code)]
        backend: BackendId,
    },
    /// Read parked in the freshness wait queue ([`ReadPolicy::Fresh`]):
    /// no replica had applied the session's last committed write yet.
    FreshWait,
}

#[derive(Debug, Clone)]
struct Current {
    stmt_seq: u64,
    kind: CurrentKind,
}

#[derive(Debug)]
struct Sess {
    client: Option<NodeId>,
    last_replied: u64,
    cached: Option<ClientReply>,
    current: Option<Current>,
    in_tx: bool,
    wrote_in_tx: bool,
    /// Sticky backend: connection-granularity choice, temp-table pin, or
    /// writeset delegate.
    sticky: Option<BackendId>,
    temp_pinned: bool,
    temp_tables: HashSet<String>,
    start_cert_pos: u64,
    /// Partial replication: per-group certification start positions,
    /// sampled from the delegate's per-group watermarks when its BEGIN
    /// executes (indexed by group; the whole vector is sampled at once).
    gstart: Vec<u64>,
    /// Partial replication: the session's per-group freshness stamps —
    /// the position of its last committed write in each group's certified
    /// stream (grown on demand; groups the session never wrote stay 0).
    gstamps: Vec<u64>,
    last_write_us: u64,
    last_write_backend: Option<BackendId>,
    /// The session's freshness stamp: position of its last acknowledged
    /// write in the mode's replication space (recovery-log seq for
    /// statement replication, certification position for writeset mode,
    /// master binlog LSN for master-slave). A replica is fresh for this
    /// session iff its applied position has reached the stamp.
    last_commit_stamp: u64,
    /// Highest replica position any of this session's reads has observed
    /// ([`ReadPolicy::MonotonicReads`] only): the monotonic-reads floor for
    /// its next read.
    last_read_pos: u64,
    /// Open per-statement admission records (was the middleware-global
    /// `request_started` map, which `SessionEnd` leaked): (stmt_seq, meta).
    /// At most a handful in flight per session; dropped with the session.
    open_reqs: Vec<(u64, ReqMeta)>,
    /// 2-safe commits: the master's reply body held until slaves confirm
    /// (was the middleware-global `two_safe_bodies` map — same leak, plus a
    /// stale body could be drained by a later commit of a reused session).
    two_safe_body: Option<ReplyBody>,
}

impl Sess {
    fn new(client: Option<NodeId>) -> Self {
        Sess {
            client,
            last_replied: 0,
            cached: None,
            current: None,
            in_tx: false,
            wrote_in_tx: false,
            sticky: None,
            temp_pinned: false,
            temp_tables: HashSet::new(),
            start_cert_pos: 0,
            gstart: Vec::new(),
            gstamps: Vec::new(),
            last_write_us: 0,
            last_write_backend: None,
            last_commit_stamp: 0,
            last_read_pos: 0,
            open_reqs: Vec::new(),
            two_safe_body: None,
        }
    }
}

/// Fan-out of one ordered statement to the local backends.
#[derive(Debug)]
struct ExecGroup {
    session: SessionId,
    stmt_seq: u64,
    remaining: usize,
    /// First result received (canonical; divergent results are counted).
    canonical: Option<Result<ReplyBody, SqlError>>,
    origin: bool,
    log_seq: u64,
}

#[derive(Debug, Clone)]
enum Pending {
    ClientExec { session: SessionId, backend: BackendId },
    GroupExec { group: u64, backend: BackendId },
    /// One grouped `ExecuteBatch` covering a whole flushed batch at one
    /// backend; `groups` are the per-statement exec groups, in batch order.
    GroupExecBatch { groups: Vec<u64>, backend: BackendId },
    Prepare { session: SessionId, backend: BackendId },
    DelegateCommit { session: SessionId, backend: BackendId, pos: u64 },
    ApplyWs { session: Option<SessionId>, backend: BackendId, ws: Writeset, attempts: u32, pos: u64 },
    /// Partial replication: the delegate's single COMMIT for a (possibly
    /// multi-group) transaction; `marks` are the (group, position) pairs
    /// its ack credits to the backend's per-group watermarks.
    PwCommit { session: SessionId, backend: BackendId, marks: Vec<(u32, u64)> },
    /// Partial replication: one group's writeset slice applied at one
    /// hosting backend.
    PwApply { session: Option<SessionId>, backend: BackendId, group: u32, ws: Writeset, attempts: u32, pos: u64 },
    /// One grouped `ApplyWritesetBatch` covering a flush's remote applies
    /// at one backend (`cfg.ws_apply_batch`).
    ApplyWsBatch { backend: BackendId, parts: Vec<WsBatchPart> },
    /// Partial resync: dump request at the donor for `target`; `heads` are
    /// the per-group log heads snapshotted when the dump was requested.
    PwResyncDump { target: BackendId, donor: BackendId, heads: Vec<u64> },
    /// Partial resync: restore at the rejoining backend.
    PwResyncRestore { backend: BackendId, heads: Vec<u64> },
    /// Partial recovery: one per-group catch-up replay batch.
    PwRecoveryBatch { backend: BackendId, group: usize, upto: u64 },
    Ping { backend: BackendId },
    ShipFetch,
    TwoSafeFetch { session: SessionId },
    ShipApply { backend: BackendId, session: Option<SessionId>, upto: Lsn },
    RecoveryBatch { backend: BackendId, upto: u64 },
    ResyncDumpReq { target: BackendId, log_pos: u64 },
    BackupDump { backend: BackendId, hot: bool, started_us: u64 },
    ResyncRestore { backend: BackendId, baseline: Lsn, log_pos: u64 },
    FireAndForget,
}

/// One remote apply inside a grouped `ApplyWritesetBatch` flush: enough to
/// resolve the per-statement outcome (origin countdown, watermark mark,
/// retry fallback) exactly as an individual `ApplyWs` reply would.
#[derive(Debug, Clone)]
struct WsBatchPart {
    session: Option<SessionId>,
    ws: Writeset,
    pos: u64,
}

/// Aggregated metrics exposed to the harness.
#[derive(Debug, Clone)]
pub struct MwMetrics {
    pub counters: Counters,
    pub read_latency: Histogram,
    pub write_latency: Histogram,
    pub availability: AvailabilityTracker,
    /// (virtual time µs, master binlog head − slave applied) samples.
    pub lag_samples: Vec<(u64, u64)>,
    /// Completed backups: (start µs, end µs, hot, rows).
    pub backups: Vec<(u64, u64, bool, u64)>,
    /// Times (µs) at which a backend was declared failed.
    pub failover_times: Vec<u64>,
    /// Completed rejoins: (backend index, recovery start µs, online µs).
    pub recoveries: Vec<(usize, u64, u64)>,
    /// Time spent in degraded read-only mode (write quorum lost).
    pub degraded: DegradedTracker,
    /// Quarantine transition log: (µs, backend index, event). Mirrors the
    /// per-backend [`HealthTracker`] logs for post-run assertions.
    pub quarantine_events: Vec<(u64, usize, HealthEvent)>,
    /// Per-request latency attribution: one trace window per admitted
    /// statement, spans recorded at each middleware stage transition.
    pub trace: TraceSink,
    /// Certification-stage statistics (writeset mode).
    pub certifier: crate::certifier::CertifierStats,
    /// Flushed group-commit batch sizes (events per flush). Empty when
    /// batching is off.
    pub batch_sizes: Histogram,
    /// Completed graceful drains: (backend index, start µs, removed µs).
    pub drains: Vec<(usize, u64, u64)>,
}

impl Default for MwMetrics {
    fn default() -> Self {
        MwMetrics {
            counters: Counters::default(),
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            availability: AvailabilityTracker::new(),
            lag_samples: Vec::new(),
            backups: Vec::new(),
            failover_times: Vec::new(),
            recoveries: Vec::new(),
            degraded: DegradedTracker::new(),
            quarantine_events: Vec::new(),
            trace: TraceSink::new(),
            certifier: crate::certifier::CertifierStats::default(),
            batch_sizes: Histogram::new(),
            drains: Vec::new(),
        }
    }
}

/// Admission-time record for one client statement: when it arrived, which
/// transaction trace it belongs to (0 = untraced), and whether it was
/// classified read-only. The classification is decided once, here, so the
/// reply path cannot mislabel the latency sample (reads that complete
/// through the generic write-side reply used to be counted as writes).
#[derive(Debug, Clone, Copy)]
struct ReqMeta {
    start_us: u64,
    trace: u64,
    is_read: bool,
}

/// The middleware actor.
pub struct Middleware {
    cfg: MwConfig,
    /// Peer middleware nodes (including self at `me_idx`).
    peers: Vec<NodeId>,
    #[allow(dead_code)]
    me_idx: usize,
    group: GroupMember<ReplEvent>,
    backends: Vec<Backend>,
    balancer: Balancer,
    /// Per-session state, keyed by `SessionId.0`. A flat slab + index
    /// rather than a `HashMap`: at 10⁵–10⁶ concurrent sessions the hot
    /// path is O(bytes) per session and iteration order is deterministic
    /// (std's RandomState is not) — see [`SessionTable`].
    sessions: SessionTable<Sess>,
    pending: HashMap<u64, Pending>,
    op_started: HashMap<u64, u64>,
    next_op: u64,
    exec_groups: HashMap<u64, ExecGroup>,
    next_group: u64,
    pub log: RecoveryLog,
    certifier: Certifier,
    /// Global barrier for a recovering replica's final catch-up hop.
    barrier_for: Option<BackendId>,
    buffered_deliveries: VecDeque<ReplEvent>,
    /// Master-slave state.
    master: BackendId,
    shipping_inflight: bool,
    pub metrics: MwMetrics,
    /// Reads parked for a fresh-enough replica ([`ReadPolicy::Fresh`]),
    /// keyed by waiter id: BTreeMap so drains run in park order
    /// (deterministic and FIFO-fair).
    fresh_waiters: std::collections::BTreeMap<u64, FreshWaiter>,
    next_fresh: u64,
    /// Writeset applications awaiting retry (timer tag -> work).
    apply_retries: HashMap<u64, (BackendId, Writeset, Option<SessionId>, u32, u64)>,
    next_retry: u64,
    /// Slaves with a shipping batch in flight (no overlapping batches).
    ship_busy: HashSet<BackendId>,
    /// Recovery start times (backend -> µs), for rejoin-duration metrics.
    recovery_started: HashMap<BackendId, u64>,
    /// Per-backend latency health (only consulted when cfg.quarantine set).
    health: Vec<HealthTracker>,
    /// How many health events per backend are already mirrored to metrics.
    health_seen: Vec<usize>,
    /// Backend -> op id of its in-flight half-open probe read.
    probe_op: HashMap<BackendId, u64>,
    /// Per-backend learned silence thresholds (cfg.adaptive_detection).
    pong_adaptive: Vec<AdaptiveThreshold>,
    /// Admitted write-path events awaiting a group-commit flush.
    publish_batch: Vec<ReplEvent>,
    /// A `TIMER_BATCH` deadline is outstanding.
    batch_timer_armed: bool,
    /// Prepared-statement templates keyed by normalized SQL (capacity
    /// `cfg.plan_cache`; disabled at 0).
    plan_cache: PlanCache,
    /// Partial-replication state (placement, per-group sequencers,
    /// certifier shards, log streams, cross-group transactions). `None` =
    /// full replication — every partial branch below is skipped.
    parts: Option<Partial>,
    /// Conflict-class cache: plan-template pointer -> (pinned template,
    /// written tables). Holding the `Arc` in the value pins the allocation
    /// so the pointer key can never be reused by a different template
    /// while the entry lives. Capacity `cfg.class_cache`; cleared
    /// wholesale when full.
    class_cache: HashMap<usize, (std::sync::Arc<Statement>, Vec<String>)>,
}

/// Why a group-commit batch left the buffer.
#[derive(Debug, Clone, Copy)]
enum FlushReason {
    Size,
    Deadline,
}

/// Partial-replication freshness demand for a parked read: the read's
/// group set plus the per-group positions a candidate must have applied.
type PartialNeeds = (Vec<usize>, Vec<(usize, u64)>);

/// Retry payload for a partial-mode apply:
/// (backend, group, writeset, origin session, attempt count, position).
type PwRetry = (BackendId, u32, Writeset, Option<SessionId>, u32, u64);

/// One read parked until a replica catches up to `stamp` (or the wait
/// deadline fires).
#[derive(Debug, Clone)]
struct FreshWaiter {
    session: SessionId,
    stmt_seq: u64,
    sql: String,
    /// Admission-time plan (plan cache on): dispatched as `ExecutePlan`
    /// when the read finally routes.
    plan: Option<PlanExec>,
    stamp: u64,
    ms_mode: bool,
    /// Partial replication: (read's group set, per-group freshness needs).
    /// `Some` means the waiter drains on the per-(backend, group)
    /// watermarks instead of the global freshness vector.
    pneeds: Option<PartialNeeds>,
}

/// Per-group replication state for partial replication. Group `g` has its
/// own sequencer (`member` shard `g`), certifier shard, recovery-log
/// stream, and group-commit buffer; backends advance one watermark per
/// group. All of it is deterministic from the per-group ordered streams,
/// so every middleware peer's copy agrees.
struct Partial {
    placement: Placement,
    member: ShardedMember<ReplEvent>,
    certs: Vec<Certifier>,
    logs: Vec<RecoveryLog>,
    /// `marks[backend][group]`: contiguous prefix of the group's certified
    /// positions the backend has durably applied.
    marks: Vec<Vec<Watermark>>,
    /// Per-group group-commit buffers and armed deadline-timer flags.
    batches: Vec<Vec<ReplEvent>>,
    batch_armed: Vec<bool>,
    /// In-flight cross-group transactions keyed by (session, stmt_seq):
    /// votes collected between the first involved delivery and the
    /// decision.
    xtx: HashMap<(u64, u64), XTx>,
    /// Shard deliveries buffered behind a recovery barrier (the partial
    /// sibling of `buffered_deliveries`).
    buffered: VecDeque<(usize, ReplEvent)>,
    /// Apply retries on the partial path (timer id -> work).
    retries: HashMap<u64, PwRetry>,
    /// Rejoining backends in per-group catch-up replay.
    resync: HashMap<usize, PwCatchup>,
}

impl Partial {
    fn groups(&self) -> usize {
        self.placement.groups()
    }

    /// Groups a backend hosts, ascending.
    fn hosted(&self, backend: usize) -> Vec<usize> {
        (0..self.groups())
            .filter(|&g| self.placement.hosts(g).contains(&backend))
            .collect()
    }

    /// Certification statistics summed across every shard (max_window is
    /// the max — windows are per-shard structures).
    fn agg_stats(&self) -> CertifierStats {
        let mut agg = CertifierStats::default();
        for c in &self.certs {
            let s = c.stats();
            agg.checks += s.checks;
            agg.commits += s.commits;
            agg.aborts += s.aborts;
            agg.keys_checked += s.keys_checked;
            agg.max_window = agg.max_window.max(s.max_window);
        }
        agg
    }
}

/// One multi-group transaction between its first prepare delivery and the
/// decision. The vote for each involved group is that group's local
/// certification verdict at delivery time; yes-votes reserve their keys
/// and log slot immediately (in delivery order — reserving at decision
/// time would order the log by decision arrival, which differs across
/// peers). The decision is the AND of the votes, reached when the last
/// involved stream delivers locally: deterministic at every peer with no
/// extra wire round.
struct XTx {
    groups: Vec<u32>,
    votes: Vec<Option<bool>>,
    /// Log/certifier position reserved per involved group (0 = no vote yet
    /// or a no-vote).
    pos: Vec<u64>,
    parts: Vec<Option<Writeset>>,
    /// Local arrival time of the first involved prepare (origin's Certify
    /// span start; first → decision is the CrossGroupWait window).
    first_us: u64,
}

/// Per-group catch-up replay after a partial-resync restore: replay each
/// hosted group's stream from the position the dump was consistent with.
struct PwCatchup {
    /// (group, position replayed through) per hosted group.
    next: Vec<(usize, u64)>,
    inflight: bool,
}

/// Grow a per-group vector to cover group `g` (zero-filled).
fn grow(v: &mut Vec<u64>, g: usize) {
    if v.len() <= g {
        v.resize(g + 1, 0);
    }
}

impl Middleware {
    pub fn new(cfg: MwConfig, me_idx: usize, peers: Vec<NodeId>, backends: Vec<NodeId>) -> Self {
        let members: Vec<MemberId> = (0..peers.len()).map(MemberId).collect();
        let group = GroupMember::new(MemberId(me_idx), members, cfg.gcs, 0);
        let n = backends.len();
        let balancer = Balancer::new(cfg.granularity, cfg.policy.clone(), n);
        let qcfg = cfg.quarantine.unwrap_or_default();
        let plan_cache = PlanCache::new(cfg.plan_cache);
        let pong_adaptive = match cfg.adaptive_detection {
            Some(ad) => (0..n).map(|_| AdaptiveThreshold::new(ad)).collect(),
            None => Vec::new(),
        };
        let mut placement = cfg.placement.clone();
        if let Some(p) = &placement {
            assert!(
                matches!(cfg.mode, Mode::MultiMasterWriteset),
                "partial replication requires writeset mode"
            );
            if let Err(e) = p.validate(n) {
                panic!("invalid placement: {e}");
            }
            assert!(p.groups() <= MAX_GROUPS, "at most {MAX_GROUPS} table groups");
            // A trivial placement (one group hosted by every backend) IS
            // full replication: normalize it away so the single-sequencer
            // path runs byte-for-byte.
            if p.is_trivial(n) {
                placement = None;
            }
        }
        let parts = placement.map(|placement| {
            let groups = placement.groups();
            let members: Vec<MemberId> = (0..peers.len()).map(MemberId).collect();
            Partial {
                member: ShardedMember::new(MemberId(me_idx), members, cfg.gcs, 0, groups),
                certs: (0..groups).map(|_| Certifier::new()).collect(),
                logs: (0..groups).map(|_| RecoveryLog::new()).collect(),
                marks: (0..n)
                    .map(|_| (0..groups).map(|_| Watermark::new()).collect())
                    .collect(),
                batches: (0..groups).map(|_| Vec::new()).collect(),
                batch_armed: vec![false; groups],
                xtx: HashMap::new(),
                buffered: VecDeque::new(),
                retries: HashMap::new(),
                resync: HashMap::new(),
                placement,
            }
        });
        let initial_removed = cfg.initial_removed.clone();
        Middleware {
            cfg,
            peers,
            me_idx,
            group,
            backends: backends
                .into_iter()
                .enumerate()
                .map(|(i, node)| Backend {
                    node,
                    state: if initial_removed.contains(&i) {
                        BackendState::Removed
                    } else {
                        BackendState::Online
                    },
                    last_pong_us: 0,
                    applied_seq: 0,
                    applied_lsn: Lsn(0),
                    cert_mark: Watermark::new(),
                    drain_started_us: 0,
                })
                .collect(),
            balancer,
            sessions: SessionTable::new(),
            pending: HashMap::new(),
            op_started: HashMap::new(),
            next_op: 1,
            exec_groups: HashMap::new(),
            next_group: 1,
            log: RecoveryLog::new(),
            certifier: Certifier::new(),
            barrier_for: None,
            buffered_deliveries: VecDeque::new(),
            master: BackendId(0),
            shipping_inflight: false,
            metrics: MwMetrics::default(),
            fresh_waiters: std::collections::BTreeMap::new(),
            next_fresh: 0,
            apply_retries: HashMap::new(),
            next_retry: 0,
            ship_busy: HashSet::new(),
            recovery_started: HashMap::new(),
            health: (0..n).map(|_| HealthTracker::new(qcfg)).collect(),
            health_seen: vec![0; n],
            probe_op: HashMap::new(),
            pong_adaptive,
            publish_batch: Vec::new(),
            batch_timer_armed: false,
            plan_cache,
            parts,
            class_cache: HashMap::new(),
        }
    }

    // ------------------------------------------------------------------
    // Small helpers
    // ------------------------------------------------------------------

    fn healthy(&self) -> Vec<BackendId> {
        self.backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.online())
            .map(|(i, _)| BackendId(i))
            .collect()
    }

    fn slaves(&self) -> Vec<BackendId> {
        self.healthy().into_iter().filter(|&b| b != self.master).collect()
    }

    fn is_quarantined(&self, b: BackendId) -> bool {
        self.cfg.quarantine.is_some() && self.health[b.0].quarantined()
    }

    /// Online AND not quarantined — the read-routing health bar.
    fn read_ok(&self, b: BackendId) -> bool {
        self.backends[b.0].online() && !self.is_quarantined(b)
    }

    /// Candidates for read routing / delegate selection: quarantined
    /// backends are filtered out, but if that would empty the set we fall
    /// back to every online backend — a slow answer beats no answer.
    fn filter_quarantined(&self, candidates: Vec<BackendId>) -> Vec<BackendId> {
        if self.cfg.quarantine.is_none() {
            return candidates;
        }
        let filtered: Vec<BackendId> =
            candidates.iter().copied().filter(|&b| !self.is_quarantined(b)).collect();
        if filtered.is_empty() {
            candidates
        } else {
            filtered
        }
    }

    fn routable(&self) -> Vec<BackendId> {
        self.filter_quarantined(self.healthy())
    }

    /// Writes are allowed unless degraded read-only mode is on and the
    /// online-backend count fell below the write-quorum floor.
    fn write_quorum_ok(&self) -> bool {
        !self.cfg.degrade_to_read_only
            || self.healthy().len() > self.backends.len() / 2
    }

    /// Re-evaluate degraded read-only mode after a backend state change.
    fn update_degraded(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.cfg.degrade_to_read_only {
            return;
        }
        let now = ctx.now().micros();
        if self.healthy().len() < self.backends.len() / 2 + 1 {
            self.metrics.degraded.enter(now);
        } else {
            self.metrics.degraded.exit(now);
        }
    }

    /// Mirror new health-tracker events into the metrics log.
    fn sync_health_events(&mut self, i: usize) {
        let events = self.health[i].events();
        for &(t, ev) in &events[self.health_seen[i]..] {
            self.metrics.quarantine_events.push((t, i, ev));
        }
        self.health_seen[i] = self.health[i].events().len();
    }

    /// Score a completed op's latency against the backend's health EWMA;
    /// probe completions resolve the half-open state instead.
    fn score_completion(&mut self, now: u64, backend: BackendId, started: Option<u64>, op: u64) {
        if self.cfg.quarantine.is_none() {
            return;
        }
        let Some(t0) = started else { return };
        let lat = now.saturating_sub(t0);
        if self.probe_op.get(&backend) == Some(&op) {
            self.probe_op.remove(&backend);
            if self.health[backend.0].probe_completed(now, lat) {
                self.metrics.counters.quarantine_rejoins += 1;
            }
        } else if self.health[backend.0].on_completion(now, lat) {
            self.metrics.counters.quarantine_trips += 1;
        }
        self.sync_health_events(backend.0);
    }

    fn alloc_op(&mut self, ctx: &mut Ctx<'_, Msg>, p: Pending) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        self.pending.insert(op, p);
        self.op_started.insert(op, ctx.now().micros());
        ctx.set_timer(self.cfg.op_timeout_us, TIMER_OP_BASE + op);
        op
    }

    fn send_db(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId, p: Pending, mk: impl FnOnce(u64) -> DbOp) -> u64 {
        let node = self.backends[backend.0].node;
        let op = self.alloc_op(ctx, p);
        self.balancer.dispatched(backend);
        ctx.send(node, Msg::Db(mk(op)));
        op
    }

    fn run_gcs_actions(&mut self, ctx: &mut Ctx<'_, Msg>, actions: Vec<GAction<ReplEvent>>) {
        for a in actions {
            match a {
                GAction::Send { to, msg } => {
                    let node = self.peers[to.0];
                    ctx.send(node, Msg::Group(msg));
                }
                GAction::SetTimer { delay_us, tag } => ctx.set_timer(delay_us, tag),
                GAction::Deliver { payload, .. } => self.on_delivery(ctx, payload),
                GAction::ViewInstalled { .. } | GAction::Suspected { .. } => {}
            }
        }
    }

    fn publish(&mut self, ctx: &mut Ctx<'_, Msg>, ev: ReplEvent) {
        let actions = self.group.publish(ev, ctx.now().micros());
        self.run_gcs_actions(ctx, actions);
    }

    /// Route a write-path event through group-commit batching: buffer it
    /// until the batch fills (`batch_max`) or the flush deadline fires.
    /// With batching off (`batch_max <= 1`) this IS [`publish`] — no
    /// buffering, no timers, no extra RNG draws — so the unbatched write
    /// path reproduces the pre-batching implementation bit for bit.
    fn publish_write(&mut self, ctx: &mut Ctx<'_, Msg>, ev: ReplEvent) {
        if self.cfg.batch_max <= 1 {
            self.publish(ctx, ev);
            return;
        }
        self.publish_batch.push(ev);
        if self.publish_batch.len() >= self.cfg.batch_max {
            self.flush_batch(ctx, FlushReason::Size);
        } else if !self.batch_timer_armed {
            self.batch_timer_armed = true;
            ctx.set_timer(self.cfg.batch_deadline_us, TIMER_BATCH);
        }
    }

    /// Ship the buffered batch as ONE total-order slot. The buffered
    /// admission order is preserved verbatim inside the `Batch` event.
    fn flush_batch(&mut self, ctx: &mut Ctx<'_, Msg>, reason: FlushReason) {
        if self.publish_batch.is_empty() {
            return;
        }
        self.batch_timer_armed = false;
        let events = std::mem::take(&mut self.publish_batch);
        self.metrics.batch_sizes.record(events.len() as u64);
        match reason {
            FlushReason::Size => self.metrics.counters.batch_flush_size += 1,
            FlushReason::Deadline => self.metrics.counters.batch_flush_deadline += 1,
        }
        // Each origin statement waited in the buffer from its admission-side
        // publish until now: that window is `BatchWait`, so E17-style tiling
        // still reconciles (the `Order` span then covers flush → delivery).
        let now = ctx.now().micros();
        for ev in &events {
            let (session, stmt_seq) = match ev {
                ReplEvent::Statement { session, stmt_seq, .. } => (*session, *stmt_seq),
                ReplEvent::Certify { session, stmt_seq, .. } => (*session, *stmt_seq),
                _ => continue,
            };
            self.mw_span(session, stmt_seq, Stage::BatchWait, now);
        }
        self.publish(ctx, ReplEvent::Batch { events });
    }

    // ------------------------------------------------------------------
    // Partial replication: per-group sequencer plumbing
    // ------------------------------------------------------------------

    fn run_shard_actions(&mut self, ctx: &mut Ctx<'_, Msg>, actions: Vec<(usize, GAction<ReplEvent>)>) {
        for (g, a) in actions {
            match a {
                GAction::Send { to, msg } => {
                    let node = self.peers[to.0];
                    ctx.send(node, Msg::GroupShard { group: g as u32, msg });
                }
                // The only timer a shard arms is its heartbeat tick: re-tag
                // it into the shard range so `on_timer` can route it back.
                GAction::SetTimer { delay_us, .. } => {
                    ctx.set_timer(delay_us, SHARD_TICK_BASE + g as u64)
                }
                GAction::Deliver { payload, .. } => self.on_shard_delivery(ctx, g, payload),
                GAction::ViewInstalled { .. } | GAction::Suspected { .. } => {}
            }
        }
    }

    fn shard_publish(&mut self, ctx: &mut Ctx<'_, Msg>, g: usize, ev: ReplEvent) {
        let now = ctx.now().micros();
        let actions = self.parts.as_mut().expect("partial mode").member.publish(g, ev, now);
        self.run_shard_actions(ctx, actions);
    }

    /// Group-commit batching per group stream (mirrors [`publish_write`]:
    /// `batch_max <= 1` publishes directly, byte-identical to unbatched).
    fn shard_publish_write(&mut self, ctx: &mut Ctx<'_, Msg>, g: usize, ev: ReplEvent) {
        if self.cfg.batch_max <= 1 {
            self.shard_publish(ctx, g, ev);
            return;
        }
        let full = {
            let parts = self.parts.as_mut().unwrap();
            parts.batches[g].push(ev);
            parts.batches[g].len() >= self.cfg.batch_max
        };
        if full {
            self.flush_shard_batch(ctx, g, FlushReason::Size);
        } else {
            let parts = self.parts.as_mut().unwrap();
            if !parts.batch_armed[g] {
                parts.batch_armed[g] = true;
                ctx.set_timer(self.cfg.batch_deadline_us, SHARD_BATCH_BASE + g as u64);
            }
        }
    }

    fn flush_shard_batch(&mut self, ctx: &mut Ctx<'_, Msg>, g: usize, reason: FlushReason) {
        let events = {
            let parts = self.parts.as_mut().unwrap();
            parts.batch_armed[g] = false;
            if parts.batches[g].is_empty() {
                return;
            }
            std::mem::take(&mut parts.batches[g])
        };
        self.metrics.batch_sizes.record(events.len() as u64);
        match reason {
            FlushReason::Size => self.metrics.counters.batch_flush_size += 1,
            FlushReason::Deadline => self.metrics.counters.batch_flush_deadline += 1,
        }
        let now = ctx.now().micros();
        for ev in &events {
            let (session, stmt_seq) = match ev {
                ReplEvent::Certify { session, stmt_seq, .. }
                | ReplEvent::XPrepare { session, stmt_seq, .. } => (*session, *stmt_seq),
                _ => continue,
            };
            self.mw_span(session, stmt_seq, Stage::BatchWait, now);
        }
        self.shard_publish(ctx, g, ReplEvent::Batch { events });
    }

    /// A shard's totally-ordered event arrives. The recovery barrier
    /// buffers shard deliveries exactly as it buffers global ones.
    fn on_shard_delivery(&mut self, ctx: &mut Ctx<'_, Msg>, g: usize, ev: ReplEvent) {
        if self.barrier_for.is_some() {
            self.parts.as_mut().unwrap().buffered.push_back((g, ev));
            return;
        }
        self.apply_shard_delivery(ctx, g, ev);
    }

    fn apply_shard_delivery(&mut self, ctx: &mut Ctx<'_, Msg>, g: usize, ev: ReplEvent) {
        match ev {
            ReplEvent::Certify { session, stmt_seq, start_pos, ws } => {
                self.deliver_shard_certify(ctx, g, session, stmt_seq, start_pos, ws)
            }
            ReplEvent::XPrepare { session, stmt_seq, groups, start_pos, part } => {
                self.deliver_xprepare(ctx, g, session, stmt_seq, groups, start_pos, part)
            }
            ReplEvent::SessionEnd { session } => self.end_session(session),
            ReplEvent::Batch { events } => {
                for ev in events {
                    self.apply_shard_delivery(ctx, g, ev);
                }
            }
            ReplEvent::Statement { .. } => {}
        }
    }

    /// Drain shard deliveries buffered behind a (now released) barrier.
    fn drain_shard_buffer(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            if self.barrier_for.is_some() {
                break;
            }
            let Some((g, ev)) = self.parts.as_mut().and_then(|p| p.buffered.pop_front()) else {
                break;
            };
            self.apply_shard_delivery(ctx, g, ev);
        }
    }

    /// §4.3.4.3: are we on the majority side of a (possible) partition?
    fn have_quorum(&self) -> bool {
        if !self.cfg.require_majority {
            return true;
        }
        self.group.view().members.len() * 2 > self.peers.len()
    }

    fn session(&mut self, id: SessionId, client: Option<NodeId>) -> &mut Sess {
        let s = self.sessions.get_or_insert_with(id.0, || Sess::new(client));
        if client.is_some() {
            s.client = client.or(s.client);
        }
        s
    }

    fn reply(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, stmt_seq: u64, result: Result<ReplyBody, ReplyError>) {
        let now = ctx.now().micros();
        let ok = !matches!(result, Err(ReplyError::Unavailable(_)));
        self.metrics.availability.record(now, ok);
        self.close_request(session, stmt_seq, now);
        let Some(s) = self.sessions.get_mut(session.0) else { return };
        let reply = ClientReply { session, stmt_seq, result };
        s.last_replied = stmt_seq;
        s.cached = Some(reply.clone());
        s.current = None;
        if let Some(client) = s.client {
            ctx.send(client, Msg::Reply(reply));
        }
    }

    /// Read-path replies do not feed the availability tracker: reads served
    /// from surviving slaves would mask a write outage, and the paper's
    /// downtime stories (the ticket broker) are about update availability.
    fn reply_read(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, stmt_seq: u64, result: Result<ReplyBody, ReplyError>) {
        let now = ctx.now().micros();
        self.close_request(session, stmt_seq, now);
        let Some(s) = self.sessions.get_mut(session.0) else { return };
        let reply = ClientReply { session, stmt_seq, result };
        s.last_replied = stmt_seq;
        s.cached = Some(reply.clone());
        s.current = None;
        if let Some(client) = s.client {
            ctx.send(client, Msg::Reply(reply));
        }
    }

    /// Close a statement's latency window: route the sample to the
    /// histogram matching the admission-time classification and seal its
    /// trace (any time since the last recorded span falls into
    /// `Stage::Other`, the instrumentation-coverage gauge).
    fn close_request(&mut self, session: SessionId, stmt_seq: u64, now: u64) {
        let meta = self.sessions.get_mut(session.0).and_then(|s| {
            let pos = s.open_reqs.iter().position(|(seq, _)| *seq == stmt_seq)?;
            Some(s.open_reqs.swap_remove(pos).1)
        });
        if let Some(meta) = meta {
            let lat = now.saturating_sub(meta.start_us);
            if meta.is_read {
                self.metrics.read_latency.record(lat);
            } else {
                self.metrics.write_latency.record(lat);
            }
            if meta.trace != 0 {
                self.metrics.trace.end(TraceId(meta.trace), now);
            }
        }
        if self.cfg.lag_aware_lprf {
            self.metrics.counters.lprf_lag_demotions = self.balancer.lag_demotions;
        }
    }

    /// Record a stage span on the trace window of an in-flight statement.
    /// No-op for untraced or already-closed requests, so call sites never
    /// need to guard.
    fn mw_span(&mut self, session: SessionId, stmt_seq: u64, stage: Stage, now_us: u64) {
        let trace = self
            .sessions
            .get(session.0)
            .and_then(|s| s.open_reqs.iter().find(|(seq, _)| *seq == stmt_seq))
            .map(|(_, m)| m.trace);
        if let Some(trace) = trace {
            if trace != 0 {
                self.metrics.trace.span(TraceId(trace), stage, now_us);
            }
        }
    }

    // ------------------------------------------------------------------
    // Client request entry point
    // ------------------------------------------------------------------

    fn on_request(&mut self, ctx: &mut Ctx<'_, Msg>, client: NodeId, req: ClientRequest) {
        let now = ctx.now().micros();
        {
            let s = self.session(req.session, Some(client));
            // Retry deduplication (§4.3.3 transparent failover).
            if req.stmt_seq <= s.last_replied {
                if let Some(cached) = s.cached.clone() {
                    if cached.stmt_seq == req.stmt_seq {
                        if let Some(c) = s.client {
                            ctx.send(c, Msg::Reply(cached));
                        }
                        return;
                    }
                }
                return;
            }
            if let Some(cur) = &s.current {
                if cur.stmt_seq == req.stmt_seq {
                    return; // already in flight (duplicate retry)
                }
            }
        }
        self.sessions
            .get_mut(req.session.0)
            .unwrap()
            .open_reqs
            .push((req.stmt_seq, ReqMeta { start_us: now, trace: req.trace, is_read: false }));
        if req.trace != 0 {
            self.metrics.trace.begin(TraceId(req.trace), now);
        }

        // Parse exactly once, at admission. Every later consumer — read/
        // write classification, temp-table detection, rewrite, delivery-time
        // table extraction, backend fan-out — works from this parse (or the
        // cached template behind it); the statement text is never parsed
        // again anywhere in the pipeline.
        let (stmt, plan) = match self.admit_statement(&req.sql) {
            Ok(pair) => pair,
            Err(e) => {
                self.reply(ctx, req.session, req.stmt_seq, Err(ReplyError::Sql(e)));
                return;
            }
        };

        // Read/write classification happens once, here: BEGIN/COMMIT/
        // ROLLBACK shape snapshots and stay on the write side even though
        // they are "read-only" to the parser.
        let is_read = stmt.is_read_only()
            && !matches!(stmt, Statement::Begin { .. } | Statement::Commit | Statement::Rollback);
        if let Some((_, meta)) = self
            .sessions
            .get_mut(req.session.0)
            .and_then(|s| s.open_reqs.iter_mut().find(|(seq, _)| *seq == req.stmt_seq))
        {
            meta.is_read = is_read;
        }
        // Admission is instantaneous in virtual time (the middleware has no
        // modeled ingress queue); the zero-width span marks the stage so
        // per-stage counts still show every admitted statement.
        self.mw_span(req.session, req.stmt_seq, Stage::Admission, now);

        // Temp-table handling is mode-independent: once a session touches a
        // temporary table it is pinned to one backend, and those statements
        // are never replicated (§4.1.4).
        if self.handle_temp_stickiness(ctx, &req, &stmt) {
            return;
        }

        match &self.cfg.mode {
            Mode::MultiMasterStatement { nondet } => {
                let nondet = *nondet;
                self.mm_statement_request(ctx, req, stmt, plan, nondet)
            }
            Mode::MultiMasterWriteset => self.mm_writeset_request(ctx, req, stmt, plan),
            Mode::MasterSlave { .. } => self.ms_request(ctx, req, stmt, plan),
            Mode::PartitionedStatement { .. } => self.part_request(ctx, req, stmt),
        }
    }

    /// The single parse of the statement pipeline. With the plan cache off
    /// (`cfg.plan_cache == 0`) this is exactly the pre-cache
    /// `parse_statement` call. With it on, the text is normalized (literals
    /// → params) and the template parse is reused across every statement
    /// sharing the shape; the returned [`PlanExec`] is the wire form
    /// backends execute without parsing.
    fn admit_statement(&mut self, sql: &str) -> Result<(Statement, Option<PlanExec>), SqlError> {
        if self.cfg.plan_cache == 0 {
            return Ok((parse_statement(sql)?, None));
        }
        let Some(nf) = replimid_sql::normalize(sql) else {
            // Uncacheable shape (non-DML, or a raw `?` in the client text).
            self.metrics.counters.plan_cache_misses += 1;
            return Ok((parse_statement(sql)?, None));
        };
        if let Some(cached) = self.plan_cache.get(&nf.key) {
            self.metrics.counters.plan_cache_hits += 1;
            let stmt = replimid_sql::bind(&cached.template, &nf.params)?;
            return Ok((stmt, Some(PlanExec { template: cached.template, params: nf.params })));
        }
        self.metrics.counters.plan_cache_misses += 1;
        match replimid_sql::CachedPlan::prepare(&nf) {
            Ok(cached) => {
                let stmt = replimid_sql::bind(&cached.template, &nf.params)?;
                let plan = PlanExec { template: cached.template.clone(), params: nf.params };
                self.plan_cache.insert(nf.key, cached);
                self.metrics.counters.plan_cache_evictions = self.plan_cache.evictions;
                Ok((stmt, Some(plan)))
            }
            // The normalized template did not parse (pathological literal
            // placement): fall back to the original text, uncached. A
            // genuinely invalid statement fails here exactly as it would
            // have pre-cache.
            Err(_) => Ok((parse_statement(sql)?, None)),
        }
    }

    /// Returns true if the statement was routed as a temp-table operation.
    fn handle_temp_stickiness(&mut self, ctx: &mut Ctx<'_, Msg>, req: &ClientRequest, stmt: &Statement) -> bool {
        let is_create_temp = matches!(stmt, Statement::CreateTable { temporary: true, .. });
        let touches_temp = {
            let s = self.sessions.get(req.session.0).expect("session exists");
            if s.temp_tables.is_empty() && !is_create_temp {
                false
            } else {
                let mut touched = is_create_temp;
                for t in stmt.read_tables().iter().chain(stmt.written_tables().iter()) {
                    if t.database.is_none() && s.temp_tables.contains(&t.name) {
                        touched = true;
                    }
                }
                touched
            }
        };
        if !touches_temp {
            return false;
        }
        // Pin the session (now and forever: the middleware cannot know when
        // the temp table's true lifespan ends, §4.1.4).
        let backend = {
            let pinned = self.sessions.get(req.session.0).unwrap().sticky;
            match pinned {
                Some(b) if self.backends[b.0].online() => Some(b),
                _ => {
                    let candidates = self.routable();
                    self.balancer.pick(&candidates)
                }
            }
        };
        let Some(backend) = backend else {
            self.reply(ctx, req.session, req.stmt_seq, Err(ReplyError::Unavailable("no backend".into())));
            return true;
        };
        {
            let s = self.sessions.get_mut(req.session.0).unwrap();
            s.sticky = Some(backend);
            s.temp_pinned = true;
            if let Statement::CreateTable { name, temporary: true, .. } = stmt {
                s.temp_tables.insert(name.name.clone());
            }
            if let Statement::DropTable { name, .. } = stmt {
                s.temp_tables.remove(&name.name);
            }
            s.current = Some(Current {
                stmt_seq: req.stmt_seq,
                kind: CurrentKind::TempExec { backend },
            });
        }
        let session = req.session;
        let sql = req.sql.clone();
        self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
            DbOp::Execute { op, conn: session.0, sql, seq: None }
        });
        true
    }

    // ------------------------------------------------------------------
    // Multi-master, statement-based
    // ------------------------------------------------------------------

    fn mm_statement_request(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: ClientRequest,
        stmt: Statement,
        plan: Option<PlanExec>,
        nondet: NondetPolicy,
    ) {
        if stmt.is_read_only() && !matches!(stmt, Statement::Begin { .. } | Statement::Commit | Statement::Rollback) {
            self.route_read(ctx, req, false, plan);
            return;
        }
        if !self.have_quorum() {
            self.reply(
                ctx,
                req.session,
                req.stmt_seq,
                Err(ReplyError::Unavailable("minority partition: writes suspended".into())),
            );
            return;
        }
        if !self.write_quorum_ok() {
            self.metrics.counters.degraded_write_rejects += 1;
            self.reply(
                ctx,
                req.session,
                req.stmt_seq,
                Err(ReplyError::Degraded("write quorum lost: cluster is read-only".into())),
            );
            return;
        }
        // Writes (and BEGIN/COMMIT/ROLLBACK, which shape snapshots) are
        // rewritten then totally ordered.
        self.metrics.counters.writes += 1;
        let rand_value = ctx.rng().gen::<f64>();
        let prepared = prepare_for_broadcast(&stmt, nondet, ctx.now().micros() as i64, rand_value);
        let (sql, ast) = match prepared {
            Ok(p) => {
                if p.substitutions > 0 {
                    self.metrics.counters.rewritten_statements += 1;
                    // The rewrite changed the statement: the admission-time
                    // plan no longer describes what ships. Carry the
                    // rewritten parse whole instead.
                    (p.sql, PlanExec::whole(std::sync::Arc::new(p.stmt)))
                } else {
                    let ast = plan
                        .unwrap_or_else(|| PlanExec::whole(std::sync::Arc::new(p.stmt)));
                    (p.sql, ast)
                }
            }
            Err(rej) => {
                self.metrics.counters.rejected_statements += 1;
                self.reply(ctx, req.session, req.stmt_seq, Err(ReplyError::Rejected(rej.reason)));
                return;
            }
        };
        {
            let s = self.sessions.get_mut(req.session.0).unwrap();
            s.current = Some(Current { stmt_seq: req.stmt_seq, kind: CurrentKind::OrderedWait });
            match &stmt {
                Statement::Begin { .. } => {
                    s.in_tx = true;
                    s.wrote_in_tx = false;
                }
                Statement::Commit | Statement::Rollback => {
                    s.in_tx = false;
                }
                _ => {
                    s.wrote_in_tx = true;
                    s.last_write_us = ctx.now().micros();
                }
            }
        }
        self.publish_write(ctx, ReplEvent::Statement { session: req.session, stmt_seq: req.stmt_seq, sql, ast });
    }

    fn route_read(&mut self, ctx: &mut Ctx<'_, Msg>, req: ClientRequest, ms_mode: bool, plan: Option<PlanExec>) {
        self.metrics.counters.reads += 1;
        self.apply_lag_penalties();
        if self.cfg.read_policy.freshness_slack().is_some() {
            self.route_read_fresh(ctx, req, ms_mode, plan);
            return;
        }
        let picked = self.pick_read_backend(req.session, ms_mode);
        let Some((backend, is_probe)) = picked else {
            self.reply_read(ctx, req.session, req.stmt_seq, Err(ReplyError::Unavailable("no backend for read".into())));
            return;
        };
        self.mw_span(req.session, req.stmt_seq, Stage::BalancerPick, ctx.now().micros());
        {
            let s = self.sessions.get_mut(req.session.0).unwrap();
            s.current = Some(Current { stmt_seq: req.stmt_seq, kind: CurrentKind::Read { backend } });
            if self.balancer.granularity == Granularity::Connection && s.sticky.is_none() && !is_probe {
                s.sticky = Some(backend);
            }
        }
        let session = req.session;
        let sql = req.sql;
        let op = self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
            match plan {
                Some(plan) => DbOp::ExecutePlan { op, conn: session.0, plan, seq: None },
                None => DbOp::Execute { op, conn: session.0, sql, seq: None },
            }
        });
        if is_probe {
            let now = ctx.now().micros();
            self.metrics.counters.quarantine_probes += 1;
            self.health[backend.0].probe_sent(now);
            self.probe_op.insert(backend, op);
            self.sync_health_events(backend.0);
        } else if self.is_quarantined(backend) {
            // Tripwire (should stay 0): a normal read slipped through the
            // quarantine filter — only the fallback path can do this, and
            // only when every online backend is quarantined.
            self.metrics.counters.reads_routed_to_quarantined += 1;
        }
    }

    /// Returns the backend to read from plus whether this read doubles as
    /// the half-open quarantine probe.
    fn pick_read_backend(&mut self, session: SessionId, ms_mode: bool) -> Option<(BackendId, bool)> {
        // Half-open probes first: a quarantined backend whose dwell expired
        // gets exactly one live read routed at it (lowest index wins).
        if self.cfg.quarantine.is_some() {
            for i in 0..self.backends.len() {
                if self.backends[i].online() && self.health[i].wants_probe() {
                    return Some((BackendId(i), true));
                }
            }
        }
        let s = self.sessions.get(session.0)?;
        // Granularity stickiness. A quarantined sticky backend is treated
        // like an offline one: health filtering beats stickiness.
        match self.balancer.granularity {
            Granularity::Connection => {
                if let Some(b) = s.sticky {
                    if self.read_ok(b) {
                        return Some((b, false));
                    }
                }
            }
            Granularity::Transaction => {
                if s.in_tx {
                    if let Some(b) = s.sticky {
                        if self.read_ok(b) {
                            return Some((b, false));
                        }
                    }
                }
            }
            Granularity::Query => {}
        }
        // Session consistency.
        if self.cfg.read_policy == ReadPolicy::SessionSticky {
            if let Some(b) = s.last_write_backend {
                if self.read_ok(b) {
                    return Some((b, false));
                }
            }
            if ms_mode && self.read_ok(self.master) {
                return Some((self.master, false));
            }
        }
        let candidates = self.read_candidates(ms_mode);
        let choice = self.balancer.pick(&candidates);
        if let Some(b) = choice {
            let sess = self.sessions.get_mut(session.0).unwrap();
            match self.balancer.granularity {
                Granularity::Connection => sess.sticky = Some(b),
                Granularity::Transaction if sess.in_tx => sess.sticky = Some(b),
                _ => {}
            }
        }
        choice.map(|b| (b, false))
    }

    /// The candidate set reads route over: health-filtered, then
    /// quarantine-filtered. In master-slave mode reads prefer the slaves
    /// and fall back to (or include, with `read_master`) the master.
    fn read_candidates(&self, ms_mode: bool) -> Vec<BackendId> {
        let candidates = if ms_mode {
            let read_master = matches!(self.cfg.mode, Mode::MasterSlave { read_master: true, .. });
            let slaves = self.slaves();
            if slaves.is_empty() || read_master {
                let mut all = slaves;
                if self.backends[self.master.0].online() {
                    all.push(self.master);
                }
                all
            } else {
                slaves
            }
        } else {
            self.healthy()
        };
        self.filter_quarantined(candidates)
    }

    // ------------------------------------------------------------------
    // Freshness-constrained read routing (`ReadPolicy::Fresh`)
    // ------------------------------------------------------------------

    /// A backend's applied position in the space session stamps live in.
    /// Master-slave: the master's binlog LSN space (the master itself is
    /// fresh by definition). Writeset mode: certified-writeset positions.
    /// Statement modes: ordered-statement sequence numbers.
    fn fresh_pos(&self, b: BackendId, ms_mode: bool) -> u64 {
        if ms_mode {
            if b == self.master {
                u64::MAX
            } else {
                self.backends[b.0].applied_lsn.0
            }
        } else {
            match self.cfg.mode {
                Mode::MultiMasterWriteset => self.backends[b.0].cert_mark.value(),
                _ => self.backends[b.0].applied_seq,
            }
        }
    }

    /// Has `b` applied this session's last committed write — or come within
    /// the policy's staleness slack of it?
    fn backend_fresh(&self, b: BackendId, stamp: u64, ms_mode: bool) -> bool {
        let need = stamp.saturating_sub(self.cfg.read_policy.freshness_slack().unwrap_or(0));
        need == 0 || self.fresh_pos(b, ms_mode) >= need
    }

    /// Freshness-constrained read path. Mirrors `route_read`'s probe and
    /// stickiness handling, but every routing decision is first cut down
    /// to replicas that have applied the session's last committed write;
    /// when none qualify the read parks until the freshness vector
    /// catches up (bounded by `freshness_wait_max_us`).
    fn route_read_fresh(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: ClientRequest,
        ms_mode: bool,
        plan: Option<PlanExec>,
    ) {
        // MonotonicReads folds the highest position this session has ever
        // *read from* into the stamp: a later read may not see an earlier
        // state, even one the session never wrote.
        let stamp = self
            .sessions
            .get(req.session.0)
            .map(|s| match self.cfg.read_policy {
                ReadPolicy::MonotonicReads => s.last_commit_stamp.max(s.last_read_pos),
                _ => s.last_commit_stamp,
            })
            .unwrap_or(0);
        // Half-open probes keep working under Fresh, but only a probe
        // target that is also fresh may carry this session's read — a
        // stale probe would itself violate read-your-writes.
        if self.cfg.quarantine.is_some() {
            for i in 0..self.backends.len() {
                if self.backends[i].online()
                    && self.health[i].wants_probe()
                    && self.backend_fresh(BackendId(i), stamp, ms_mode)
                {
                    self.dispatch_fresh_read(ctx, req.session, req.stmt_seq, req.sql, plan, BackendId(i), true);
                    return;
                }
            }
        }
        // Granularity stickiness holds only while the sticky backend is
        // both healthy and fresh.
        let sticky = match (self.balancer.granularity, self.sessions.get(req.session.0)) {
            (Granularity::Connection, Some(s)) => s.sticky,
            (Granularity::Transaction, Some(s)) if s.in_tx => s.sticky,
            _ => None,
        };
        if let Some(b) = sticky {
            if self.read_ok(b) && self.backend_fresh(b, stamp, ms_mode) {
                self.dispatch_fresh_read(ctx, req.session, req.stmt_seq, req.sql, plan, b, false);
                return;
            }
        }
        let candidates = self.read_candidates(ms_mode);
        if candidates.is_empty() {
            self.reply_read(ctx, req.session, req.stmt_seq, Err(ReplyError::Unavailable("no backend for read".into())));
            return;
        }
        let fresh_mask: Vec<bool> =
            candidates.iter().map(|&b| self.backend_fresh(b, stamp, ms_mode)).collect();
        if fresh_mask.iter().any(|f| !f) {
            self.metrics.counters.fresh_filtered_stale += 1;
        }
        if let Some(b) = self.balancer.pick_fresh(&candidates, &fresh_mask) {
            {
                let s = self.sessions.get_mut(req.session.0).unwrap();
                match self.balancer.granularity {
                    Granularity::Connection => s.sticky = Some(b),
                    Granularity::Transaction if s.in_tx => s.sticky = Some(b),
                    _ => {}
                }
            }
            self.dispatch_fresh_read(ctx, req.session, req.stmt_seq, req.sql, plan, b, false);
            return;
        }
        // No fresh replica right now: park until one catches up, with the
        // wait-or-primary deadline as the escape hatch.
        self.metrics.counters.freshness_waits += 1;
        let id = self.next_fresh;
        self.next_fresh += 1;
        {
            let s = self.sessions.get_mut(req.session.0).unwrap();
            s.current = Some(Current { stmt_seq: req.stmt_seq, kind: CurrentKind::FreshWait });
        }
        self.fresh_waiters.insert(
            id,
            FreshWaiter { session: req.session, stmt_seq: req.stmt_seq, sql: req.sql, plan, stamp, ms_mode, pneeds: None },
        );
        ctx.set_timer(self.cfg.freshness_wait_max_us, TIMER_FRESH_BASE + id);
    }

    /// Common dispatch tail for freshness-routed reads — the same
    /// bookkeeping `route_read` does after its pick.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_fresh_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        session: SessionId,
        stmt_seq: u64,
        sql: String,
        plan: Option<PlanExec>,
        backend: BackendId,
        is_probe: bool,
    ) {
        self.mw_span(session, stmt_seq, Stage::BalancerPick, ctx.now().micros());
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            let ms = matches!(self.cfg.mode, Mode::MasterSlave { .. });
            eprintln!(
                "[{}us] fresh dispatch sess={} -> b{} stamp={} pos={} probe={is_probe}",
                ctx.now().micros(),
                session.0,
                backend.0,
                self.sessions.get(session.0).map(|s| s.last_commit_stamp).unwrap_or(0),
                self.fresh_pos(backend, ms),
            );
        }
        // Monotonic reads: the position this read observes becomes the
        // floor for the session's next read. Recorded at dispatch — the
        // backend cannot regress below it by reply time.
        let observed = if self.cfg.read_policy == ReadPolicy::MonotonicReads {
            let ms = matches!(self.cfg.mode, Mode::MasterSlave { .. });
            Some(self.fresh_pos(backend, ms))
        } else {
            None
        };
        {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current { stmt_seq, kind: CurrentKind::Read { backend } });
            if self.balancer.granularity == Granularity::Connection && s.sticky.is_none() && !is_probe {
                s.sticky = Some(backend);
            }
            if let Some(pos) = observed {
                // The master reports the sentinel position (always fresh):
                // folding it in pins the session to the master from here
                // on. That is deliberate — the middleware cannot bound the
                // position a master read observed, so any slave might be
                // behind it; serving the master forever is the only sound
                // floor. (The wait-or-primary deadline keeps such sessions
                // live if the master blips.) Sessions that only ever read
                // slaves keep balancing across every caught-up slave.
                s.last_read_pos = s.last_read_pos.max(pos);
            }
        }
        let op = self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
            match plan {
                Some(plan) => DbOp::ExecutePlan { op, conn: session.0, plan, seq: None },
                None => DbOp::Execute { op, conn: session.0, sql, seq: None },
            }
        });
        if is_probe {
            let now = ctx.now().micros();
            self.metrics.counters.quarantine_probes += 1;
            self.health[backend.0].probe_sent(now);
            self.probe_op.insert(backend, op);
            self.sync_health_events(backend.0);
        } else if self.is_quarantined(backend) {
            self.metrics.counters.reads_routed_to_quarantined += 1;
            if std::env::var("REPLIMID_DEBUG").is_ok() {
                eprintln!("[{}us] QUARANTINED read -> b{}", ctx.now().micros(), backend.0);
            }
        }
    }

    /// Re-run the routing decision for parked reads after any event that
    /// can advance the freshness vector (apply acks, pongs, recovery
    /// completion, quarantine flips, master promotion). Allocation-free
    /// no-op when nothing is parked, so hooks call it unconditionally
    /// without disturbing the freshness-off byte path.
    fn drain_fresh_waiters(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.fresh_waiters.is_empty() {
            return;
        }
        // BTreeMap order = waiter-id order = park order: FIFO and
        // deterministic.
        let ids: Vec<u64> = self.fresh_waiters.keys().copied().collect();
        for id in ids {
            let Some(w) = self.fresh_waiters.get(&id) else { continue };
            // The session may have moved on (torn down, or the statement
            // superseded): drop stale waiters instead of dispatching.
            let still_wanted = self
                .sessions
                .get(w.session.0)
                .and_then(|s| s.current.as_ref())
                .map(|c| c.stmt_seq == w.stmt_seq && matches!(c.kind, CurrentKind::FreshWait))
                .unwrap_or(false);
            if !still_wanted {
                self.fresh_waiters.remove(&id);
                continue;
            }
            if let Some((gset, needs)) = w.pneeds.clone() {
                // Partial-replication waiter: candidates are restricted to
                // backends hosting every involved group, freshness is the
                // per-(backend, group) mark vector.
                let candidates: Vec<BackendId> = {
                    let hosts = self
                        .parts
                        .as_ref()
                        .map(|p| p.placement.hosts_of_all(&gset))
                        .unwrap_or_default();
                    self.routable().into_iter().filter(|b| hosts.contains(&b.0)).collect()
                };
                let fresh_mask: Vec<bool> =
                    candidates.iter().map(|&b| self.pw_backend_fresh(b, &needs)).collect();
                let Some(b) = self.balancer.pick_fresh(&candidates, &fresh_mask) else { continue };
                let w = self.fresh_waiters.remove(&id).unwrap();
                self.mw_span(w.session, w.stmt_seq, Stage::FreshnessWait, ctx.now().micros());
                self.pw_dispatch_read(ctx, w.session, w.stmt_seq, w.sql, w.plan, b);
                continue;
            }
            let candidates = self.read_candidates(w.ms_mode);
            let fresh_mask: Vec<bool> =
                candidates.iter().map(|&b| self.backend_fresh(b, w.stamp, w.ms_mode)).collect();
            let Some(b) = self.balancer.pick_fresh(&candidates, &fresh_mask) else { continue };
            let w = self.fresh_waiters.remove(&id).unwrap();
            // The parked window is the FreshnessWait stage; the dispatch
            // below records its (zero-width) BalancerPick after it, so the
            // E17 stage tiling stays exact.
            self.mw_span(w.session, w.stmt_seq, Stage::FreshnessWait, ctx.now().micros());
            self.dispatch_fresh_read(ctx, w.session, w.stmt_seq, w.sql, w.plan, b, false);
        }
    }

    /// Wait-or-primary deadline fired for waiter `id`. Master-slave mode
    /// escalates to the master, which is fresh by definition — RYW still
    /// holds, the cost was latency plus master load. Multi-master modes
    /// have no always-fresh node, so the deadline trades strictness for
    /// liveness: fall back to the most caught-up candidate.
    fn fresh_wait_timed_out(&mut self, ctx: &mut Ctx<'_, Msg>, id: u64) {
        let Some(w) = self.fresh_waiters.get(&id) else { return };
        let still_wanted = self
            .sessions
            .get(w.session.0)
            .and_then(|s| s.current.as_ref())
            .map(|c| c.stmt_seq == w.stmt_seq && matches!(c.kind, CurrentKind::FreshWait))
            .unwrap_or(false);
        let w = self.fresh_waiters.remove(&id).unwrap();
        if !still_wanted {
            return;
        }
        self.metrics.counters.freshness_wait_timeouts += 1;
        if let Some((gset, needs)) = w.pneeds.clone() {
            let _ = needs;
            // Liveness escape hatch, partial flavor: the most caught-up
            // hosting backend, summed over the involved groups.
            let hosts = self
                .parts
                .as_ref()
                .map(|p| p.placement.hosts_of_all(&gset))
                .unwrap_or_default();
            let fallback = self
                .routable()
                .into_iter()
                .filter(|b| hosts.contains(&b.0))
                .max_by_key(|&b| {
                    let sum: u64 = self
                        .parts
                        .as_ref()
                        .map(|p| gset.iter().map(|&g| p.marks[b.0][g].value()).sum())
                        .unwrap_or(0);
                    (sum, std::cmp::Reverse(b.0))
                });
            self.mw_span(w.session, w.stmt_seq, Stage::FreshnessWait, ctx.now().micros());
            match fallback {
                Some(b) => {
                    self.metrics.counters.fresh_fallback_primary += 1;
                    self.pw_dispatch_read(ctx, w.session, w.stmt_seq, w.sql, w.plan, b);
                }
                None => {
                    self.reply_read(
                        ctx,
                        w.session,
                        w.stmt_seq,
                        Err(ReplyError::Unavailable("no fresh backend for read".into())),
                    );
                }
            }
            return;
        }
        let fallback = if w.ms_mode {
            if self.read_ok(self.master) {
                Some(self.master)
            } else {
                // The master is unreadable (quarantined, or mid-failover):
                // the most caught-up slave may still predate this session's
                // write, and a stale answer is the one thing this policy
                // must never give. Re-park — the read drains the moment a
                // slave catches up or the master comes back.
                let id = self.next_fresh;
                self.next_fresh += 1;
                self.fresh_waiters.insert(id, w);
                ctx.set_timer(self.cfg.freshness_wait_max_us, TIMER_FRESH_BASE + id);
                return;
            }
        } else {
            // Writeset-replicated modes ack a commit only after every
            // in-rotation replica applied it, so the most caught-up healthy
            // candidate covers every acked stamp. Ties break to the lowest
            // id (max_by_key keys are unique thanks to the Reverse(id)).
            self.read_candidates(w.ms_mode)
                .into_iter()
                .max_by_key(|&b| (self.fresh_pos(b, w.ms_mode), std::cmp::Reverse(b.0)))
        };
        self.mw_span(w.session, w.stmt_seq, Stage::FreshnessWait, ctx.now().micros());
        match fallback {
            Some(b) => {
                self.metrics.counters.fresh_fallback_primary += 1;
                self.dispatch_fresh_read(ctx, w.session, w.stmt_seq, w.sql, w.plan, b, false);
            }
            None => {
                self.reply_read(
                    ctx,
                    w.session,
                    w.stmt_seq,
                    Err(ReplyError::Unavailable("no fresh backend for read".into())),
                );
            }
        }
    }

    /// Full session teardown: the slab entry goes — taking its open
    /// request metas and any stashed 2-safe body with it — and so do the
    /// session's parked reads. Pre-PR, `SessionEnd` removed only the
    /// session struct while the side maps (`request_started`,
    /// `two_safe_bodies`) kept their entries forever: a leak at session
    /// churn. Folding that metadata into `Sess` fixes it by construction.
    fn end_session(&mut self, session: SessionId) {
        self.sessions.remove(session.0);
        if !self.fresh_waiters.is_empty() {
            // Stale deadline timers for removed waiters fire harmlessly.
            self.fresh_waiters.retain(|_, w| w.session != session);
        }
    }

    /// Totally-ordered event arrives (identically at every peer).
    fn on_delivery(&mut self, ctx: &mut Ctx<'_, Msg>, ev: ReplEvent) {
        if self.barrier_for.is_some() {
            self.buffered_deliveries.push_back(ev);
            return;
        }
        self.apply_delivery(ctx, ev);
    }

    fn apply_delivery(&mut self, ctx: &mut Ctx<'_, Msg>, ev: ReplEvent) {
        match ev {
            ReplEvent::Statement { session, stmt_seq, sql, ast } => {
                self.deliver_statement(ctx, session, stmt_seq, sql, ast)
            }
            ReplEvent::Certify { session, stmt_seq, start_pos, ws } => {
                self.deliver_certify(ctx, session, stmt_seq, start_pos, ws)
            }
            ReplEvent::SessionEnd { session } => {
                self.end_session(session);
            }
            ReplEvent::Batch { events } => self.deliver_batch(ctx, events),
            // Cross-group prepares only travel per-group streams; the
            // global stream never carries one.
            ReplEvent::XPrepare { .. } => {}
        }
    }

    /// A group-committed batch arrives (one total-order slot). Statements
    /// fan out to each backend as ONE grouped message; certification
    /// requests go to the certifier in one call. Both preserve the
    /// admission order recorded in the event vector.
    fn deliver_batch(&mut self, ctx: &mut Ctx<'_, Msg>, events: Vec<ReplEvent>) {
        let mut stmts: Vec<(SessionId, u64, String, PlanExec)> = Vec::new();
        let mut certs: Vec<(SessionId, u64, u64, Writeset)> = Vec::new();
        for ev in events {
            match ev {
                ReplEvent::Statement { session, stmt_seq, sql, ast } => {
                    stmts.push((session, stmt_seq, sql, ast))
                }
                ReplEvent::Certify { session, stmt_seq, start_pos, ws } => {
                    certs.push((session, stmt_seq, start_pos, ws))
                }
                ReplEvent::SessionEnd { session } => {
                    self.end_session(session);
                }
                // Batches never nest (publish_write only buffers leaves).
                ReplEvent::Batch { .. } => {}
                // Never on the global stream (per-group only).
                ReplEvent::XPrepare { .. } => {}
            }
        }
        if !stmts.is_empty() {
            self.deliver_statement_batch(ctx, stmts);
        }
        if !certs.is_empty() {
            self.deliver_certify_batch(ctx, certs);
        }
    }

    /// Grouped form of [`deliver_statement`]: the batch's statements take a
    /// dense recovery-log seq range and each backend receives one
    /// `ExecuteBatch` message instead of one `Execute` per statement, which
    /// is where group commit wins — one network round-trip and one
    /// parallel-replay-grouped cost charge per backend per flush.
    fn deliver_statement_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        stmts: Vec<(SessionId, u64, String, PlanExec)>,
    ) {
        let now = ctx.now().micros();
        // Append the whole batch first: seqs are dense ([head+1 ..= head+n]).
        let mut entries: Vec<(SessionId, u64, String, PlanExec, u64, bool)> =
            Vec::with_capacity(stmts.len());
        for (session, stmt_seq, sql, ast) in stmts {
            // The event carries the admission-time parse: table extraction
            // reads it directly instead of re-parsing the statement text
            // (the old second parse per delivered statement).
            let tables: Vec<String> = self.written_tables_of(ctx, &ast);
            let log_seq = self.log.append_sql(self.cfg.default_db.clone(), sql.clone(), tables);
            let origin = {
                let s = self.session(session, None);
                matches!(&s.current, Some(c) if c.stmt_seq == stmt_seq)
            };
            if origin {
                // Flush → self-delivery through the total order.
                self.mw_span(session, stmt_seq, Stage::Order, now);
            }
            entries.push((session, stmt_seq, sql, ast, log_seq, origin));
        }
        let targets = self.healthy();
        if targets.is_empty() {
            for (session, stmt_seq, _, _, log_seq, origin) in entries {
                self.log.void(log_seq);
                if origin {
                    self.reply(ctx, session, stmt_seq, Err(ReplyError::Unavailable("no backend".into())));
                }
            }
            return;
        }
        // One exec group per statement — the reply/divergence bookkeeping is
        // untouched; only the transport is grouped.
        let mut groups: Vec<u64> = Vec::with_capacity(entries.len());
        for &(session, stmt_seq, _, _, log_seq, origin) in &entries {
            let group_id = self.next_group;
            self.next_group += 1;
            self.exec_groups.insert(
                group_id,
                ExecGroup {
                    session,
                    stmt_seq,
                    remaining: targets.len(),
                    canonical: None,
                    origin,
                    log_seq,
                },
            );
            if origin {
                let s = self.sessions.get_mut(session.0).unwrap();
                s.current = Some(Current { stmt_seq, kind: CurrentKind::ExecGroup { group: group_id } });
            }
            groups.push(group_id);
        }
        let plan_wire = self.cfg.plan_cache > 0;
        for backend in targets {
            let groups = groups.clone();
            if plan_wire {
                // Plan-cache arm: ship the parsed template + params; the
                // backend binds and executes without touching its parser.
                let batch: Vec<crate::msg::PlanBatchStmt> = entries
                    .iter()
                    .map(|(session, _, _, ast, log_seq, _)| crate::msg::PlanBatchStmt {
                        conn: session.0,
                        plan: ast.clone(),
                        seq: Some(*log_seq),
                    })
                    .collect();
                self.send_db(ctx, backend, Pending::GroupExecBatch { groups, backend }, move |op| {
                    DbOp::ExecuteBatchPlan { op, stmts: batch }
                });
            } else {
                let batch: Vec<crate::msg::BatchStmt> = entries
                    .iter()
                    .map(|(session, _, sql, _, log_seq, _)| crate::msg::BatchStmt {
                        conn: session.0,
                        sql: sql.clone(),
                        seq: Some(*log_seq),
                    })
                    .collect();
                self.send_db(ctx, backend, Pending::GroupExecBatch { groups, backend }, move |op| {
                    DbOp::ExecuteBatch { op, stmts: batch }
                });
            }
        }
    }

    /// Grouped form of [`deliver_certify`]: the whole flush goes to the
    /// certifier in one call, conflict state carrying across the batch in
    /// admission order, then each verdict finalizes exactly as in the
    /// unbatched path.
    fn deliver_certify_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        certs: Vec<(SessionId, u64, u64, Writeset)>,
    ) {
        let pk_map = &self.cfg.pk_map;
        let items: Vec<(u64, &Writeset)> =
            certs.iter().map(|(_, _, start_pos, ws)| (*start_pos, ws)).collect();
        let verdicts = self.certifier.certify_batch(&items, |db, t| {
            pk_map.get(&(db.to_string(), t.to_string())).copied()
        });
        self.metrics.certifier = self.certifier.stats();
        if !self.cfg.ws_apply_batch {
            for ((session, stmt_seq, _, ws), verdict) in certs.into_iter().zip(verdicts) {
                self.finish_certify(ctx, session, stmt_seq, ws, verdict, None);
            }
            return;
        }
        // Satellite: batched apply fan-out. Collect every non-delegate
        // apply this flush produces, then send ONE message per backend
        // carrying all of its parts — N certified writesets cost each
        // backend one wire round-trip instead of N.
        let mut sink: Vec<(BackendId, WsBatchPart)> = Vec::new();
        for ((session, stmt_seq, _, ws), verdict) in certs.into_iter().zip(verdicts) {
            self.finish_certify(ctx, session, stmt_seq, ws, verdict, Some(&mut sink));
        }
        for i in 0..self.backends.len() {
            let backend = BackendId(i);
            let metas: Vec<WsBatchPart> = sink
                .iter()
                .filter(|(b, _)| *b == backend)
                .map(|(_, m)| m.clone())
                .collect();
            if metas.is_empty() {
                continue;
            }
            let wire: Vec<Writeset> = metas.iter().map(|m| m.ws.clone()).collect();
            self.metrics.counters.ws_apply_batch_flushes += 1;
            self.send_db(
                ctx,
                backend,
                Pending::ApplyWsBatch { backend, parts: metas },
                move |op| DbOp::ApplyWritesetBatch { op, parts: wire },
            );
        }
    }

    /// Satellite: conflict-class extraction with a plan-template cache.
    /// The written-table walk is pure in the template, and the plan cache
    /// already dedups templates behind `Arc`s — so the pointer is a sound
    /// cache key (the `Arc` stored in the value pins the address). With
    /// the cache off (`class_cache == 0`) the walk runs every time and,
    /// when `class_cost_us > 0`, charges its modeled cost; defaults keep
    /// both at zero so the byte path is untouched.
    fn written_tables_of(&mut self, ctx: &mut Ctx<'_, Msg>, ast: &PlanExec) -> Vec<String> {
        let walk = |ast: &PlanExec| -> Vec<String> {
            ast.template.written_tables().into_iter().map(|t| t.name).collect()
        };
        if self.cfg.class_cache == 0 {
            if self.cfg.class_cost_us > 0 {
                ctx.consume(self.cfg.class_cost_us);
            }
            return walk(ast);
        }
        let key = std::sync::Arc::as_ptr(&ast.template) as usize;
        if let Some((_, tables)) = self.class_cache.get(&key) {
            self.metrics.counters.cert_class_hits += 1;
            return tables.clone();
        }
        self.metrics.counters.cert_class_misses += 1;
        if self.cfg.class_cost_us > 0 {
            ctx.consume(self.cfg.class_cost_us);
        }
        let tables = walk(ast);
        if self.class_cache.len() >= self.cfg.class_cache {
            self.class_cache.clear();
        }
        self.class_cache.insert(key, (ast.template.clone(), tables.clone()));
        tables
    }

    fn deliver_statement(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        session: SessionId,
        stmt_seq: u64,
        sql: String,
        ast: PlanExec,
    ) {
        // Log it (every peer logs identically: positions agree). Tables
        // come from the event's admission-time parse — this used to be the
        // pipeline's second parse of the same text.
        let tables: Vec<String> = self.written_tables_of(ctx, &ast);
        let log_seq = self.log.append_sql(self.cfg.default_db.clone(), sql.clone(), tables);

        // Shadow session for non-origin peers.
        let origin = {
            let s = self.session(session, None);
            matches!(&s.current, Some(c) if c.stmt_seq == stmt_seq)
        };
        if origin {
            // Publish → self-delivery through the total order.
            self.mw_span(session, stmt_seq, Stage::Order, ctx.now().micros());
        }

        let targets = self.healthy();
        if targets.is_empty() {
            // Nobody executed it: void the log slot so recovery replay does
            // not resurrect a transaction the client was told failed.
            self.log.void(log_seq);
            if origin {
                self.reply(ctx, session, stmt_seq, Err(ReplyError::Unavailable("no backend".into())));
            }
            return;
        }
        let group_id = self.next_group;
        self.next_group += 1;
        self.exec_groups.insert(
            group_id,
            ExecGroup {
                session,
                stmt_seq,
                remaining: targets.len(),
                canonical: None,
                origin,
                log_seq,
            },
        );
        if origin {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current { stmt_seq, kind: CurrentKind::ExecGroup { group: group_id } });
        }
        let plan_wire = self.cfg.plan_cache > 0;
        for backend in targets {
            if std::env::var("REPLIMID_DEBUG2").is_ok() {
                eprintln!("[{}] send exec seq {log_seq} -> b{}", ctx.now().micros(), backend.0);
            }
            if plan_wire {
                let plan = ast.clone();
                self.send_db(ctx, backend, Pending::GroupExec { group: group_id, backend }, move |op| {
                    DbOp::ExecutePlan { op, conn: session.0, plan, seq: Some(log_seq) }
                });
            } else {
                let sql = sql.clone();
                self.send_db(ctx, backend, Pending::GroupExec { group: group_id, backend }, move |op| {
                    DbOp::Execute { op, conn: session.0, sql, seq: Some(log_seq) }
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Multi-master, writeset-based
    // ------------------------------------------------------------------

    fn mm_writeset_request(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: ClientRequest,
        stmt: Statement,
        plan: Option<PlanExec>,
    ) {
        if self.parts.is_some() {
            self.pw_request(ctx, req, stmt, plan);
            return;
        }
        let session = req.session;
        if !stmt.is_read_only() && !self.have_quorum() {
            self.reply(
                ctx,
                session,
                req.stmt_seq,
                Err(ReplyError::Unavailable("minority partition: writes suspended".into())),
            );
            return;
        }
        if !stmt.is_read_only() && !self.write_quorum_ok() {
            self.metrics.counters.degraded_write_rejects += 1;
            self.reply(
                ctx,
                session,
                req.stmt_seq,
                Err(ReplyError::Degraded("write quorum lost: cluster is read-only".into())),
            );
            return;
        }
        let (in_tx, delegate) = {
            let s = self.sessions.get(session.0).unwrap();
            (s.in_tx, s.sticky)
        };
        match &stmt {
            Statement::Begin { .. } => {
                let candidates = self.routable();
                let Some(backend) = self.balancer.pick(&candidates) else {
                    self.reply(ctx, session, req.stmt_seq, Err(ReplyError::Unavailable("no delegate".into())));
                    return;
                };
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.in_tx = true;
                    s.wrote_in_tx = false;
                    s.sticky = Some(backend);
                    s.current = Some(Current {
                        stmt_seq: req.stmt_seq,
                        // start_cert_pos is sampled from the delegate's
                        // watermark when the BEGIN's response arrives.
                        kind: CurrentKind::WsBegin { then_sql: None, then_autocommit: false },
                    });
                }
                let sql = req.sql.clone();
                self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                    DbOp::Execute { op, conn: session.0, sql, seq: None }
                });
            }
            Statement::Commit => {
                if !in_tx || delegate.is_none() {
                    self.reply(ctx, session, req.stmt_seq, Ok(ReplyBody::Ack));
                    return;
                }
                let backend = delegate.unwrap();
                let wrote = self.sessions.get(session.0).unwrap().wrote_in_tx;
                if !wrote {
                    // Read-only transaction: commit locally, no certification.
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.current = Some(Current {
                            stmt_seq: req.stmt_seq,
                            kind: CurrentKind::WsStmt { autocommit: false },
                        });
                    }
                    self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                        DbOp::Execute { op, conn: session.0, sql: "COMMIT".into(), seq: None }
                    });
                    return;
                }
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.current = Some(Current { stmt_seq: req.stmt_seq, kind: CurrentKind::WsPrepare });
                }
                self.send_db(ctx, backend, Pending::Prepare { session, backend }, move |op| {
                    DbOp::PrepareWriteset { op, conn: session.0 }
                });
            }
            Statement::Rollback => {
                let backend = delegate;
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.in_tx = false;
                    s.wrote_in_tx = false;
                    s.current = Some(Current {
                        stmt_seq: req.stmt_seq,
                        kind: CurrentKind::WsStmt { autocommit: false },
                    });
                }
                match backend {
                    Some(backend) if self.backends[backend.0].online() => {
                        self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                            DbOp::Execute { op, conn: session.0, sql: "ROLLBACK".into(), seq: None }
                        });
                    }
                    _ => self.reply(ctx, session, req.stmt_seq, Ok(ReplyBody::Ack)),
                }
            }
            _ if stmt.is_read_only() && !in_tx => {
                self.route_read(ctx, req, false, plan);
            }
            _ => {
                // Any other statement executes at the delegate, opening an
                // implicit transaction for writes outside BEGIN.
                let write = !stmt.is_read_only();
                if write {
                    self.metrics.counters.writes += 1;
                }
                if in_tx {
                    let Some(backend) = delegate else {
                        self.reply(ctx, session, req.stmt_seq, Err(ReplyError::Unavailable("delegate lost".into())));
                        return;
                    };
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        if write {
                            s.wrote_in_tx = true;
                            s.last_write_us = ctx.now().micros();
                            s.last_write_backend = Some(backend);
                        }
                        s.current = Some(Current {
                            stmt_seq: req.stmt_seq,
                            kind: CurrentKind::WsStmt { autocommit: false },
                        });
                    }
                    let sql = req.sql.clone();
                    self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                        DbOp::Execute { op, conn: session.0, sql, seq: None }
                    });
                } else {
                    // Autocommit write: BEGIN; stmt; then certify+commit.
                    let candidates = self.routable();
                    let Some(backend) = self.balancer.pick(&candidates) else {
                        self.reply(ctx, session, req.stmt_seq, Err(ReplyError::Unavailable("no delegate".into())));
                        return;
                    };
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = true;
                        s.wrote_in_tx = true;
                        s.sticky = Some(backend);
                        s.last_write_us = ctx.now().micros();
                        s.last_write_backend = Some(backend);
                        s.current = Some(Current {
                            stmt_seq: req.stmt_seq,
                            kind: CurrentKind::WsBegin {
                                then_sql: Some(req.sql.clone()),
                                then_autocommit: true,
                            },
                        });
                    }
                    self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                        DbOp::Execute { op, conn: session.0, sql: "BEGIN ISOLATION LEVEL SNAPSHOT".into(), seq: None }
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Partial replication: request path, cross-group commit, read routing
    // ------------------------------------------------------------------

    /// Table groups a statement touches (reads and writes), per the
    /// placement map. Unknown tables fall into the default group.
    fn stmt_groups(&self, stmt: &Statement) -> Vec<usize> {
        let placement = &self.parts.as_ref().expect("partial mode").placement;
        let mut names: Vec<String> =
            stmt.read_tables().into_iter().map(|t| t.name).collect();
        names.extend(stmt.written_tables().into_iter().map(|t| t.name));
        placement.groups_of_tables(names.iter().map(|n| n.as_str()))
    }

    /// Delegate candidates must host *every* group the transaction touches
    /// (the delegate executes all its statements locally).
    fn pw_pick_delegate(&mut self, gset: &[usize]) -> Option<BackendId> {
        let hosts = self.parts.as_ref().unwrap().placement.hosts_of_all(gset);
        let candidates: Vec<BackendId> =
            self.routable().into_iter().filter(|b| hosts.contains(&b.0)).collect();
        self.apply_lag_penalties();
        self.balancer.pick(&candidates)
    }

    /// Client request entry point under a non-trivial placement. Mirrors
    /// [`mm_writeset_request`] except: the delegate is picked lazily at the
    /// first statement (BEGIN does not yet know which groups the
    /// transaction will touch), and certification goes through the
    /// per-group sequencers.
    fn pw_request(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: ClientRequest,
        stmt: Statement,
        plan: Option<PlanExec>,
    ) {
        let session = req.session;
        if !stmt.is_read_only() && !self.have_quorum() {
            self.reply(
                ctx,
                session,
                req.stmt_seq,
                Err(ReplyError::Unavailable("minority partition: writes suspended".into())),
            );
            return;
        }
        if !stmt.is_read_only() && !self.write_quorum_ok() {
            self.metrics.counters.degraded_write_rejects += 1;
            self.reply(
                ctx,
                session,
                req.stmt_seq,
                Err(ReplyError::Degraded("write quorum lost: cluster is read-only".into())),
            );
            return;
        }
        let (in_tx, delegate) = {
            let s = self.sessions.get(session.0).unwrap();
            (s.in_tx, s.sticky)
        };
        match &stmt {
            Statement::Begin { .. } => {
                // Delegate choice is deferred to the first statement, which
                // reveals the table groups the transaction touches. BEGIN
                // itself is a pure middleware-side state change.
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.in_tx = true;
                    s.wrote_in_tx = false;
                    s.sticky = None;
                    s.gstart.clear();
                }
                self.reply(ctx, session, req.stmt_seq, Ok(ReplyBody::Ack));
            }
            Statement::Commit => {
                if !in_tx || delegate.is_none() {
                    // Also covers BEGIN; COMMIT with no statement between:
                    // nothing executed anywhere, nothing to certify.
                    if in_tx {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.wrote_in_tx = false;
                    }
                    self.reply(ctx, session, req.stmt_seq, Ok(ReplyBody::Ack));
                    return;
                }
                let backend = delegate.unwrap();
                let wrote = self.sessions.get(session.0).unwrap().wrote_in_tx;
                if !wrote {
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.current = Some(Current {
                            stmt_seq: req.stmt_seq,
                            kind: CurrentKind::WsStmt { autocommit: false },
                        });
                    }
                    self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                        DbOp::Execute { op, conn: session.0, sql: "COMMIT".into(), seq: None }
                    });
                    return;
                }
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.current = Some(Current { stmt_seq: req.stmt_seq, kind: CurrentKind::WsPrepare });
                }
                self.send_db(ctx, backend, Pending::Prepare { session, backend }, move |op| {
                    DbOp::PrepareWriteset { op, conn: session.0 }
                });
            }
            Statement::Rollback => {
                let backend = delegate;
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.in_tx = false;
                    s.wrote_in_tx = false;
                    s.current = Some(Current {
                        stmt_seq: req.stmt_seq,
                        kind: CurrentKind::WsStmt { autocommit: false },
                    });
                }
                match backend {
                    Some(backend) if self.backends[backend.0].online() => {
                        self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                            DbOp::Execute { op, conn: session.0, sql: "ROLLBACK".into(), seq: None }
                        });
                    }
                    _ => self.reply(ctx, session, req.stmt_seq, Ok(ReplyBody::Ack)),
                }
            }
            _ if stmt.is_read_only() && !in_tx => {
                self.pw_route_read(ctx, req, &stmt, plan);
            }
            _ => {
                let write = !stmt.is_read_only();
                if write {
                    self.metrics.counters.writes += 1;
                }
                let gset = self.stmt_groups(&stmt);
                if in_tx {
                    if let Some(backend) = delegate {
                        let hosts_all = {
                            let p = self.parts.as_ref().unwrap();
                            gset.iter().all(|&g| p.placement.hosts(g).contains(&backend.0))
                        };
                        if !hosts_all {
                            // Documented limitation: the delegate was picked
                            // from the transaction's first statement; a later
                            // statement cannot widen the group set beyond
                            // what it hosts.
                            self.metrics.counters.rejected_statements += 1;
                            self.reply(
                                ctx,
                                session,
                                req.stmt_seq,
                                Err(ReplyError::Rejected(
                                    "statement touches a table group the transaction's delegate does not host".into(),
                                )),
                            );
                            return;
                        }
                        {
                            let s = self.sessions.get_mut(session.0).unwrap();
                            if write {
                                s.wrote_in_tx = true;
                                s.last_write_us = ctx.now().micros();
                                s.last_write_backend = Some(backend);
                            }
                            s.current = Some(Current {
                                stmt_seq: req.stmt_seq,
                                kind: CurrentKind::WsStmt { autocommit: false },
                            });
                        }
                        let sql = req.sql.clone();
                        self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                            DbOp::Execute { op, conn: session.0, sql, seq: None }
                        });
                    } else {
                        // First statement of an explicit transaction: pick
                        // the delegate now that the group set is visible and
                        // run the deferred BEGIN there.
                        let Some(backend) = self.pw_pick_delegate(&gset) else {
                            self.reply(
                                ctx,
                                session,
                                req.stmt_seq,
                                Err(ReplyError::Unavailable("no delegate hosts all involved groups".into())),
                            );
                            return;
                        };
                        {
                            let s = self.sessions.get_mut(session.0).unwrap();
                            s.sticky = Some(backend);
                            if write {
                                s.wrote_in_tx = true;
                                s.last_write_us = ctx.now().micros();
                                s.last_write_backend = Some(backend);
                            }
                            s.current = Some(Current {
                                stmt_seq: req.stmt_seq,
                                kind: CurrentKind::WsBegin {
                                    then_sql: Some(req.sql.clone()),
                                    then_autocommit: false,
                                },
                            });
                        }
                        self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                            DbOp::Execute { op, conn: session.0, sql: "BEGIN ISOLATION LEVEL SNAPSHOT".into(), seq: None }
                        });
                    }
                } else {
                    // Autocommit write: BEGIN; stmt; then certify+commit.
                    let Some(backend) = self.pw_pick_delegate(&gset) else {
                        self.reply(
                            ctx,
                            session,
                            req.stmt_seq,
                            Err(ReplyError::Unavailable("no delegate hosts all involved groups".into())),
                        );
                        return;
                    };
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = true;
                        s.wrote_in_tx = true;
                        s.sticky = Some(backend);
                        s.gstart.clear();
                        s.last_write_us = ctx.now().micros();
                        s.last_write_backend = Some(backend);
                        s.current = Some(Current {
                            stmt_seq: req.stmt_seq,
                            kind: CurrentKind::WsBegin {
                                then_sql: Some(req.sql.clone()),
                                then_autocommit: true,
                            },
                        });
                    }
                    self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                        DbOp::Execute { op, conn: session.0, sql: "BEGIN ISOLATION LEVEL SNAPSHOT".into(), seq: None }
                    });
                }
            }
        }
    }

    /// Split the prepared writeset along group boundaries and publish:
    /// one group → a plain per-group Certify; several → an XPrepare slot in
    /// every involved group's stream (cross-group 2PC, deterministic votes).
    fn pw_publish_prepare(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, stmt_seq: u64, ws: Writeset) {
        let gstart = self.sessions.get(session.0).map(|s| s.gstart.clone()).unwrap_or_default();
        {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current { stmt_seq, kind: CurrentKind::WsCertifyWait });
        }
        let (mut slices, default_group) = {
            let placement = &self.parts.as_ref().unwrap().placement;
            (
                ws.split_by(|_db, t| placement.group_of(t)),
                placement.default_group(),
            )
        };
        if slices.is_empty() {
            // Read-only-looking writeset (e.g. all writes rolled back):
            // still certify through one stream so the commit acks in order.
            slices.push((default_group, Writeset::default()));
        }
        let start = |g: usize| gstart.get(g).copied().unwrap_or(0);
        if slices.len() == 1 {
            let (g, part) = slices.pop().unwrap();
            let start_pos = start(g);
            self.shard_publish_write(
                ctx,
                g,
                ReplEvent::Certify { session, stmt_seq, start_pos, ws: part },
            );
            return;
        }
        let groups: Vec<u32> = slices.iter().map(|(g, _)| *g as u32).collect();
        for (g, part) in slices {
            let start_pos = start(g);
            self.shard_publish_write(
                ctx,
                g,
                ReplEvent::XPrepare { session, stmt_seq, groups: groups.clone(), start_pos, part },
            );
        }
    }

    /// Single-group certification request delivered on group `g`'s stream.
    /// The group-local mirror of [`deliver_certify`] + [`finish_certify`]:
    /// same verdict logic, but log position, conflict window and apply
    /// fan-out are all group-scoped.
    fn deliver_shard_certify(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        g: usize,
        session: SessionId,
        stmt_seq: u64,
        start_pos: u64,
        ws: Writeset,
    ) {
        let (verdict, cert_pos) = {
            let pk_map = &self.cfg.pk_map;
            let parts = self.parts.as_mut().unwrap();
            let verdict = parts.certs[g].certify(start_pos, &ws, |db, t| {
                pk_map.get(&(db.to_string(), t.to_string())).copied()
            });
            let cert_pos = if verdict == Verdict::Commit {
                parts.logs[g].append_ws(ws.clone())
            } else {
                0
            };
            self.metrics.certifier = parts.agg_stats();
            (verdict, cert_pos)
        };
        let origin = {
            let s = self.session(session, None);
            matches!(&s.current, Some(c) if c.stmt_seq == stmt_seq && matches!(c.kind, CurrentKind::WsCertifyWait))
        };
        if origin {
            self.mw_span(session, stmt_seq, Stage::Certify, ctx.now().micros());
        }
        match verdict {
            Verdict::Abort => {
                self.metrics.counters.certification_failures += 1;
                if origin {
                    let delegate = self.sessions.get(session.0).and_then(|s| s.sticky);
                    if let Some(backend) = delegate {
                        if self.backends[backend.0].online() {
                            self.send_db(ctx, backend, Pending::FireAndForget, move |op| {
                                DbOp::Execute { op, conn: session.0, sql: "ROLLBACK".into(), seq: None }
                            });
                        }
                    }
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.wrote_in_tx = false;
                    }
                    self.metrics.counters.aborts += 1;
                    self.reply(
                        ctx,
                        session,
                        stmt_seq,
                        Err(ReplyError::Sql(SqlError::WriteConflict {
                            table: "certification".into(),
                            detail: "first committer won".into(),
                        })),
                    );
                }
            }
            Verdict::Commit => {
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    grow(&mut s.gstamps, g);
                    s.gstamps[g] = s.gstamps[g].max(cert_pos);
                }
                let delegate =
                    if origin { self.sessions.get(session.0).and_then(|s| s.sticky) } else { None };
                let hosts: Vec<usize> =
                    self.parts.as_ref().unwrap().placement.hosts(g).to_vec();
                let targets: Vec<BackendId> =
                    self.healthy().into_iter().filter(|b| hosts.contains(&b.0)).collect();
                let mut remaining = 0;
                for backend in targets {
                    if Some(backend) == delegate {
                        remaining += 1;
                        self.send_db(
                            ctx,
                            backend,
                            Pending::PwCommit { session, backend, marks: vec![(g as u32, cert_pos)] },
                            move |op| DbOp::Execute { op, conn: session.0, sql: "COMMIT".into(), seq: None },
                        );
                    } else {
                        let ws_wire = ws.clone();
                        let ws_keep = ws.clone();
                        let sess = if origin { Some(session) } else { None };
                        if origin {
                            remaining += 1;
                        }
                        self.send_db(
                            ctx,
                            backend,
                            Pending::PwApply {
                                session: sess,
                                backend,
                                group: g as u32,
                                ws: ws_keep,
                                attempts: 0,
                                pos: cert_pos,
                            },
                            move |op| DbOp::ApplyWriteset { op, ws: ws_wire },
                        );
                    }
                }
                if origin {
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.current = Some(Current {
                            stmt_seq,
                            kind: CurrentKind::WsFinalize { remaining, failed: false },
                        });
                    }
                    if remaining == 0 {
                        self.metrics.counters.commits += 1;
                        self.reply(ctx, session, stmt_seq, Ok(ReplyBody::Ack));
                    }
                }
            }
        }
    }

    /// A cross-group prepare slot delivered on group `g`'s stream. The vote
    /// is the group-local certification verdict, computed AT DELIVERY — a
    /// pure function of the group's ordered stream, so every middleware
    /// votes identically and no vote messages need exchanging. A yes vote
    /// optimistically reserves a log position; the decision (AND of all
    /// votes) fires when the last involved stream delivers locally.
    #[allow(clippy::too_many_arguments)]
    fn deliver_xprepare(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        g: usize,
        session: SessionId,
        stmt_seq: u64,
        groups: Vec<u32>,
        start_pos: u64,
        part: Writeset,
    ) {
        let now = ctx.now().micros();
        let done = {
            let pk_map = &self.cfg.pk_map;
            let parts = self.parts.as_mut().unwrap();
            let verdict = parts.certs[g].certify(start_pos, &part, |db, t| {
                pk_map.get(&(db.to_string(), t.to_string())).copied()
            });
            let vote = verdict == Verdict::Commit;
            let rpos = if vote { parts.logs[g].append_ws(part.clone()) } else { 0 };
            let entry = parts.xtx.entry((session.0, stmt_seq)).or_insert_with(|| XTx {
                votes: vec![None; groups.len()],
                pos: vec![0; groups.len()],
                parts: vec![None; groups.len()],
                first_us: now,
                groups: groups.clone(),
            });
            let idx = entry
                .groups
                .iter()
                .position(|&eg| eg as usize == g)
                .expect("group not involved in its own XPrepare");
            entry.votes[idx] = Some(vote);
            entry.pos[idx] = rpos;
            entry.parts[idx] = Some(part);
            entry.votes.iter().all(Option::is_some)
        };
        {
            let parts = self.parts.as_mut().unwrap();
            self.metrics.certifier = parts.agg_stats();
        }
        if done {
            let xtx = self
                .parts
                .as_mut()
                .unwrap()
                .xtx
                .remove(&(session.0, stmt_seq))
                .unwrap();
            self.finish_xgroup(ctx, session, stmt_seq, xtx);
            // The decision may unblock a recovering backend whose catch-up
            // was capped below the (previously undecided) reserved slot.
            let recovering: Vec<BackendId> = (0..self.backends.len())
                .filter(|&i| matches!(self.backends[i].state, BackendState::Recovering { .. }))
                .map(BackendId)
                .collect();
            for b in recovering {
                self.pump_pw_recovery(ctx, b);
            }
        }
    }

    /// All involved groups have voted locally: commit iff every vote is
    /// yes. On abort, yes-voting groups retract their optimistic
    /// reservation (certifier entry out, log slot voided, watermark marked
    /// everywhere so apply tracking never stalls on the hole).
    fn finish_xgroup(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, stmt_seq: u64, xtx: XTx) {
        let commit = xtx.votes.iter().all(|v| *v == Some(true));
        let origin = {
            let s = self.session(session, None);
            matches!(&s.current, Some(c) if c.stmt_seq == stmt_seq && matches!(c.kind, CurrentKind::WsCertifyWait))
        };
        let now = ctx.now().micros();
        if origin {
            // Publish → first local vote is the certify window; first vote
            // → decision is the cross-group wait (the 2PC tax E22 measures).
            self.mw_span(session, stmt_seq, Stage::Certify, xtx.first_us);
            self.mw_span(session, stmt_seq, Stage::CrossGroupWait, now);
        }
        if !commit {
            self.metrics.counters.xgroup_aborts += 1;
            self.metrics.counters.certification_failures += 1;
            {
                let parts = self.parts.as_mut().unwrap();
                for (idx, vote) in xtx.votes.iter().enumerate() {
                    if *vote != Some(true) {
                        continue;
                    }
                    let g = xtx.groups[idx] as usize;
                    let pos = xtx.pos[idx];
                    parts.certs[g].retract(pos);
                    parts.logs[g].void(pos);
                    // A voided position never gets an apply ack: mark it
                    // applied everywhere or per-group watermarks stall.
                    for marks in parts.marks.iter_mut() {
                        marks[g].mark(pos);
                    }
                }
                self.metrics.certifier = parts.agg_stats();
            }
            if origin {
                let delegate = self.sessions.get(session.0).and_then(|s| s.sticky);
                if let Some(backend) = delegate {
                    if self.backends[backend.0].online() {
                        self.send_db(ctx, backend, Pending::FireAndForget, move |op| {
                            DbOp::Execute { op, conn: session.0, sql: "ROLLBACK".into(), seq: None }
                        });
                    }
                }
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.in_tx = false;
                    s.wrote_in_tx = false;
                }
                self.metrics.counters.aborts += 1;
                self.reply(
                    ctx,
                    session,
                    stmt_seq,
                    Err(ReplyError::Sql(SqlError::WriteConflict {
                        table: "certification".into(),
                        detail: "cross-group certification lost".into(),
                    })),
                );
            }
            return;
        }
        self.metrics.counters.xgroup_commits += 1;
        {
            let s = self.sessions.get_mut(session.0).unwrap();
            for (idx, &gg) in xtx.groups.iter().enumerate() {
                let g = gg as usize;
                grow(&mut s.gstamps, g);
                s.gstamps[g] = s.gstamps[g].max(xtx.pos[idx]);
            }
        }
        let delegate = if origin { self.sessions.get(session.0).and_then(|s| s.sticky) } else { None };
        let healthy = self.healthy();
        let mut remaining = 0;
        // The delegate hosts every involved group (enforced at pick time):
        // one COMMIT there marks all its group positions at once.
        if let Some(backend) = delegate {
            if healthy.contains(&backend) {
                remaining += 1;
                let marks: Vec<(u32, u64)> =
                    xtx.groups.iter().copied().zip(xtx.pos.iter().copied()).collect();
                self.send_db(
                    ctx,
                    backend,
                    Pending::PwCommit { session, backend, marks },
                    move |op| DbOp::Execute { op, conn: session.0, sql: "COMMIT".into(), seq: None },
                );
            }
        }
        for (idx, &gg) in xtx.groups.iter().enumerate() {
            let g = gg as usize;
            let part = xtx.parts[idx].clone().expect("yes vote recorded its part");
            let pos = xtx.pos[idx];
            let hosts: Vec<usize> = self.parts.as_ref().unwrap().placement.hosts(g).to_vec();
            for &backend in healthy.iter().filter(|b| hosts.contains(&b.0)) {
                if Some(backend) == delegate {
                    continue;
                }
                let ws_wire = part.clone();
                let ws_keep = part.clone();
                let sess = if origin { Some(session) } else { None };
                if origin {
                    remaining += 1;
                }
                self.send_db(
                    ctx,
                    backend,
                    Pending::PwApply { session: sess, backend, group: gg, ws: ws_keep, attempts: 0, pos },
                    move |op| DbOp::ApplyWriteset { op, ws: ws_wire },
                );
            }
        }
        if origin {
            {
                let s = self.sessions.get_mut(session.0).unwrap();
                s.in_tx = false;
                s.current = Some(Current {
                    stmt_seq,
                    kind: CurrentKind::WsFinalize { remaining, failed: false },
                });
            }
            if remaining == 0 {
                self.metrics.counters.commits += 1;
                self.reply(ctx, session, stmt_seq, Ok(ReplyBody::Ack));
            }
        }
    }

    /// Is backend `b` caught up to `needs` = per-group required positions?
    fn pw_backend_fresh(&self, b: BackendId, needs: &[(usize, u64)]) -> bool {
        let Some(p) = self.parts.as_ref() else { return true };
        needs.iter().all(|&(g, need)| p.marks[b.0][g].value() >= need)
    }

    /// Read routing under partial replication: candidates are the backends
    /// hosting every group the statement reads, freshness is checked per
    /// (backend, group) against the session's group stamps.
    fn pw_route_read(&mut self, ctx: &mut Ctx<'_, Msg>, req: ClientRequest, stmt: &Statement, plan: Option<PlanExec>) {
        self.metrics.counters.reads += 1;
        let gset = self.stmt_groups(stmt);
        let hosts = self.parts.as_ref().unwrap().placement.hosts_of_all(&gset);
        let candidates: Vec<BackendId> =
            self.routable().into_iter().filter(|b| hosts.contains(&b.0)).collect();
        if candidates.is_empty() {
            self.reply_read(ctx, req.session, req.stmt_seq, Err(ReplyError::Unavailable("no backend hosts all read groups".into())));
            return;
        }
        self.apply_lag_penalties();
        let Some(slack) = self.cfg.read_policy.freshness_slack() else {
            let Some(b) = self.balancer.pick(&candidates) else {
                self.reply_read(ctx, req.session, req.stmt_seq, Err(ReplyError::Unavailable("no backend for read".into())));
                return;
            };
            self.mw_span(req.session, req.stmt_seq, Stage::BalancerPick, ctx.now().micros());
            self.pw_dispatch_read(ctx, req.session, req.stmt_seq, req.sql, plan, b);
            return;
        };
        let needs: Vec<(usize, u64)> = {
            let s = self.sessions.get(req.session.0).unwrap();
            gset.iter()
                .map(|&g| {
                    (g, s.gstamps.get(g).copied().unwrap_or(0).saturating_sub(slack))
                })
                .filter(|&(_, need)| need > 0)
                .collect()
        };
        let fresh_mask: Vec<bool> =
            candidates.iter().map(|&b| self.pw_backend_fresh(b, &needs)).collect();
        if fresh_mask.iter().any(|f| !f) {
            self.metrics.counters.fresh_filtered_stale += 1;
        }
        if let Some(b) = self.balancer.pick_fresh(&candidates, &fresh_mask) {
            self.mw_span(req.session, req.stmt_seq, Stage::BalancerPick, ctx.now().micros());
            self.pw_dispatch_read(ctx, req.session, req.stmt_seq, req.sql, plan, b);
            return;
        }
        self.metrics.counters.freshness_waits += 1;
        let id = self.next_fresh;
        self.next_fresh += 1;
        {
            let s = self.sessions.get_mut(req.session.0).unwrap();
            s.current = Some(Current { stmt_seq: req.stmt_seq, kind: CurrentKind::FreshWait });
        }
        self.fresh_waiters.insert(
            id,
            FreshWaiter {
                session: req.session,
                stmt_seq: req.stmt_seq,
                sql: req.sql,
                plan,
                stamp: 0,
                ms_mode: false,
                pneeds: Some((gset, needs)),
            },
        );
        ctx.set_timer(self.cfg.freshness_wait_max_us, TIMER_FRESH_BASE + id);
    }

    /// Dispatch tail for partial-mode reads (skips the quarantine-probe
    /// piggyback and connection stickiness: placement already constrains
    /// the candidate set).
    fn pw_dispatch_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        session: SessionId,
        stmt_seq: u64,
        sql: String,
        plan: Option<PlanExec>,
        backend: BackendId,
    ) {
        {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current { stmt_seq, kind: CurrentKind::Read { backend } });
        }
        self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
            match plan {
                Some(plan) => DbOp::ExecutePlan { op, conn: session.0, plan, seq: None },
                None => DbOp::Execute { op, conn: session.0, sql, seq: None },
            }
        });
    }

    /// Satellite: freshness-aware LPRF. Fold each backend's replication
    /// lag (certified-but-unapplied positions) into its balancer score so
    /// laggards shed read load while they catch up. Off by default —
    /// `set_lag_penalty(_, 0)` everywhere keeps scores byte-identical.
    fn apply_lag_penalties(&mut self) {
        if !self.cfg.lag_aware_lprf {
            return;
        }
        for i in 0..self.backends.len() {
            let lag = if let Some(p) = self.parts.as_ref() {
                p.hosted(i)
                    .into_iter()
                    .map(|g| p.certs[g].position().saturating_sub(p.marks[i][g].value()))
                    .sum()
            } else {
                match self.cfg.mode {
                    Mode::MultiMasterWriteset => {
                        self.certifier.position().saturating_sub(self.backends[i].cert_mark.value())
                    }
                    _ => self.log.head().saturating_sub(self.backends[i].applied_seq),
                }
            };
            self.balancer.set_lag_penalty(BackendId(i), lag);
        }
    }

    fn deliver_certify(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, stmt_seq: u64, start_pos: u64, ws: Writeset) {
        let pk_map = &self.cfg.pk_map;
        let verdict = self.certifier.certify(start_pos, &ws, |db, t| {
            pk_map.get(&(db.to_string(), t.to_string())).copied()
        });
        self.metrics.certifier = self.certifier.stats();
        self.finish_certify(ctx, session, stmt_seq, ws, verdict, None);
    }

    /// Everything after the certification verdict: log the writeset, reply
    /// to the origin on abort, or fan the commit out. Shared between the
    /// single-event and batched delivery paths. With a `sink`, non-delegate
    /// applies are collected into it (one wire message per backend per
    /// flush, sent by the caller) instead of dispatched individually; the
    /// per-statement accounting is identical either way.
    fn finish_certify(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        session: SessionId,
        stmt_seq: u64,
        ws: Writeset,
        verdict: Verdict,
        mut sink: Option<&mut Vec<(BackendId, WsBatchPart)>>,
    ) {
        // Log certified writesets for recovery. In writeset mode the log
        // holds exactly the certified stream, so the log seq IS the
        // certification position.
        let mut cert_pos = 0;
        if verdict == Verdict::Commit {
            cert_pos = self.log.append_ws(ws.clone());
        }
        let origin = {
            let s = self.session(session, None);
            matches!(&s.current, Some(c) if c.stmt_seq == stmt_seq && matches!(c.kind, CurrentKind::WsCertifyWait))
        };
        if origin {
            // Certify publish → delivery plus the (instantaneous) conflict
            // check itself.
            self.mw_span(session, stmt_seq, Stage::Certify, ctx.now().micros());
        }
        match verdict {
            Verdict::Abort => {
                self.metrics.counters.certification_failures += 1;
                if origin {
                    let delegate = self.sessions.get(session.0).and_then(|s| s.sticky);
                    if let Some(backend) = delegate {
                        if self.backends[backend.0].online() {
                            self.send_db(ctx, backend, Pending::FireAndForget, move |op| {
                                DbOp::Execute { op, conn: session.0, sql: "ROLLBACK".into(), seq: None }
                            });
                        }
                    }
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.wrote_in_tx = false;
                    }
                    self.metrics.counters.aborts += 1;
                    self.reply(
                        ctx,
                        session,
                        stmt_seq,
                        Err(ReplyError::Sql(SqlError::WriteConflict {
                            table: "certification".into(),
                            detail: "first committer won".into(),
                        })),
                    );
                }
            }
            Verdict::Commit => {
                {
                    // Freshness stamp: reads for this session must come
                    // from a backend whose cert mark reached this position.
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.last_commit_stamp = s.last_commit_stamp.max(cert_pos);
                }
                let delegate = if origin { self.sessions.get(session.0).and_then(|s| s.sticky) } else { None };
                let mut remaining = 0;
                let targets = self.healthy();
                for backend in targets {
                    if Some(backend) == delegate {
                        remaining += 1;
                        self.send_db(
                            ctx,
                            backend,
                            Pending::DelegateCommit { session, backend, pos: cert_pos },
                            move |op| DbOp::Execute { op, conn: session.0, sql: "COMMIT".into(), seq: None },
                        );
                    } else {
                        let sess = if origin { Some(session) } else { None };
                        if origin {
                            remaining += 1;
                        }
                        if let Some(sink) = sink.as_deref_mut() {
                            sink.push((
                                backend,
                                WsBatchPart { session: sess, ws: ws.clone(), pos: cert_pos },
                            ));
                        } else {
                            let ws_wire = ws.clone();
                            let ws_keep = ws.clone();
                            self.send_db(
                                ctx,
                                backend,
                                Pending::ApplyWs {
                                    session: sess,
                                    backend,
                                    ws: ws_keep,
                                    attempts: 0,
                                    pos: cert_pos,
                                },
                                move |op| DbOp::ApplyWriteset { op, ws: ws_wire },
                            );
                        }
                    }
                }
                if origin {
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.current = Some(Current {
                            stmt_seq,
                            kind: CurrentKind::WsFinalize { remaining, failed: false },
                        });
                    }
                    if remaining == 0 {
                        self.metrics.counters.commits += 1;
                        self.reply(ctx, session, stmt_seq, Ok(ReplyBody::Ack));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Master-slave
    // ------------------------------------------------------------------

    fn ms_request(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        req: ClientRequest,
        stmt: Statement,
        plan: Option<PlanExec>,
    ) {
        let session = req.session;
        let write_path = !stmt.is_read_only()
            || matches!(stmt, Statement::Begin { .. } | Statement::Commit | Statement::Rollback)
            || self.sessions.get(session.0).map(|s| s.in_tx).unwrap_or(false);
        if !write_path {
            self.route_read(ctx, req, true, plan);
            return;
        }
        if !self.write_quorum_ok() {
            self.metrics.counters.degraded_write_rejects += 1;
            self.reply(
                ctx,
                session,
                req.stmt_seq,
                Err(ReplyError::Degraded("write quorum lost: cluster is read-only".into())),
            );
            return;
        }
        let master = self.master;
        if !self.backends[master.0].online() {
            self.reply(ctx, session, req.stmt_seq, Err(ReplyError::Unavailable("master down".into())));
            return;
        }
        {
            let s = self.sessions.get_mut(session.0).unwrap();
            match &stmt {
                Statement::Begin { .. } => {
                    s.in_tx = true;
                    s.wrote_in_tx = false;
                }
                Statement::Commit | Statement::Rollback => s.in_tx = false,
                _ => {
                    s.wrote_in_tx = true;
                    s.last_write_us = ctx.now().micros();
                    s.last_write_backend = Some(master);
                }
            }
            s.current = Some(Current {
                stmt_seq: req.stmt_seq,
                kind: CurrentKind::MsWrite { backend: master },
            });
        }
        if !stmt.is_read_only() {
            self.metrics.counters.writes += 1;
        }
        let sql = req.sql;
        self.send_db(ctx, master, Pending::ClientExec { session, backend: master }, move |op| {
            DbOp::Execute { op, conn: session.0, sql, seq: None }
        });
    }

    /// Kick off 1-safe shipping (timer-driven).
    fn ship_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Mode::MasterSlave { ship_interval_us, .. } = self.cfg.mode else { return };
        ctx.set_timer(ship_interval_us, TIMER_SHIP);
        if self.shipping_inflight || !self.backends[self.master.0].online() {
            return;
        }
        let min_applied = self
            .slaves()
            .iter()
            .map(|b| self.backends[b.0].applied_lsn)
            .min()
            .unwrap_or(Lsn(0));
        self.shipping_inflight = true;
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[{}us] ship fetch after {min_applied:?}", ctx.now().micros());
        }
        let master = self.master;
        self.send_db(ctx, master, Pending::ShipFetch, move |op| DbOp::BinlogAfter {
            op,
            after: min_applied,
        });
    }

    // ------------------------------------------------------------------
    // Partitioned
    // ------------------------------------------------------------------

    fn part_request(&mut self, ctx: &mut Ctx<'_, Msg>, req: ClientRequest, stmt: Statement) {
        let Mode::PartitionedStatement { partitioner, groups } = &self.cfg.mode else {
            unreachable!()
        };
        let session = req.session;
        let route = partitioner.route(&stmt);
        let groups = groups.clone();
        let read_only = stmt.is_read_only();
        if !read_only && !self.write_quorum_ok() {
            self.metrics.counters.degraded_write_rejects += 1;
            self.reply(
                ctx,
                session,
                req.stmt_seq,
                Err(ReplyError::Degraded("write quorum lost: cluster is read-only".into())),
            );
            return;
        }
        let targets: Vec<BackendId> = match (&route, read_only) {
            (Route::Single(p), true) => {
                // Read: one replica of the owning partition.
                let candidates: Vec<BackendId> = groups[*p]
                    .iter()
                    .copied()
                    .filter(|b| self.backends[b.0].online())
                    .collect();
                match self.balancer.pick(&candidates) {
                    Some(b) => vec![b],
                    None => vec![],
                }
            }
            (Route::Single(p), false) => groups[*p]
                .iter()
                .copied()
                .filter(|b| self.backends[b.0].online())
                .collect(),
            (Route::All, true) => {
                // Scatter read: one replica per partition (intra-query
                // parallelism); the client-visible result is the first
                // partition's result merged trivially — our workloads use
                // keyed reads, so scatter reads are rare. Execute on one
                // replica of each partition and merge row counts.
                let mut t = Vec::new();
                for g in &groups {
                    let candidates: Vec<BackendId> =
                        g.iter().copied().filter(|b| self.backends[b.0].online()).collect();
                    if let Some(b) = self.balancer.pick(&candidates) {
                        t.push(b);
                    }
                }
                t
            }
            (Route::All, false) => self.healthy(),
        };
        if targets.is_empty() {
            self.reply(ctx, session, req.stmt_seq, Err(ReplyError::Unavailable("partition unavailable".into())));
            return;
        }
        if !read_only {
            self.metrics.counters.writes += 1;
        } else {
            self.metrics.counters.reads += 1;
        }
        let group_id = self.next_group;
        self.next_group += 1;
        self.exec_groups.insert(
            group_id,
            ExecGroup {
                session,
                stmt_seq: req.stmt_seq,
                remaining: targets.len(),
                canonical: None,
                origin: true,
                log_seq: 0,
            },
        );
        {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current {
                stmt_seq: req.stmt_seq,
                kind: CurrentKind::ExecGroup { group: group_id },
            });
            if !read_only {
                s.last_write_us = ctx.now().micros();
            }
        }
        for backend in targets {
            let sql = req.sql.clone();
            self.send_db(ctx, backend, Pending::GroupExec { group: group_id, backend }, move |op| {
                DbOp::Execute { op, conn: session.0, sql, seq: None }
            });
        }
    }

    // ------------------------------------------------------------------
    // Database responses
    // ------------------------------------------------------------------

    fn on_db_resp(&mut self, ctx: &mut Ctx<'_, Msg>, resp: DbResp) {
        let op = resp.op();
        let Some(pending) = self.pending.remove(&op) else { return };
        let started = self.op_started.remove(&op);
        match pending {
            Pending::ClientExec { session, backend } => {
                self.balancer.completed(backend);
                let now = ctx.now().micros();
                self.touch_liveness(backend, now);
                self.score_completion(now, backend, started, op);
                self.finish_client_exec(ctx, session, backend, resp);
            }
            Pending::GroupExec { group, backend } => {
                self.balancer.completed(backend);
                let now = ctx.now().micros();
                self.touch_liveness(backend, now);
                self.score_completion(now, backend, started, op);
                self.finish_group_exec(ctx, group, backend, resp, false);
            }
            Pending::GroupExecBatch { groups, backend } => {
                self.balancer.completed(backend);
                let now = ctx.now().micros();
                self.touch_liveness(backend, now);
                self.score_completion(now, backend, started, op);
                if let DbResp::ExecBatchOut { results, .. } = resp {
                    // One grouped response resolves every statement's exec
                    // group, in batch order, exactly as N `Execute` replies
                    // would have.
                    for (group, r) in groups.into_iter().zip(results) {
                        let stmt_resp = match r {
                            crate::msg::BatchExecResult::Ok { body, commit, tainted } => {
                                DbResp::ExecOk { op: 0, body, commit, tainted }
                            }
                            crate::msg::BatchExecResult::Err { err } => {
                                DbResp::ExecErr { op: 0, err }
                            }
                        };
                        self.finish_group_exec(ctx, group, backend, stmt_resp, false);
                    }
                } else {
                    for group in groups {
                        self.finish_group_exec(ctx, group, backend, DbResp::RestoreOk { op: 0 }, true);
                    }
                }
            }
            Pending::Prepare { session, backend } => {
                self.balancer.completed(backend);
                self.finish_prepare(ctx, session, resp);
            }
            Pending::DelegateCommit { session, backend, pos } => {
                self.balancer.completed(backend);
                if matches!(resp, DbResp::ExecOk { .. }) {
                    self.backends[backend.0].cert_mark.mark(pos);
                }
                self.finish_ws_part(ctx, Some(session), resp);
            }
            Pending::ApplyWs { session, backend, ws, attempts, pos } => {
                self.balancer.completed(backend);
                if matches!(resp, DbResp::ApplyOk { .. }) {
                    self.backends[backend.0].cert_mark.mark(pos);
                }
                self.finish_apply_ws(ctx, session, backend, ws, attempts, pos, resp);
            }
            Pending::PwCommit { session, backend, marks } => {
                self.balancer.completed(backend);
                if matches!(resp, DbResp::ExecOk { .. }) {
                    let p = self.parts.as_mut().unwrap();
                    for &(g, pos) in &marks {
                        p.marks[backend.0][g as usize].mark(pos);
                    }
                }
                self.finish_ws_part(ctx, Some(session), resp);
            }
            Pending::PwApply { session, backend, group, ws, attempts, pos } => {
                self.balancer.completed(backend);
                if matches!(resp, DbResp::ApplyOk { .. }) {
                    self.parts.as_mut().unwrap().marks[backend.0][group as usize].mark(pos);
                }
                self.finish_pw_apply(ctx, session, backend, group, ws, attempts, pos, resp);
            }
            Pending::ApplyWsBatch { backend, parts } => {
                self.balancer.completed(backend);
                let now = ctx.now().micros();
                self.touch_liveness(backend, now);
                self.score_completion(now, backend, started, op);
                if let DbResp::ApplyBatchOut { results, .. } = resp {
                    // One batched response resolves every member exactly as
                    // N individual ApplyWriteset replies would have.
                    for (meta, r) in parts.into_iter().zip(results) {
                        match r {
                            None => {
                                self.backends[backend.0].cert_mark.mark(meta.pos);
                                self.finish_ws_part(
                                    ctx,
                                    meta.session,
                                    DbResp::ApplyOk { op: 0, applied_lsn: Lsn(0) },
                                );
                            }
                            Some(err) => {
                                self.finish_apply_ws(
                                    ctx,
                                    meta.session,
                                    backend,
                                    meta.ws,
                                    0,
                                    meta.pos,
                                    DbResp::ApplyErr { op: 0, err },
                                );
                            }
                        }
                    }
                } else {
                    for meta in parts {
                        self.finish_ws_part(
                            ctx,
                            meta.session,
                            DbResp::ApplyErr { op: 0, err: SqlError::Internal("batch apply failed".into()) },
                        );
                    }
                }
            }
            Pending::PwResyncDump { target, donor, heads } => {
                self.finish_pw_resync_dump(ctx, target, donor, heads, resp);
            }
            Pending::PwResyncRestore { backend, heads } => {
                self.finish_pw_resync_restore(ctx, backend, heads, resp);
            }
            Pending::PwRecoveryBatch { backend, group, upto } => {
                self.finish_pw_recovery_batch(ctx, backend, group, upto, resp);
            }
            Pending::Ping { backend } => {
                self.balancer.completed(backend);
                if let DbResp::Pong { applied_lsn, head, ordered_applied, .. } = resp {
                    self.note_pong(ctx, backend, applied_lsn, head, ordered_applied);
                }
            }
            Pending::ShipFetch => {
                self.shipping_inflight = false;
                self.finish_ship_fetch(ctx, resp);
            }
            Pending::TwoSafeFetch { session } => {
                self.finish_two_safe_fetch(ctx, session, resp);
            }
            Pending::ShipApply { backend, session, upto } => {
                self.balancer.completed(backend);
                self.ship_busy.remove(&backend);
                let _ = upto;
                match resp {
                    DbResp::ApplyOk { applied_lsn, .. } => {
                        let b = &mut self.backends[backend.0];
                        b.applied_lsn = b.applied_lsn.max(applied_lsn);
                        self.touch_liveness(backend, ctx.now().micros());
                    }
                    DbResp::ApplyErr { .. } => {
                        // Partial progress is learned from the next Pong;
                        // shipping retries from there on the next tick.
                        self.metrics.counters.divergence_detected += 1;
                    }
                    _ => {}
                }
                if let Some(session) = session {
                    self.finish_two_safe_part(ctx, session);
                }
            }
            Pending::RecoveryBatch { backend, upto } => {
                self.finish_recovery_batch(ctx, backend, upto, resp);
            }
            Pending::ResyncDumpReq { target, log_pos } => {
                self.finish_resync_dump(ctx, target, log_pos, resp);
            }
            Pending::BackupDump { backend, hot, started_us } => {
                self.balancer.completed(backend);
                if std::env::var("REPLIMID_DEBUG").is_ok() {
                    eprintln!("[backup] resp for b{} hot={hot}: {:?}", backend.0, std::mem::discriminant(&resp));
                }
                if let DbResp::DumpOut { dump, .. } = resp {
                    self.metrics.backups.push((
                        started_us,
                        ctx.now().micros(),
                        hot,
                        dump.row_count(),
                    ));
                }
            }
            Pending::ResyncRestore { backend, baseline, log_pos } => {
                self.finish_resync_restore(ctx, backend, baseline, log_pos, resp);
            }
            Pending::FireAndForget => {}
        }
        // Any response can have advanced the freshness vector (apply acks,
        // pongs, cert marks, recovery completion): release parked reads.
        self.drain_fresh_waiters(ctx);
    }

    fn finish_client_exec(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, backend: BackendId, resp: DbResp) {
        let current = match self.sessions.get(session.0).and_then(|s| s.current.clone()) {
            Some(c) => c,
            None => return,
        };
        let stmt_seq = current.stmt_seq;
        // Whatever happened since the last span was waiting on this backend.
        self.mw_span(session, stmt_seq, Stage::Execute, ctx.now().micros());
        match current.kind {
            CurrentKind::Read { .. } => match resp {
                DbResp::ExecOk { body, .. } => {
                    self.reply_read(ctx, session, stmt_seq, Ok(body));
                }
                DbResp::ExecErr { err, .. } => {
                    self.reply_read(ctx, session, stmt_seq, Err(ReplyError::Sql(err)));
                }
                _ => {}
            },
            CurrentKind::TempExec { .. } | CurrentKind::WsStmt { autocommit: false } => match resp {
                DbResp::ExecOk { body, commit, .. } => {
                    if commit.is_some() {
                        self.metrics.counters.commits += 1;
                    }
                    self.reply(ctx, session, stmt_seq, Ok(body));
                }
                DbResp::ExecErr { err, .. } => {
                    if err.is_retryable() {
                        self.metrics.counters.aborts += 1;
                    }
                    self.reply(ctx, session, stmt_seq, Err(ReplyError::Sql(err)));
                }
                _ => {}
            },
            CurrentKind::WsBegin { then_sql, then_autocommit } => match resp {
                DbResp::ExecOk { .. } => {
                    // The delegate's snapshot now exists: every certified
                    // writeset at or below its watermark is visible to it.
                    if let Some(p) = self.parts.as_ref() {
                        let gstart: Vec<u64> =
                            p.marks[backend.0].iter().map(|w| w.value()).collect();
                        if let Some(s) = self.sessions.get_mut(session.0) {
                            s.gstart = gstart;
                        }
                    } else {
                        let mark = self.backends[backend.0].cert_mark.value();
                        if let Some(s) = self.sessions.get_mut(session.0) {
                            s.start_cert_pos = mark;
                        }
                    }
                    let Some(sql) = then_sql else {
                        self.reply(ctx, session, stmt_seq, Ok(ReplyBody::Ack));
                        return;
                    };
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.current = Some(Current {
                            stmt_seq,
                            kind: CurrentKind::WsStmt { autocommit: then_autocommit },
                        });
                    }
                    self.send_db(ctx, backend, Pending::ClientExec { session, backend }, move |op| {
                        DbOp::Execute { op, conn: session.0, sql, seq: None }
                    });
                }
                DbResp::ExecErr { err, .. } => {
                    self.reply(ctx, session, stmt_seq, Err(ReplyError::Sql(err)));
                }
                _ => {}
            },
            CurrentKind::WsStmt { autocommit: true } => match resp {
                DbResp::ExecOk { .. } => {
                    // Autocommit write executed; now certify + commit.
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.current = Some(Current { stmt_seq, kind: CurrentKind::WsPrepare });
                    }
                    self.send_db(ctx, backend, Pending::Prepare { session, backend }, move |op| {
                        DbOp::PrepareWriteset { op, conn: session.0 }
                    });
                }
                DbResp::ExecErr { err, .. } => {
                    // Roll back the implicit transaction.
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.in_tx = false;
                        s.wrote_in_tx = false;
                    }
                    self.send_db(ctx, backend, Pending::FireAndForget, move |op| {
                        DbOp::Execute { op, conn: session.0, sql: "ROLLBACK".into(), seq: None }
                    });
                    if err.is_retryable() {
                        self.metrics.counters.aborts += 1;
                    }
                    self.reply(ctx, session, stmt_seq, Err(ReplyError::Sql(err)));
                }
                _ => {}
            },
            CurrentKind::MsWrite { .. } => self.finish_ms_write(ctx, session, stmt_seq, resp),
            _ => {}
        }
    }

    fn finish_group_exec(&mut self, ctx: &mut Ctx<'_, Msg>, group: u64, backend: BackendId, resp: DbResp, failed: bool) {
        let Some(g) = self.exec_groups.get_mut(&group) else { return };
        let result: Option<Result<ReplyBody, SqlError>> = if failed {
            None
        } else {
            match resp {
                DbResp::ExecOk { body, commit, .. } => {
                    if commit.is_some() && g.origin {
                        self.metrics.counters.commits += 1;
                    }
                    Some(Ok(body))
                }
                DbResp::ExecErr { err, .. } => Some(Err(err)),
                _ => None,
            }
        };
        if !failed {
            // Record progress for recovery checkpoints.
            let seq = g.log_seq;
            let b = &mut self.backends[backend.0];
            b.applied_seq = b.applied_seq.max(seq);
        }
        match (&g.canonical, &result) {
            (None, Some(r)) => g.canonical = Some(r.clone()),
            (Some(c), Some(r)) if c != r => {
                self.metrics.counters.divergence_detected += 1;
            }
            _ => {}
        }
        g.remaining = g.remaining.saturating_sub(1);
        if g.remaining == 0 {
            let g = self.exec_groups.remove(&group).unwrap();
            if g.canonical.is_none() && g.log_seq > 0 {
                // Every backend failed before executing: the entry must not
                // survive into recovery replay (see RecoveryLog::void).
                self.log.void(g.log_seq);
            }
            let result = match g.canonical {
                Some(Ok(body)) => Ok(body),
                Some(Err(e)) => {
                    if g.origin && e.is_retryable() {
                        self.metrics.counters.aborts += 1;
                    }
                    Err(ReplyError::Sql(e))
                }
                None => Err(ReplyError::Unavailable("all backends failed".into())),
            };
            if g.log_seq > 0 && result.is_ok() {
                // Freshness stamp: the write is applied up to this ordered
                // seq; later reads for the session require at least it.
                if let Some(sess) = self.sessions.get_mut(g.session.0) {
                    sess.last_commit_stamp = sess.last_commit_stamp.max(g.log_seq);
                }
            }
            if g.origin {
                // Delivery (or arrival, in partitioned mode) → slowest
                // backend done.
                self.mw_span(g.session, g.stmt_seq, Stage::Execute, ctx.now().micros());
                self.reply(ctx, g.session, g.stmt_seq, result);
            } else if result.is_ok() {
                // Sequoia-style transparent failover (§4.3.3): every peer
                // caches the outcome of the ordered statement, so a client
                // that retries here after its home middleware died gets the
                // cached reply instead of a re-execution.
                if let Some(sess) = self.sessions.get_mut(g.session.0) {
                    if g.stmt_seq > sess.last_replied {
                        sess.last_replied = g.stmt_seq;
                        sess.cached = Some(ClientReply {
                            session: g.session,
                            stmt_seq: g.stmt_seq,
                            result,
                        });
                    }
                }
            }
        }
    }

    fn finish_prepare(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, resp: DbResp) {
        let current = match self.sessions.get(session.0).and_then(|s| s.current.clone()) {
            Some(c) => c,
            None => return,
        };
        // Writeset extraction is backend work: charge it to Execute.
        self.mw_span(session, current.stmt_seq, Stage::Execute, ctx.now().micros());
        match resp {
            DbResp::WritesetOut { ws, .. } => {
                if self.parts.is_some() {
                    self.pw_publish_prepare(ctx, session, current.stmt_seq, *ws);
                    return;
                }
                let start_pos = self.sessions.get(session.0).map(|s| s.start_cert_pos).unwrap_or(0);
                {
                    let s = self.sessions.get_mut(session.0).unwrap();
                    s.current = Some(Current {
                        stmt_seq: current.stmt_seq,
                        kind: CurrentKind::WsCertifyWait,
                    });
                }
                self.publish_write(ctx, ReplEvent::Certify {
                    session,
                    stmt_seq: current.stmt_seq,
                    start_pos,
                    ws: *ws,
                });
            }
            DbResp::ExecErr { err, .. } => {
                self.reply(ctx, session, current.stmt_seq, Err(ReplyError::Sql(err)));
            }
            _ => {}
        }
    }

    /// A remote writeset application finished. Write conflicts mean a local
    /// *uncertified* transaction holds the rows; it will be aborted by its
    /// own certification shortly, so the apply retries after a delay.
    #[allow(clippy::too_many_arguments)]
    fn finish_apply_ws(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        session: Option<SessionId>,
        backend: BackendId,
        ws: Writeset,
        attempts: u32,
        pos: u64,
        resp: DbResp,
    ) {
        if let DbResp::ApplyErr { err, .. } = &resp {
            if err.is_retryable()
                && attempts < APPLY_RETRY_MAX
                && self.backends[backend.0].online()
            {
                self.next_retry += 1;
                let id = self.next_retry;
                self.apply_retries.insert(id, (backend, ws, session, attempts + 1, pos));
                ctx.set_timer(APPLY_RETRY_DELAY_US, TIMER_RETRY_BASE + id);
                return;
            }
            // Permanent failure: the certified transaction IS committed
            // cluster-wide; a backend that cannot apply it is divergent and
            // must be dropped and rebuilt through the recovery log.
            self.metrics.counters.divergence_detected += 1;
            if self.backends[backend.0].online() {
                self.backend_failed(ctx, backend);
                // A synthetic pong brings it straight back through recovery
                // (the node itself is alive; only its state lagged).
                // The node's durable ordered position is unknown here (no
                // real pong was involved); u64::MAX defers to the
                // middleware's own checkpoint.
                let lsn = self.backends[backend.0].applied_lsn;
                self.note_pong(ctx, backend, lsn, lsn, u64::MAX);
            }
        }
        self.finish_ws_part(ctx, session, resp);
    }

    /// Partial-mode twin of [`finish_apply_ws`]: same retry/divergence
    /// policy, but the retry re-targets the (backend, group) pair.
    #[allow(clippy::too_many_arguments)]
    fn finish_pw_apply(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        session: Option<SessionId>,
        backend: BackendId,
        group: u32,
        ws: Writeset,
        attempts: u32,
        pos: u64,
        resp: DbResp,
    ) {
        if let DbResp::ApplyErr { err, .. } = &resp {
            if err.is_retryable()
                && attempts < APPLY_RETRY_MAX
                && self.backends[backend.0].online()
            {
                self.next_retry += 1;
                let id = self.next_retry;
                self.parts
                    .as_mut()
                    .unwrap()
                    .retries
                    .insert(id, (backend, group, ws, session, attempts + 1, pos));
                ctx.set_timer(APPLY_RETRY_DELAY_US, TIMER_RETRY_BASE + id);
                return;
            }
            self.metrics.counters.divergence_detected += 1;
            if self.backends[backend.0].online() {
                self.backend_failed(ctx, backend);
                let lsn = self.backends[backend.0].applied_lsn;
                self.note_pong(ctx, backend, lsn, lsn, u64::MAX);
            }
        }
        self.finish_ws_part(ctx, session, resp);
    }

    fn fire_apply_retry(&mut self, ctx: &mut Ctx<'_, Msg>, id: u64) {
        if let Some((backend, group, ws, session, attempts, pos)) =
            self.parts.as_mut().and_then(|p| p.retries.remove(&id))
        {
            if !self.backends[backend.0].online() {
                self.finish_ws_part(
                    ctx,
                    session,
                    DbResp::ApplyErr { op: 0, err: SqlError::Internal("backend lost".into()) },
                );
                return;
            }
            let ws2 = ws.clone();
            self.send_db(
                ctx,
                backend,
                Pending::PwApply { session, backend, group, ws, attempts, pos },
                move |op| DbOp::ApplyWriteset { op, ws: ws2 },
            );
            return;
        }
        let Some((backend, ws, session, attempts, pos)) = self.apply_retries.remove(&id) else {
            return;
        };
        if !self.backends[backend.0].online() {
            self.finish_ws_part(
                ctx,
                session,
                DbResp::ApplyErr { op: 0, err: SqlError::Internal("backend lost".into()) },
            );
            return;
        }
        let ws2 = ws.clone();
        self.send_db(
            ctx,
            backend,
            Pending::ApplyWs { session, backend, ws, attempts, pos },
            move |op| DbOp::ApplyWriteset { op, ws: ws2 },
        );
    }

    fn finish_ws_part(&mut self, ctx: &mut Ctx<'_, Msg>, session: Option<SessionId>, resp: DbResp) {
        let Some(session) = session else { return };
        let current = match self.sessions.get(session.0).and_then(|s| s.current.clone()) {
            Some(c) => c,
            None => return,
        };
        let CurrentKind::WsFinalize { mut remaining, mut failed } = current.kind else { return };
        if matches!(resp, DbResp::ExecErr { .. } | DbResp::ApplyErr { .. }) {
            failed = true;
        }
        remaining = remaining.saturating_sub(1);
        if remaining == 0 {
            if failed {
                self.metrics.counters.divergence_detected += 1;
            }
            self.metrics.counters.commits += 1;
            // Certification → last replica acknowledged.
            self.mw_span(session, current.stmt_seq, Stage::Fanout, ctx.now().micros());
            self.reply(ctx, session, current.stmt_seq, Ok(ReplyBody::Ack));
        } else {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current {
                stmt_seq: current.stmt_seq,
                kind: CurrentKind::WsFinalize { remaining, failed },
            });
        }
    }

    fn finish_ms_write(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, stmt_seq: u64, resp: DbResp) {
        let Mode::MasterSlave { two_safe, .. } = self.cfg.mode else { return };
        match resp {
            DbResp::ExecOk { body, commit, .. } => {
                let committed = commit.is_some();
                if committed {
                    self.metrics.counters.commits += 1;
                    self.backends[self.master.0].applied_lsn =
                        commit.as_ref().map(|c| c.lsn).unwrap_or(Lsn(0));
                    // Freshness stamp: slaves are fresh for this session
                    // once their shipped-apply position reaches this LSN.
                    let lsn = commit.as_ref().map(|c| c.lsn.0).unwrap_or(0);
                    if let Some(s) = self.sessions.get_mut(session.0) {
                        s.last_commit_stamp = s.last_commit_stamp.max(lsn);
                    }
                }
                if two_safe && committed && !self.slaves().is_empty() {
                    // Fetch the unshipped tail and push it synchronously.
                    {
                        let s = self.sessions.get_mut(session.0).unwrap();
                        s.current = Some(Current {
                            stmt_seq,
                            kind: CurrentKind::MsTwoSafe { remaining: 0 },
                        });
                        s.cached = None;
                    }
                    // Stash the body to return after slave acks.
                    self.sessions.get_mut(session.0).unwrap().two_safe_body = Some(body);
                    let min_applied = self
                        .slaves()
                        .iter()
                        .map(|b| self.backends[b.0].applied_lsn)
                        .min()
                        .unwrap_or(Lsn(0));
                    let master = self.master;
                    self.send_db(ctx, master, Pending::TwoSafeFetch { session }, move |op| {
                        DbOp::BinlogAfter { op, after: min_applied }
                    });
                } else {
                    self.reply(ctx, session, stmt_seq, Ok(body));
                }
            }
            DbResp::ExecErr { err, .. } => {
                if err.is_retryable() {
                    self.metrics.counters.aborts += 1;
                }
                self.reply(ctx, session, stmt_seq, Err(ReplyError::Sql(err)));
            }
            _ => {}
        }
    }

    fn finish_two_safe_fetch(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId, resp: DbResp) {
        let Mode::MasterSlave { use_writesets, parallel_apply, .. } = self.cfg.mode else { return };
        let DbResp::BinlogOut { entries, head, .. } = resp else { return };
        let slaves = self.slaves();
        let stmt_seq = match self.sessions.get(session.0).and_then(|s| s.current.as_ref()) {
            Some(c) => c.stmt_seq,
            None => return,
        };
        if slaves.is_empty() || entries.is_empty() {
            let body = self
                .sessions
                .get_mut(session.0)
                .and_then(|s| s.two_safe_body.take())
                .unwrap_or(ReplyBody::Ack);
            self.mw_span(session, stmt_seq, Stage::Fanout, ctx.now().micros());
            self.reply(ctx, session, stmt_seq, Ok(body));
            return;
        }
        {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current {
                stmt_seq,
                kind: CurrentKind::MsTwoSafe { remaining: slaves.len() },
            });
        }
        for backend in slaves {
            let after = self.backends[backend.0].applied_lsn;
            let to_apply: Vec<_> = entries.iter().filter(|e| e.lsn > after).cloned().collect();
            if to_apply.is_empty() {
                self.finish_two_safe_part(ctx, session);
                continue;
            }
            self.ship_busy.insert(backend);
            self.send_db(
                ctx,
                backend,
                Pending::ShipApply { backend, session: Some(session), upto: head },
                move |op| DbOp::ApplyBinlog {
                    op,
                    entries: to_apply,
                    use_writesets,
                    parallel_apply,
                    space: ApplySpace::Binlog,
                },
            );
        }
    }

    fn finish_two_safe_part(&mut self, ctx: &mut Ctx<'_, Msg>, session: SessionId) {
        let current = match self.sessions.get(session.0).and_then(|s| s.current.clone()) {
            Some(c) => c,
            None => return,
        };
        let CurrentKind::MsTwoSafe { remaining } = current.kind else { return };
        let remaining = remaining.saturating_sub(1);
        if remaining == 0 {
            let body = self
                .sessions
                .get_mut(session.0)
                .and_then(|s| s.two_safe_body.take())
                .unwrap_or(ReplyBody::Ack);
            // 2-safe shipping: commit → every slave confirmed the tail.
            self.mw_span(session, current.stmt_seq, Stage::Fanout, ctx.now().micros());
            self.reply(ctx, session, current.stmt_seq, Ok(body));
        } else {
            let s = self.sessions.get_mut(session.0).unwrap();
            s.current = Some(Current {
                stmt_seq: current.stmt_seq,
                kind: CurrentKind::MsTwoSafe { remaining },
            });
        }
    }

    fn finish_ship_fetch(&mut self, ctx: &mut Ctx<'_, Msg>, resp: DbResp) {
        let Mode::MasterSlave { use_writesets, parallel_apply, .. } = self.cfg.mode else { return };
        let DbResp::BinlogOut { entries, head, resync_needed, .. } = resp else { return };
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!(
                "[{}us] ship got {} entries head={head:?} resync={resync_needed}",
                ctx.now().micros(),
                entries.len()
            );
        }
        if resync_needed {
            // The master purged its log past a slave's position: those
            // slaves need a full resync (§4.4.2).
            for b in self.slaves() {
                self.start_full_resync(ctx, b);
            }
            return;
        }
        if entries.is_empty() {
            // Record zero lag samples.
            let now = ctx.now().micros();
            for b in self.slaves() {
                let lag = head.0.saturating_sub(self.backends[b.0].applied_lsn.0);
                self.metrics.lag_samples.push((now, lag));
            }
            return;
        }
        let now = ctx.now().micros();
        for backend in self.slaves() {
            let after = self.backends[backend.0].applied_lsn;
            let to_apply: Vec<_> = entries.iter().filter(|e| e.lsn > after).cloned().collect();
            let lag = head.0.saturating_sub(after.0);
            self.metrics.lag_samples.push((now, lag));
            if to_apply.is_empty() || self.ship_busy.contains(&backend) {
                continue;
            }
            self.ship_busy.insert(backend);
            self.send_db(
                ctx,
                backend,
                Pending::ShipApply { backend, session: None, upto: head },
                move |op| DbOp::ApplyBinlog {
                    op,
                    entries: to_apply,
                    use_writesets,
                    parallel_apply,
                    space: ApplySpace::Binlog,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Failure detection / failover / recovery
    // ------------------------------------------------------------------

    /// Refresh a backend's liveness clock. With adaptive detection on, the
    /// observed silence gap feeds that backend's learned threshold, so
    /// stretched-but-alive traffic (brownout, load) raises the timeout
    /// instead of tripping it.
    fn touch_liveness(&mut self, backend: BackendId, now: u64) {
        let last = self.backends[backend.0].last_pong_us;
        if let Some(th) = self.pong_adaptive.get_mut(backend.0) {
            let gap = now.saturating_sub(last);
            if last > 0 && gap > 0 {
                th.observe(gap);
            }
        }
        self.backends[backend.0].last_pong_us = now;
    }

    /// The silence threshold currently applied to a backend: the learned
    /// adaptive one when enabled, the fixed heartbeat timeout otherwise.
    fn silence_timeout_us(&self, backend: usize) -> u64 {
        self.pong_adaptive
            .get(backend)
            .map(|t| t.timeout_us())
            .unwrap_or(self.cfg.heartbeat.timeout_us)
    }

    fn note_pong(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        backend: BackendId,
        applied_lsn: Lsn,
        head: Lsn,
        ordered_applied: u64,
    ) {
        let now = ctx.now().micros();
        let was_down = self.backends[backend.0].state == BackendState::Down;
        self.touch_liveness(backend, now);
        if matches!(self.cfg.mode, Mode::MasterSlave { .. }) {
            // The master reports its binlog head; slaves report the foreign
            // LSN they applied.
            let b = &mut self.backends[backend.0];
            let v = if backend == self.master { head } else { applied_lsn };
            b.applied_lsn = b.applied_lsn.max(v);
        }
        if was_down {
            // The node is back: start the rejoin procedure (§4.4.2).
            self.recovery_started.insert(backend, now);
            match self.cfg.mode {
                Mode::MasterSlave { .. } => self.start_full_resync(ctx, backend),
                _ if self.parts.is_some() => self.start_pw_resync(ctx, backend),
                _ => self.start_log_recovery(ctx, backend, ordered_applied),
            }
        }
    }

    fn ping_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(self.cfg.heartbeat.interval_us, TIMER_PING);
        let now = ctx.now().micros();
        // Advance quarantine dwell timers (Quarantined -> half-open).
        if self.cfg.quarantine.is_some() {
            for i in 0..self.backends.len() {
                if self.backends[i].online() {
                    self.health[i].tick(now);
                }
            }
        }
        // Detect silent backends (per-backend threshold when adaptive).
        for i in 0..self.backends.len() {
            let b = BackendId(i);
            let silent = now.saturating_sub(self.backends[i].last_pong_us);
            let timeout = self.silence_timeout_us(i);
            if self.backends[i].online() && self.backends[i].last_pong_us > 0 && silent > timeout {
                if !ctx.oracle_is_crashed(self.backends[i].node) {
                    // The backend was alive — a brownout or lossy link
                    // fooled the detector (oracle measurement only).
                    self.metrics.counters.false_evictions += 1;
                }
                self.backend_failed(ctx, b);
            }
        }
        // Finalize drains whose in-flight work has completed — before the
        // ping sends below enqueue fresh (ignorable) Ping pendings.
        self.try_finish_drains(ctx);
        // Ping everyone (including Down nodes: that is how we see them
        // return).
        for i in 0..self.backends.len() {
            let b = BackendId(i);
            self.send_db(ctx, b, Pending::Ping { backend: b }, move |op| DbOp::Ping { op });
        }
    }

    /// Start a graceful drain (§4.4.1 planned maintenance). The backend
    /// leaves routing and replication fan-out immediately (`online()` is
    /// false for `Draining`), sticky sessions are re-routed on their next
    /// statement exactly as after a failure, but — unlike `backend_failed`
    /// — in-flight operations are left in `pending` to complete normally.
    /// Once none remain the backend parks in `Removed`.
    fn drain_backend(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId) {
        if !self.backends[backend.0].online() {
            return; // only an in-rotation backend can be drained
        }
        let now = ctx.now().micros();
        self.metrics.counters.drains_started += 1;
        self.backends[backend.0].drain_started_us = now;
        self.backends[backend.0].state = BackendState::Draining;
        // Master-slave: hand the master role off (a controlled switchover)
        // so writes keep flowing while the old master drains. The drainee
        // is already out of `slaves()` here, so the promotion neither
        // picks it nor schedules a pointless resync of it.
        if matches!(self.cfg.mode, Mode::MasterSlave { .. }) && backend == self.master {
            let lost = self.promote_new_master(ctx);
            self.metrics.counters.lost_transactions += lost;
        }
        // No new work will be assigned; outstanding-count history would
        // otherwise leak back as phantom load if the backend is re-added.
        self.balancer.reset(backend);
        // Record the log checkpoint now: if the backend is later re-added,
        // the recovery log (or its truncation escalation) covers the gap.
        let applied = self.backends[backend.0].applied_seq;
        self.log.checkpoint(backend, applied);
        // Sessions stuck to the draining backend re-route on their next
        // statement (same semantics as after a failure — an idle in-tx
        // session keeps its tx and picks a new delegate).
        for s in self.sessions.values_mut() {
            if s.sticky == Some(backend) && !s.temp_pinned {
                s.sticky = None;
            }
        }
        self.update_degraded(ctx);
        self.drain_fresh_waiters(ctx);
        self.try_finish_drains(ctx);
    }

    /// Complete any drain whose backend has no in-flight work left. Pings
    /// are excluded: they are perpetual (every heartbeat pings everyone)
    /// and their loss is harmless. Stuck non-ping ops cannot block a drain
    /// forever — `op_timed_out` fails the backend, which finalizes the
    /// drain through `backend_failed`'s was-draining path.
    fn try_finish_drains(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for i in 0..self.backends.len() {
            if self.backends[i].state != BackendState::Draining {
                continue;
            }
            let b = BackendId(i);
            let busy = self
                .pending
                .values()
                .any(|p| !matches!(p, Pending::Ping { .. }) && pending_backend(p) == Some(b));
            if busy {
                continue;
            }
            let now = ctx.now().micros();
            let started = self.backends[i].drain_started_us;
            self.backends[i].drain_started_us = 0;
            self.backends[i].state = BackendState::Removed;
            self.metrics.counters.drains_completed += 1;
            self.metrics.drains.push((i, started, now));
            // Same post-removal hygiene as a failure: stale latency
            // history and probes are meaningless if it ever returns.
            self.probe_op.remove(&b);
            if self.cfg.quarantine.is_some() {
                self.health[i].reset(now);
                self.sync_health_events(i);
            }
            if std::env::var("REPLIMID_DEBUG").is_ok() {
                eprintln!("[{now}us] drain of b{i} complete after {}us", now - started);
            }
        }
    }

    /// Re-admit a `Removed` backend: mark it `Down` so its next pong takes
    /// the normal rejoin path (recovery log catch-up, escalating to a full
    /// resync when the log has been truncated past its checkpoint).
    fn add_backend(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId) {
        if self.backends[backend.0].state != BackendState::Removed {
            return;
        }
        self.metrics.counters.backends_added += 1;
        self.backends[backend.0].state = BackendState::Down;
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[{}us] add_backend b{} -> Down (awaiting pong)", ctx.now().micros(), backend.0);
        }
    }

    fn backend_failed(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId) {
        if matches!(
            self.backends[backend.0].state,
            BackendState::Down | BackendState::Removed
        ) {
            return;
        }
        // A backend that dies mid-drain was being decommissioned anyway:
        // run the full failure drain below (in-flight ops cannot complete
        // any more), but park it in `Removed` rather than `Down` so it
        // does not auto-rejoin on its next pong.
        let was_draining = self.backends[backend.0].state == BackendState::Draining;
        if self.barrier_for == Some(backend) {
            self.barrier_for = None;
            let buffered: Vec<_> = self.buffered_deliveries.drain(..).collect();
            for ev in buffered {
                self.apply_delivery(ctx, ev);
            }
            self.drain_shard_buffer(ctx);
        }
        if let Some(p) = self.parts.as_mut() {
            p.resync.remove(&backend.0);
        }
        self.recovery_started.remove(&backend);
        let applied = self.backends[backend.0].applied_seq;
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!(
                "[{}us] backend_failed b{} from state {:?} checkpoint={applied}",
                ctx.now().micros(),
                backend.0,
                self.backends[backend.0].state
            );
        }
        self.ship_busy.remove(&backend);
        self.backends[backend.0].state = if was_draining {
            let started = self.backends[backend.0].drain_started_us;
            self.backends[backend.0].drain_started_us = 0;
            self.metrics.counters.drains_completed += 1;
            self.metrics.drains.push((backend.0, started, ctx.now().micros()));
            BackendState::Removed
        } else {
            BackendState::Down
        };
        // The drain below fails this backend's in-flight ops without ever
        // calling `balancer.completed`, so its outstanding count would
        // survive the outage as phantom load and starve the replica under
        // LPRF when it rejoins.
        self.balancer.reset(backend);
        self.log.checkpoint(backend, applied);
        self.metrics.counters.failovers += 1;
        self.metrics.failover_times.push(ctx.now().micros());
        // A dead backend's latency history is meaningless when it returns;
        // any in-flight probe died with it.
        self.probe_op.remove(&backend);
        if self.cfg.quarantine.is_some() {
            self.health[backend.0].reset(ctx.now().micros());
            self.sync_health_events(backend.0);
        }
        // The adaptive gap history deliberately survives the eviction: the
        // silence distribution is a property of the backend and its link,
        // and wiping it on every flap would keep the detector permanently
        // naive about a still-degraded node (evict/rejoin storms).

        // Fail in-flight ops against this backend, in dispatch (op id)
        // order: map iteration order is not deterministic across processes,
        // and the replies below re-order downstream client retries.
        let mut stuck: Vec<(u64, Pending)> = self
            .pending
            .iter()
            .filter(|(_, p)| pending_backend(p) == Some(backend))
            .map(|(&op, p)| (op, p.clone()))
            .collect();
        stuck.sort_by_key(|&(op, _)| op);
        for (op, p) in stuck {
            self.pending.remove(&op);
            let op_t0 = self.op_started.remove(&op);
            // The outage began when the now-failed request was dispatched,
            // not when we finally noticed: date it back for MTTR honesty.
            if let (Some(t0), Pending::ClientExec { .. }) = (op_t0, &p) {
                self.metrics.availability.record(t0, false);
            }
            match p {
                Pending::ClientExec { session, .. } | Pending::Prepare { session, .. } => {
                    // In-flight transaction lost with the node (§4.3.3).
                    if let Some(s) = self.sessions.get_mut(session.0) {
                        s.in_tx = false;
                        s.wrote_in_tx = false;
                        s.sticky = None;
                    }
                    let seq = self.sessions.get(session.0).and_then(|s| s.current.as_ref().map(|c| c.stmt_seq));
                    if let Some(seq) = seq {
                        self.metrics.counters.lost_transactions += 1;
                        self.reply(ctx, session, seq, Err(ReplyError::Unavailable("backend failed mid-request".into())));
                    }
                }
                Pending::GroupExec { group, backend } => {
                    self.finish_group_exec(ctx, group, backend, DbResp::RestoreOk { op: 0 }, true);
                }
                Pending::GroupExecBatch { groups, backend } => {
                    for group in groups {
                        self.finish_group_exec(ctx, group, backend, DbResp::RestoreOk { op: 0 }, true);
                    }
                }
                Pending::DelegateCommit { session, .. }
                | Pending::ApplyWs { session: Some(session), .. }
                | Pending::PwCommit { session, .. }
                | Pending::PwApply { session: Some(session), .. } => {
                    self.finish_ws_part(ctx, Some(session), DbResp::ApplyErr { op: 0, err: SqlError::Internal("backend failed".into()) });
                }
                Pending::ApplyWsBatch { parts, .. } => {
                    for meta in parts {
                        self.finish_ws_part(ctx, meta.session, DbResp::ApplyErr { op: 0, err: SqlError::Internal("backend failed".into()) });
                    }
                }
                Pending::ShipApply { session: Some(session), .. } => {
                    self.finish_two_safe_part(ctx, session);
                }
                Pending::ShipFetch => self.shipping_inflight = false,
                _ => {}
            }
        }

        // Master-slave: promotion.
        if matches!(self.cfg.mode, Mode::MasterSlave { .. }) && backend == self.master {
            let lost = self.promote_new_master(ctx);
            self.metrics.counters.lost_transactions += lost;
        }
        // Sessions stuck to the failed backend lose their delegate.
        for s in self.sessions.values_mut() {
            if s.sticky == Some(backend) && !s.temp_pinned {
                s.sticky = None;
            }
        }
        self.update_degraded(ctx);
        // Failover changes the freshness picture (a promoted master is
        // fresh by definition): re-decide parked reads.
        self.drain_fresh_waiters(ctx);
    }

    /// Promote the most caught-up slave. Returns the 1-safe loss estimate
    /// (entries the dead master committed that the new master never saw).
    ///
    /// The other slaves' replication positions are expressed in the *dead*
    /// master's LSN space, which does not transfer to the new master (the
    /// real-world GTID problem): they are rebuilt with a full resync — the
    /// expensive failover aftermath §4.4.2 describes.
    fn promote_new_master(&mut self, ctx: &mut Ctx<'_, Msg>) -> u64 {
        let best = self
            .slaves()
            .into_iter()
            .max_by_key(|b| self.backends[b.0].applied_lsn);
        let Some(new_master) = best else { return 0 };
        let master_head = self.backends[self.master.0].applied_lsn;
        let lost = master_head.0.saturating_sub(self.backends[new_master.0].applied_lsn.0);
        self.master = new_master;
        // The new master's own binlog is its authoritative position now.
        self.backends[new_master.0].applied_lsn = Lsn(0); // refreshed by next Pong
        for b in self.slaves() {
            if b != new_master {
                self.start_full_resync(ctx, b);
            }
        }
        lost
    }

    /// `node_pos` is the ordered-statement position the node itself reports
    /// as durably applied (its pong). With volatile-by-fiat nodes it is
    /// always ≥ our checkpoint (the node cannot un-apply), so the `min` is
    /// a no-op; with real durability a lossy crash (lost or torn WAL tail)
    /// can leave the node *behind* what we saw acknowledged, and replaying
    /// from our own checkpoint would silently skip the lost suffix — §4.4.2:
    /// the database, not the middleware, knows what actually committed.
    fn start_log_recovery(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId, node_pos: u64) {
        let from = self.log.checkpoint_of(backend).unwrap_or(0).min(node_pos);
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[{}us] start_log_recovery b{} from={from} head={}", ctx.now().micros(), backend.0, self.log.head());
        }
        if self.log.read_after(from, 1).is_err() {
            // Log truncated past the checkpoint: full resync.
            self.start_full_resync(ctx, backend);
            return;
        }
        self.backends[backend.0].state = BackendState::Recovering { next: from, inflight: false };
        self.pump_recovery(ctx, backend);
    }

    fn pump_recovery(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId) {
        let BackendState::Recovering { next, inflight } = self.backends[backend.0].state else {
            return;
        };
        if inflight {
            return;
        }
        let head = self.log.head();
        let remaining = head.saturating_sub(next);
        if remaining == 0 {
            // Caught up: release any barrier and come online.
            self.backends[backend.0].state = BackendState::Online;
            self.backends[backend.0].applied_seq = head;
            self.backends[backend.0].cert_mark = Watermark::at(head);
            if let Some(start) = self.recovery_started.remove(&backend) {
                self.metrics.recoveries.push((backend.0, start, ctx.now().micros()));
            }
            self.update_degraded(ctx);
            if self.barrier_for == Some(backend) {
                self.barrier_for = None;
                while let Some(ev) = self.buffered_deliveries.pop_front() {
                    self.apply_delivery(ctx, ev);
                    if self.barrier_for.is_some() {
                        break;
                    }
                }
            }
            return;
        }
        if remaining <= self.cfg.barrier_threshold && self.barrier_for.is_none() {
            // Final hop: global barrier (live writes buffer until done).
            self.barrier_for = Some(backend);
        }
        let batch = match self.log.read_after(next, self.cfg.recovery_batch) {
            Ok(entries) => entries.to_vec(),
            Err(_) => {
                // The log was truncated (e.g. purged past this replica's
                // checkpoint) *after* recovery started: replay can no longer
                // reach the head. Silently returning here left the backend
                // in `Recovering` forever — escalate to a full resync, the
                // explicit needs-full-resync signal `read_after` now carries.
                self.start_full_resync(ctx, backend);
                return;
            }
        };
        if batch.is_empty() {
            return;
        }
        let upto = batch.last().unwrap().seq;
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!(
                "[{}us] recovery batch b{}: {}..={} (head {})",
                ctx.now().micros(),
                backend.0,
                batch.first().unwrap().seq,
                upto,
                self.log.head()
            );
        }
        let entries = crate::recovery::to_binlog_entries(&batch);
        let use_writesets = batch.iter().any(|e| e.is_writeset());
        let parallel_apply = self.cfg.replay_mode == ReplayMode::Parallel;
        self.backends[backend.0].state = BackendState::Recovering { next, inflight: true };
        self.send_db(ctx, backend, Pending::RecoveryBatch { backend, upto }, move |op| {
            // Ordered space: the node skips entries it already executed
            // before the failure was declared (idempotent replay).
            DbOp::ApplyBinlog { op, entries, use_writesets, parallel_apply, space: ApplySpace::Ordered }
        });
    }

    fn finish_recovery_batch(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId, upto: u64, resp: DbResp) {
        // The backend may have been re-failed while the batch was in flight.
        if !matches!(self.backends[backend.0].state, BackendState::Recovering { .. }) {
            return;
        }
        match resp {
            DbResp::ApplyOk { .. } => {
                self.backends[backend.0].applied_seq = upto;
                self.backends[backend.0].state =
                    BackendState::Recovering { next: upto, inflight: false };
                self.pump_recovery(ctx, backend);
            }
            other => {
                // Replay failed (divergence): fall back to full resync.
                if std::env::var("REPLIMID_DEBUG").is_ok() {
                    eprintln!("[recovery] replay batch failed on b{}: {other:?}", backend.0);
                }
                self.metrics.counters.divergence_detected += 1;
                self.start_full_resync(ctx, backend);
            }
        }
    }

    fn start_full_resync(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId) {
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[{}us] start_full_resync b{}", ctx.now().micros(), backend.0);
        }
        // Dump from a healthy source (master in ms mode, any online backend
        // otherwise).
        let source = if matches!(self.cfg.mode, Mode::MasterSlave { .. }) {
            if self.backends[self.master.0].online() { Some(self.master) } else { None }
        } else {
            self.healthy().into_iter().find(|&b| b != backend)
        };
        let Some(source) = source else {
            // No healthy peer to rebuild from: stay Down; the next pong
            // retries (single-replica clusters recover via the log replay
            // path, which is idempotent).
            self.backends[backend.0].state = BackendState::Down;
            return;
        };
        self.backends[backend.0].state = BackendState::Resyncing;
        // The dump will reflect every logged statement up to here (the dump
        // request travels the same FIFO link as the statement executions),
        // so post-resync catch-up replays from exactly this position.
        let log_pos = self.log.head();
        self.send_db(ctx, source, Pending::ResyncDumpReq { target: backend, log_pos }, move |op| {
            DbOp::Dump { op, include_programs: true, include_principals: true }
        });
    }

    fn finish_resync_dump(&mut self, ctx: &mut Ctx<'_, Msg>, target: BackendId, log_pos: u64, resp: DbResp) {
        let DbResp::DumpOut { dump, head, .. } = resp else { return };
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[{}us] resync dump for b{} head={head:?} state={:?}", ctx.now().micros(), target.0, self.backends[target.0].state);
        }
        if self.backends[target.0].state != BackendState::Resyncing {
            return;
        }
        self.send_db(
            ctx,
            target,
            Pending::ResyncRestore { backend: target, baseline: head, log_pos },
            move |op| DbOp::Restore { op, dump, baseline: head, ordered_baseline: log_pos },
        );
    }

    fn finish_resync_restore(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        backend: BackendId,
        baseline: Lsn,
        log_pos: u64,
        resp: DbResp,
    ) {
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[?] resync restore b{} baseline={baseline:?} ok={}", backend.0, matches!(resp, DbResp::RestoreOk { .. }));
        }
        if !matches!(resp, DbResp::RestoreOk { .. }) {
            return;
        }
        match self.cfg.mode {
            Mode::MasterSlave { .. } => {
                // The restored node rejoins as a slave consistent with the
                // master as of the dump; shipping continues from there.
                self.backends[backend.0].applied_lsn = baseline;
                self.backends[backend.0].state = BackendState::Online;
                if let Some(start) = self.recovery_started.remove(&backend) {
                    self.metrics.recoveries.push((backend.0, start, ctx.now().micros()));
                }
                self.update_degraded(ctx);
            }
            _ => {
                // Catch up from the recovery log starting at the position
                // the dump is consistent with.
                self.log.checkpoint(backend, log_pos);
                self.backends[backend.0].applied_seq = log_pos;
                self.backends[backend.0].state =
                    BackendState::Recovering { next: log_pos, inflight: false };
                self.pump_recovery(ctx, backend);
            }
        }
    }

    // ------------------------------------------------------------------
    // Partial replication: rejoin (dump + per-group log catch-up)
    // ------------------------------------------------------------------

    /// A returned backend rebuilds from a donor that hosts a superset of
    /// its groups (one dump covers every table it replays), then catches
    /// up per-group from the dump-time log heads. There is no per-group
    /// incremental path from the node's own durable state: group streams
    /// share a dense seq space per group, so positions are only comparable
    /// within a group, and the dump baseline is the one point all hosted
    /// groups agree on.
    fn start_pw_resync(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId) {
        let (target_hosted, heads) = {
            let p = self.parts.as_ref().unwrap();
            (p.hosted(backend.0), p.logs.iter().map(|l| l.head()).collect::<Vec<u64>>())
        };
        let donor = self.healthy().into_iter().find(|&b| {
            b != backend && {
                let p = self.parts.as_ref().unwrap();
                let dh = p.hosted(b.0);
                target_hosted.iter().all(|g| dh.contains(g))
            }
        });
        let Some(donor) = donor else {
            // No donor hosts all our groups: stay Down; the next pong
            // retries (a replicated group regains its host the moment a
            // peer comes back).
            self.backends[backend.0].state = BackendState::Down;
            return;
        };
        // The FIFO argument that makes `heads` a sound catch-up baseline —
        // every apply at or below it was *sent to the donor before the dump
        // request* — breaks for positions whose fan-out is deferred: a
        // prepared-but-undecided cross-group slot (fan-out happens at
        // decision time) or a failed apply awaiting its retry timer. Such a
        // position reaches the donor after the dump is taken, yet catch-up
        // skips everything at or below `heads` — a silent hole at the
        // rejoiner. Defer instead; the next pong retries once the window
        // clears.
        if self.pw_resync_blocked(&target_hosted, donor, &heads) {
            self.backends[backend.0].state = BackendState::Down;
            return;
        }
        self.backends[backend.0].state = BackendState::Resyncing;
        self.send_db(ctx, donor, Pending::PwResyncDump { target: backend, donor, heads }, move |op| {
            DbOp::Dump { op, include_programs: true, include_principals: true }
        });
    }

    /// Would a dump from `donor` be unsafe as a catch-up baseline of
    /// `heads` for a rejoiner hosting `hosted`? True while any
    /// prepared-but-undecided cross-group slot, queued apply retry to the
    /// donor, or refired retry still in flight to the donor sits at or
    /// below the baseline in a hosted group — those applies land at the
    /// donor *after* the dump, and catch-up would skip them.
    fn pw_resync_blocked(&self, hosted: &[usize], donor: BackendId, heads: &[u64]) -> bool {
        let p = self.parts.as_ref().unwrap();
        let below = |g: u32, pos: u64| {
            let g = g as usize;
            hosted.contains(&g) && pos <= heads.get(g).copied().unwrap_or(u64::MAX)
        };
        p.xtx.values().any(|x| {
            x.groups.iter().zip(&x.pos).any(|(&g, &pos)| pos != 0 && below(g, pos))
        }) || p.retries.values().any(|r| r.0 == donor && below(r.1, r.5))
            || self.pending.values().any(|pd| {
                matches!(pd, Pending::PwApply { backend, group, attempts, pos, .. }
                    if *backend == donor && *attempts > 0 && below(*group, *pos))
            })
    }

    /// Lowest log position in group `g` reserved by a still-undecided
    /// cross-group transaction. `None` when every reserved slot is decided.
    fn pw_undecided_floor(&self, g: usize) -> Option<u64> {
        let p = self.parts.as_ref()?;
        p.xtx
            .values()
            .flat_map(|x| x.groups.iter().zip(&x.pos))
            .filter(|&(&gg, &pos)| gg as usize == g && pos != 0)
            .map(|(_, &pos)| pos)
            .min()
    }

    fn finish_pw_resync_dump(&mut self, ctx: &mut Ctx<'_, Msg>, target: BackendId, donor: BackendId, heads: Vec<u64>, resp: DbResp) {
        let DbResp::DumpOut { dump, head, .. } = resp else { return };
        if self.backends[target.0].state != BackendState::Resyncing {
            return;
        }
        // An apply at or below the baseline can fail at the donor *after*
        // the resync started but *before* the dump was served (its retry
        // registers here before the dump response arrives, FIFO). The dump
        // then misses that position: abandon this attempt and let the next
        // pong start over.
        let hosted = self.parts.as_ref().unwrap().hosted(target.0);
        if self.pw_resync_blocked(&hosted, donor, &heads) {
            self.backends[target.0].state = BackendState::Down;
            return;
        }
        self.send_db(
            ctx,
            target,
            Pending::PwResyncRestore { backend: target, heads },
            move |op| DbOp::Restore { op, dump, baseline: head, ordered_baseline: 0 },
        );
    }

    fn finish_pw_resync_restore(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId, heads: Vec<u64>, resp: DbResp) {
        if !matches!(resp, DbResp::RestoreOk { .. }) {
            return;
        }
        let next: Vec<(usize, u64)> = {
            let p = self.parts.as_ref().unwrap();
            p.hosted(backend.0)
                .into_iter()
                .map(|g| (g, heads.get(g).copied().unwrap_or(0)))
                .collect()
        };
        self.parts.as_mut().unwrap().resync.insert(backend.0, PwCatchup { next, inflight: false });
        // The real cursor lives in `Partial::resync`; the state enum only
        // gates liveness/visibility decisions.
        self.backends[backend.0].state = BackendState::Recovering { next: 0, inflight: false };
        self.pump_pw_recovery(ctx, backend);
    }

    /// Per-group catch-up: replay each hosted group's log tail from the
    /// dump-time head, one batch in flight at a time, groups in index
    /// order. Mirrors [`pump_recovery`]'s barrier handling.
    fn pump_pw_recovery(&mut self, ctx: &mut Ctx<'_, Msg>, backend: BackendId) {
        if !matches!(self.backends[backend.0].state, BackendState::Recovering { .. }) {
            return;
        }
        let next = {
            let Some(cu) = self.parts.as_ref().and_then(|p| p.resync.get(&backend.0)) else {
                return;
            };
            if cu.inflight {
                return;
            }
            cu.next.clone()
        };
        let total_remaining: u64 = {
            let p = self.parts.as_ref().unwrap();
            next.iter().map(|&(g, n)| p.logs[g].head().saturating_sub(n)).sum()
        };
        if total_remaining == 0 {
            {
                let p = self.parts.as_mut().unwrap();
                for &(g, _) in &next {
                    p.marks[backend.0][g] = Watermark::at(p.logs[g].head());
                }
                p.resync.remove(&backend.0);
            }
            self.backends[backend.0].state = BackendState::Online;
            if let Some(start) = self.recovery_started.remove(&backend) {
                self.metrics.recoveries.push((backend.0, start, ctx.now().micros()));
            }
            self.update_degraded(ctx);
            if self.barrier_for == Some(backend) {
                self.barrier_for = None;
                while let Some(ev) = self.buffered_deliveries.pop_front() {
                    self.apply_delivery(ctx, ev);
                    if self.barrier_for.is_some() {
                        break;
                    }
                }
                self.drain_shard_buffer(ctx);
            }
            return;
        }
        // The final-hop barrier buffers shard deliveries — but an undecided
        // cross-group transaction needs further deliveries to decide, and
        // replay cannot cross its reserved slot. Arming the barrier then
        // would deadlock; wait for the decision first.
        if total_remaining <= self.cfg.barrier_threshold
            && self.barrier_for.is_none()
            && next.iter().all(|&(g, _)| self.pw_undecided_floor(g).is_none())
        {
            self.barrier_for = Some(backend);
        }
        // Replay must not cross a prepared-but-undecided cross-group slot:
        // its logged payload may still be voided by an abort decision.
        // Cap each group's replay just below its lowest undecided position;
        // the decision re-pumps (see `deliver_xprepare`).
        let Some((g, n, cap)) = next.iter().find_map(|&(g, n)| {
            let head = self.parts.as_ref().unwrap().logs[g].head();
            let cap = self.pw_undecided_floor(g).map(|f| f - 1).unwrap_or(head).min(head);
            (cap > n).then_some((g, n, cap))
        }) else {
            return;
        };
        let batch = match self.parts.as_ref().unwrap().logs[g].read_after(n, self.cfg.recovery_batch)
        {
            Ok(entries) => {
                entries.iter().take_while(|e| e.seq <= cap).cloned().collect::<Vec<_>>()
            }
            Err(_) => {
                // Group log truncated past the dump baseline: rebuild from
                // a fresh dump.
                self.parts.as_mut().unwrap().resync.remove(&backend.0);
                self.start_pw_resync(ctx, backend);
                return;
            }
        };
        if batch.is_empty() {
            return;
        }
        let upto = batch.last().unwrap().seq;
        let entries = crate::recovery::to_binlog_entries(&batch);
        let parallel_apply = self.cfg.replay_mode == ReplayMode::Parallel;
        self.parts.as_mut().unwrap().resync.get_mut(&backend.0).unwrap().inflight = true;
        self.send_db(ctx, backend, Pending::PwRecoveryBatch { backend, group: g, upto }, move |op| {
            // The restore wiped the node, so replay is exactly-once. Group
            // streams reuse overlapping dense seq spaces, so the ordered-
            // space dedup must NOT apply across groups: ApplySpace::None.
            DbOp::ApplyBinlog { op, entries, use_writesets: true, parallel_apply, space: ApplySpace::None }
        });
    }

    fn finish_pw_recovery_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        backend: BackendId,
        group: usize,
        upto: u64,
        resp: DbResp,
    ) {
        if !matches!(self.backends[backend.0].state, BackendState::Recovering { .. }) {
            return;
        }
        match resp {
            DbResp::ApplyOk { .. } => {
                if let Some(cu) = self.parts.as_mut().unwrap().resync.get_mut(&backend.0) {
                    cu.inflight = false;
                    if let Some(slot) = cu.next.iter_mut().find(|(g, _)| *g == group) {
                        slot.1 = upto;
                    }
                }
                self.pump_pw_recovery(ctx, backend);
            }
            _ => {
                self.metrics.counters.divergence_detected += 1;
                self.parts.as_mut().unwrap().resync.remove(&backend.0);
                self.start_pw_resync(ctx, backend);
            }
        }
    }

    /// Management operations (§4.4.1/§4.4.2).
    fn on_admin(&mut self, ctx: &mut Ctx<'_, Msg>, cmd: AdminCmd) {
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[{}us] admin {cmd:?}", ctx.now().micros());
        }
        match cmd {
            AdminCmd::Backup { backend, hot } => {
                if !hot {
                    // Cold backup: remove the replica from rotation first
                    // (its checkpoint is recorded); it rejoins through the
                    // recovery log after the dump, like any returning node.
                    self.backend_failed(ctx, backend);
                }
                let started_us = ctx.now().micros();
                self.send_db(
                    ctx,
                    backend,
                    Pending::BackupDump { backend, hot, started_us },
                    move |op| DbOp::Dump { op, include_programs: true, include_principals: true },
                );
            }
            AdminCmd::RemoveBackend { backend } => {
                self.backend_failed(ctx, backend);
            }
            AdminCmd::DrainBackend { backend } => {
                self.drain_backend(ctx, backend);
            }
            AdminCmd::AddBackend { backend } => {
                self.add_backend(ctx, backend);
            }
            AdminCmd::EndSession { session } => {
                // Teardown rides the total order so every peer drops its
                // replicated copy of the session state at the same point.
                // Under partial replication any one stream works (teardown
                // is group-agnostic); group 0 keeps it deterministic.
                if self.parts.is_some() {
                    self.shard_publish_write(ctx, 0, ReplEvent::SessionEnd { session });
                } else {
                    self.publish_write(ctx, ReplEvent::SessionEnd { session });
                }
            }
        }
    }

    fn op_timed_out(&mut self, ctx: &mut Ctx<'_, Msg>, op: u64) {
        let Some(p) = self.pending.get(&op).cloned() else { return };
        if std::env::var("REPLIMID_DEBUG").is_ok() {
            eprintln!("[{}us] op {op} timed out: {p:?}", ctx.now().micros());
        }
        self.pending.remove(&op);
        self.op_started.remove(&op);
        match &p {
            Pending::ShipFetch => self.shipping_inflight = false,
            Pending::ShipApply { backend, session, .. } => {
                self.ship_busy.remove(backend);
                if let Some(session) = *session {
                    self.finish_two_safe_part(ctx, session);
                }
            }
            // Pings to a down backend are *expected* to be lost; real
            // failures are detected by the silent-too-long check in
            // ping_tick. Treating a stale ping timeout as a failure would
            // kill a backend that just finished recovering.
            Pending::Ping { .. } => return,
            // The batch op is already out of `pending`, so the
            // backend_failed drain below cannot see it: fail its groups
            // here or their origins hang forever.
            Pending::GroupExecBatch { groups, backend } => {
                for &group in groups {
                    self.finish_group_exec(ctx, group, *backend, DbResp::RestoreOk { op: 0 }, true);
                }
            }
            // Same already-out-of-`pending` reasoning as GroupExecBatch.
            Pending::ApplyWsBatch { parts, .. } => {
                for meta in parts.clone() {
                    self.finish_ws_part(
                        ctx,
                        meta.session,
                        DbResp::ApplyErr { op: 0, err: SqlError::Internal("backend failed".into()) },
                    );
                }
            }
            _ => {}
        }
        if let Some(b) = pending_backend(&p) {
            if !ctx.oracle_is_crashed(self.backends[b.0].node) {
                self.metrics.counters.false_evictions += 1;
            }
            self.backend_failed(ctx, b);
        }
    }

    // ------------------------------------------------------------------
    // Introspection for the harness
    // ------------------------------------------------------------------

    pub fn master_backend(&self) -> BackendId {
        self.master
    }

    pub fn online_backends(&self) -> usize {
        self.healthy().len()
    }

    pub fn backend_applied_lsn(&self, b: BackendId) -> Lsn {
        self.backends[b.0].applied_lsn
    }

    pub fn recovery_state(&self, b: BackendId) -> String {
        format!("{:?}", self.backends[b.0].state)
    }

    /// Quarantine state of a backend (harness/test introspection).
    pub fn backend_health_state(&self, b: BackendId) -> crate::health::HealthState {
        self.health[b.0].state()
    }

    /// True if the cluster is currently in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.metrics.degraded.is_degraded()
    }

    /// Live session entries (leak regression tests).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Session-keyed residue: (session entries, open request metas,
    /// stashed 2-safe bodies). All three must return to zero once every
    /// session has ended — the PR 6 leak regression asserts exactly that.
    pub fn session_residue(&self) -> (usize, usize, usize) {
        let mut reqs = 0;
        let mut bodies = 0;
        for (_, s) in self.sessions.iter() {
            reqs += s.open_reqs.len();
            if s.two_safe_body.is_some() {
                bodies += 1;
            }
        }
        (self.sessions.len(), reqs, bodies)
    }

    /// Reads currently parked waiting for a fresh replica.
    pub fn fresh_waiter_count(&self) -> usize {
        self.fresh_waiters.len()
    }

    /// Drains still waiting on in-flight work (harness introspection).
    pub fn drains_in_progress(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.state == BackendState::Draining)
            .count()
    }

    /// Debug snapshot: per-backend (state, applied_lsn, applied_seq) plus
    /// shipping flags.
    pub fn debug_state(&self) -> String {
        let per: Vec<String> = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| {
                format!(
                    "b{i}:{:?} lsn={} seq={} pong@{}",
                    b.state, b.applied_lsn.0, b.applied_seq, b.last_pong_us
                )
            })
            .collect();
        format!(
            "master={} ship_inflight={} ship_busy={:?} pending={} [{}]",
            self.master.0,
            self.shipping_inflight,
            self.ship_busy,
            self.pending.len(),
            per.join(" | ")
        )
    }

    /// Number of table groups under the active placement (1 = global).
    pub fn partial_groups(&self) -> usize {
        self.parts.as_ref().map(|p| p.groups()).unwrap_or(1)
    }

    /// Per-(backend, group) applied watermark (partial mode only).
    pub fn pw_mark(&self, b: BackendId, g: usize) -> u64 {
        self.parts.as_ref().map(|p| p.marks[b.0][g].value()).unwrap_or(0)
    }

    /// Cross-group transactions with at least one vote still outstanding.
    pub fn xtx_inflight(&self) -> usize {
        self.parts.as_ref().map(|p| p.xtx.len()).unwrap_or(0)
    }
}

fn pending_backend(p: &Pending) -> Option<BackendId> {
    match p {
        Pending::ClientExec { backend, .. }
        | Pending::GroupExec { backend, .. }
        | Pending::GroupExecBatch { backend, .. }
        | Pending::ApplyWs { backend, .. }
        | Pending::Prepare { backend, .. }
        | Pending::DelegateCommit { backend, .. }
        | Pending::Ping { backend }
        | Pending::ShipApply { backend, .. }
        | Pending::RecoveryBatch { backend, .. }
        | Pending::BackupDump { backend, .. }
        | Pending::ResyncRestore { backend, .. }
        | Pending::PwCommit { backend, .. }
        | Pending::PwApply { backend, .. }
        | Pending::ApplyWsBatch { backend, .. }
        | Pending::PwResyncRestore { backend, .. }
        | Pending::PwRecoveryBatch { backend, .. } => Some(*backend),
        // PwResyncDump targets the donor, which is not `target`; like
        // ResyncDumpReq, a timeout fails the donor via the generic path.
        _ => None,
    }
}

impl Actor<Msg> for Middleware {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.parts.is_some() {
            let actions = self.parts.as_mut().unwrap().member.start(ctx.now().micros());
            self.run_shard_actions(ctx, actions);
        } else {
            let actions = self.group.start(ctx.now().micros());
            self.run_gcs_actions(ctx, actions);
        }
        ctx.set_timer(self.cfg.heartbeat.interval_us, TIMER_PING);
        if let Mode::MasterSlave { ship_interval_us, .. } = self.cfg.mode {
            ctx.set_timer(ship_interval_us, TIMER_SHIP);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Admin(cmd) => self.on_admin(ctx, cmd),
            Msg::Request(req) => self.on_request(ctx, from, req),
            Msg::DbR(resp) => self.on_db_resp(ctx, resp),
            Msg::Group(gmsg) => {
                let member = self
                    .peers
                    .iter()
                    .position(|&n| n == from)
                    .map(MemberId)
                    .unwrap_or(MemberId(usize::MAX));
                let actions = self.group.on_message(member, gmsg, ctx.now().micros());
                self.run_gcs_actions(ctx, actions);
            }
            Msg::GroupShard { group, msg } => {
                let member = self
                    .peers
                    .iter()
                    .position(|&n| n == from)
                    .map(MemberId)
                    .unwrap_or(MemberId(usize::MAX));
                let Some(parts) = self.parts.as_mut() else { return };
                let actions = parts.member.on_message(group as usize, member, msg, ctx.now().micros());
                self.run_shard_actions(ctx, actions);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            replimid_gcs::TICK_TAG => {
                let actions = self.group.on_timer(tag, ctx.now().micros());
                self.run_gcs_actions(ctx, actions);
            }
            TIMER_PING => self.ping_tick(ctx),
            TIMER_SHIP => self.ship_tick(ctx),
            TIMER_BATCH => {
                self.batch_timer_armed = false;
                self.flush_batch(ctx, FlushReason::Deadline);
            }
            t if (SHARD_TICK_BASE..SHARD_TICK_BASE + MAX_GROUPS as u64).contains(&t) => {
                let g = (t - SHARD_TICK_BASE) as usize;
                let Some(parts) = self.parts.as_mut() else { return };
                let actions = parts.member.on_timer(g, replimid_gcs::TICK_TAG, ctx.now().micros());
                self.run_shard_actions(ctx, actions);
            }
            t if (SHARD_BATCH_BASE..SHARD_BATCH_BASE + MAX_GROUPS as u64).contains(&t) => {
                let g = (t - SHARD_BATCH_BASE) as usize;
                self.flush_shard_batch(ctx, g, FlushReason::Deadline);
            }
            t if t >= TIMER_OP_BASE => {
                let op = t - TIMER_OP_BASE;
                if self.pending.contains_key(&op) {
                    self.op_timed_out(ctx, op);
                }
            }
            t if t >= TIMER_FRESH_BASE => self.fresh_wait_timed_out(ctx, t - TIMER_FRESH_BASE),
            t if t >= TIMER_RETRY_BASE => self.fire_apply_retry(ctx, t - TIMER_RETRY_BASE),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_advances_contiguously() {
        let mut w = Watermark::new();
        assert_eq!(w.value(), 0);
        w.mark(2);
        assert_eq!(w.value(), 0, "gap at 1");
        w.mark(1);
        assert_eq!(w.value(), 2, "contiguous through 2");
        w.mark(3);
        assert_eq!(w.value(), 3);
        // Stale marks are ignored.
        w.mark(1);
        assert_eq!(w.value(), 3);
    }

    #[test]
    fn watermark_at_position() {
        let mut w = Watermark::at(100);
        assert_eq!(w.value(), 100);
        w.mark(101);
        assert_eq!(w.value(), 101);
        w.mark(50);
        assert_eq!(w.value(), 101);
    }

    #[test]
    fn watermark_out_of_order_batch() {
        let mut w = Watermark::new();
        for pos in [5, 3, 1, 4, 2] {
            w.mark(pos);
        }
        assert_eq!(w.value(), 5);
    }

    #[test]
    fn mode_defaults_are_sane() {
        let cfg = MwConfig::defaults(Mode::MultiMasterWriteset);
        assert!(cfg.op_timeout_us >= cfg.heartbeat.timeout_us);
        assert!(!cfg.require_majority);
        assert!(cfg.barrier_threshold > 0);
    }
}
