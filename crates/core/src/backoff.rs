//! Deterministic capped exponential backoff with jitter.
//!
//! Clients that retry aborted transactions or fail over after a timeout
//! with zero delay synchronize into retry storms: every client that lost a
//! request to the same failed backend resends at the same instant, and the
//! surviving replicas absorb a thundering herd exactly when they are most
//! loaded (the paper's §4.3.4.2 load-induced-timeout spiral). The standard
//! antidote is exponential backoff with jitter; "equal jitter" (half
//! deterministic, half uniform) keeps a guaranteed minimum delay so two
//! clients with adjacent RNG draws still spread out.
//!
//! All randomness comes from the caller's seeded [`DetRng`], so schedules
//! are replayable bit-for-bit.

use replimid_det::DetRng;

/// Backoff policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay scale for the first retry.
    pub base_us: u64,
    /// Ceiling on the exponential growth.
    pub cap_us: u64,
}

impl BackoffConfig {
    /// Client-retry tuning: first retry ~2-4ms, capped at 200ms.
    pub fn client() -> Self {
        BackoffConfig { base_us: 4_000, cap_us: 200_000 }
    }
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig::client()
    }
}

/// The delay before retry number `attempt` (0-based): equal jitter over
/// `min(base << attempt, cap)` — at least half the exponential window,
/// at most the whole window.
pub fn delay_us(cfg: BackoffConfig, attempt: u32, rng: &mut DetRng) -> u64 {
    // The exponential factor saturates rather than clamping the exponent:
    // `1 << attempt.min(32)` used to plateau the window at `base << 32`,
    // below the configured cap whenever `cap_us > base_us << 32`, so huge
    // attempt counts stopped short of the ceiling. `checked_shl` is None
    // once the shift reaches the bit width, at which point the factor (and
    // the window, via `saturating_mul`) pins to the cap exactly.
    let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
    let window = cfg.base_us.saturating_mul(factor).min(cfg.cap_us).max(1);
    let half = window / 2;
    half + rng.gen_range(0..=window - half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_exponentially_and_caps() {
        let cfg = BackoffConfig { base_us: 1_000, cap_us: 16_000 };
        let mut rng = DetRng::seed_from_u64(1);
        for attempt in 0..12 {
            let window = (1_000u64 << attempt.min(32)).min(16_000);
            let d = delay_us(cfg, attempt, &mut rng);
            assert!(d >= window / 2, "attempt {attempt}: {d} < min");
            assert!(d <= window, "attempt {attempt}: {d} > window");
        }
        // Far past the cap, the window stays put.
        let d = delay_us(cfg, 30, &mut rng);
        assert!((8_000..=16_000).contains(&d));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let cfg = BackoffConfig::client();
        let mut rng = DetRng::seed_from_u64(2);
        let d = delay_us(cfg, u32::MAX, &mut rng);
        assert!(d <= cfg.cap_us);
    }

    #[test]
    fn jitter_spreads_adjacent_clients() {
        let cfg = BackoffConfig { base_us: 10_000, cap_us: 80_000 };
        let mut a = DetRng::seed_from_u64(100);
        let mut b = DetRng::seed_from_u64(101);
        let spread = (0..20)
            .filter(|&i| delay_us(cfg, i % 4, &mut a) != delay_us(cfg, i % 4, &mut b))
            .count();
        assert!(spread >= 15, "only {spread}/20 differed");
    }

    /// The delay window `min(base·2^attempt, cap)` — recomputed here in
    /// wide arithmetic, independent of the implementation — is monotone
    /// nondecreasing in the attempt number, reaches the cap exactly once
    /// the exponential passes it, and bounds every drawn delay to
    /// `[window/2, window]`, for any config and seed. The old
    /// `1 << attempt.min(32)` clamp failed this: with `cap > base << 32`
    /// the window plateaued below the cap for attempts ≥ 32.
    #[test]
    fn delays_are_monotone_up_to_the_cap_for_all_attempts() {
        replimid_det::detcheck::check("backoff_monotone_up_to_cap", 64, |rng| {
            let cfg = BackoffConfig {
                base_us: rng.gen_range(0..=1u64 << 40),
                cap_us: rng.gen_range(1..=u64::MAX >> 1),
            };
            let mut prev_window = 0u64;
            for attempt in (0..=70u32).chain([100, 10_000, u32::MAX]) {
                let factor = 1u128 << attempt.min(127);
                let window = (cfg.base_us as u128)
                    .saturating_mul(factor)
                    .min(cfg.cap_us as u128)
                    .max(1) as u64;
                assert!(
                    window >= prev_window,
                    "window shrank at attempt {attempt}: {window} < {prev_window} ({cfg:?})"
                );
                if attempt >= 64 && cfg.base_us > 0 {
                    assert_eq!(window, cfg.cap_us.max(1), "cap not reached at {attempt}");
                }
                let d = delay_us(cfg, attempt, rng);
                assert!(d >= window / 2, "attempt {attempt}: {d} below window floor ({cfg:?})");
                assert!(d <= window, "attempt {attempt}: {d} above window ({cfg:?})");
                prev_window = window;
            }
        });
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = BackoffConfig::client();
        let draw = |seed| {
            let mut rng = DetRng::seed_from_u64(seed);
            (0..8).map(|i| delay_us(cfg, i, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
    }
}
