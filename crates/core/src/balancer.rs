//! Load balancing across backend replicas (§3.2).
//!
//! Two orthogonal axes, exactly as the paper frames them:
//!
//! * **Granularity** — connection-level (a session sticks to one replica for
//!   its lifetime), transaction-level (chosen per transaction), or
//!   query-level (chosen per statement).
//! * **Policy** — round-robin, LPRF (least pending requests first, the
//!   C-JDBC policy the paper cites for heterogeneous clusters, §4.1.3), or
//!   static weights.

use crate::msg::BackendId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    Connection,
    Transaction,
    Query,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    RoundRobin,
    /// Least pending requests first: routes to the replica with the fewest
    /// outstanding operations — adapts to heterogeneous/degraded replicas.
    Lprf,
    /// Static weights (requests distributed proportionally). Weights are
    /// per-backend; missing entries default to 1.
    Weighted(Vec<u32>),
}

/// Balancer state: tracks outstanding requests per backend (for LPRF) and
/// the round-robin cursor.
#[derive(Debug, Clone)]
pub struct Balancer {
    pub granularity: Granularity,
    policy: Policy,
    /// Round-robin position in *stable backend id* space: the next pick is
    /// the first healthy id at or after this, circularly. Indexing into the
    /// healthy slice instead would re-pick the same replica when the
    /// healthy set shrinks or grows mid-cycle.
    rr_cursor: usize,
    outstanding: Vec<u64>,
    weighted_credit: Vec<f64>,
    /// Freshness-aware LPRF: per-backend score penalty derived from
    /// replication lag (positions behind the freshest replica, bucketed by
    /// the middleware). All-zero — the default — leaves every policy's
    /// pick bit-identical to plain least-pending.
    lag_penalty: Vec<u64>,
    /// LPRF picks where the lag penalty changed the winner (a chronically
    /// lagging replica shed the read before tripping freshness parking).
    pub lag_demotions: u64,
}

impl Balancer {
    pub fn new(granularity: Granularity, policy: Policy, backends: usize) -> Self {
        Balancer {
            granularity,
            policy,
            rr_cursor: 0,
            outstanding: vec![0; backends],
            weighted_credit: vec![0.0; backends],
            lag_penalty: vec![0; backends],
            lag_demotions: 0,
        }
    }

    /// Set the lag-derived LPRF penalty for `b` (0 clears it). The caller
    /// translates replication lag into pending-request-equivalents.
    pub fn set_lag_penalty(&mut self, b: BackendId, penalty: u64) {
        if let Some(p) = self.lag_penalty.get_mut(b.0) {
            *p = penalty;
        }
    }

    pub fn resize(&mut self, backends: usize) {
        // Shrinking truncates per-id state, so a later grow re-creates the
        // dropped ids zeroed instead of resurrecting their old counters: an
        // id that comes back is a fresh replica, not the one that left with
        // requests still charged against it.
        self.outstanding.truncate(backends);
        self.weighted_credit.truncate(backends);
        self.lag_penalty.truncate(backends);
        self.outstanding.resize(backends, 0);
        self.weighted_credit.resize(backends, 0.0);
        self.lag_penalty.resize(backends, 0);
        // The stable-id cursor may point past the new range after a shrink.
        if backends > 0 {
            self.rr_cursor %= backends;
        } else {
            self.rr_cursor = 0;
        }
    }

    /// Forget per-backend scheduler state for `b` (failure eviction). Ops
    /// in flight to a failed backend are drained as failures and never
    /// reach [`completed`](Self::completed), so without this the phantom
    /// `outstanding` count survives the outage and LPRF starves the replica
    /// when it rejoins (and Weighted hands it a stale credit balance).
    pub fn reset(&mut self, b: BackendId) {
        if let Some(o) = self.outstanding.get_mut(b.0) {
            *o = 0;
        }
        if let Some(c) = self.weighted_credit.get_mut(b.0) {
            *c = 0.0;
        }
        if let Some(p) = self.lag_penalty.get_mut(b.0) {
            *p = 0;
        }
    }

    /// Pick a backend among `healthy` (indices into the backend list).
    /// Returns `None` when no replica is available.
    pub fn pick(&mut self, healthy: &[BackendId]) -> Option<BackendId> {
        if healthy.is_empty() {
            return None;
        }
        match &self.policy {
            Policy::RoundRobin => {
                let modulus = healthy
                    .iter()
                    .map(|b| b.0 + 1)
                    .max()
                    .unwrap_or(0)
                    .max(self.outstanding.len())
                    .max(1);
                let cursor = self.rr_cursor % modulus;
                let choice = healthy
                    .iter()
                    .copied()
                    .min_by_key(|b| (b.0 + modulus - cursor) % modulus)?;
                self.rr_cursor = (choice.0 + 1) % modulus;
                Some(choice)
            }
            Policy::Lprf => {
                let score = |b: &BackendId| {
                    self.outstanding.get(b.0).copied().unwrap_or(0)
                        + self.lag_penalty.get(b.0).copied().unwrap_or(0)
                };
                let choice = healthy.iter().copied().min_by_key(|b| (score(b), b.0));
                // With every penalty zero, `score` == outstanding and this
                // is bit-identical to plain least-pending (same tie-break).
                if self.lag_penalty.iter().any(|&p| p > 0) {
                    let plain = healthy.iter().copied().min_by_key(|b| {
                        (self.outstanding.get(b.0).copied().unwrap_or(0), b.0)
                    });
                    if plain != choice {
                        self.lag_demotions += 1;
                    }
                }
                choice
            }
            Policy::Weighted(weights) => {
                // Deterministic proportional selection: accumulate credit by
                // weight, pick the richest, then spend it.
                for &b in healthy {
                    let w = weights.get(b.0).copied().unwrap_or(1).max(1) as f64;
                    self.weighted_credit[b.0] += w;
                }
                let best = healthy
                    .iter()
                    .copied()
                    .max_by(|a, b| {
                        self.weighted_credit[a.0]
                            .partial_cmp(&self.weighted_credit[b.0])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.0.cmp(&a.0))
                    })?;
                let total: f64 = healthy
                    .iter()
                    .map(|b| weights.get(b.0).copied().unwrap_or(1).max(1) as f64)
                    .sum();
                self.weighted_credit[best.0] -= total;
                Some(best)
            }
        }
    }

    /// Pick among `candidates` restricted by a parallel `eligible` mask
    /// (freshness-constrained routing). Delegates to [`pick`](Self::pick)
    /// on the filtered slice, so the policy invariants carry over
    /// unchanged — notably the stable-id round-robin cursor, which keeps
    /// rotating fairly even when every call filters a different subset
    /// (the same property `round_robin_no_repeat_when_replica_fails_mid_rotation`
    /// pins down for health filtering). Returns `None` when no candidate
    /// is eligible; the caller decides whether to wait or fall back.
    pub fn pick_fresh(&mut self, candidates: &[BackendId], eligible: &[bool]) -> Option<BackendId> {
        debug_assert_eq!(candidates.len(), eligible.len());
        if eligible.iter().all(|&e| e) {
            return self.pick(candidates);
        }
        let filtered: Vec<BackendId> = candidates
            .iter()
            .zip(eligible)
            .filter_map(|(&b, &e)| e.then_some(b))
            .collect();
        if filtered.is_empty() {
            return None;
        }
        self.pick(&filtered)
    }

    /// Track an operation dispatched to `b` (LPRF input).
    pub fn dispatched(&mut self, b: BackendId) {
        if let Some(o) = self.outstanding.get_mut(b.0) {
            *o += 1;
        }
    }

    /// Track an operation completed at `b`.
    pub fn completed(&mut self, b: BackendId) {
        if let Some(o) = self.outstanding.get_mut(b.0) {
            *o = o.saturating_sub(1);
        }
    }

    pub fn outstanding(&self, b: BackendId) -> u64 {
        self.outstanding.get(b.0).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<BackendId> {
        v.iter().map(|&i| BackendId(i)).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut b = Balancer::new(Granularity::Query, Policy::RoundRobin, 3);
        let healthy = ids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|_| b.pick(&healthy).unwrap().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_unhealthy() {
        let mut b = Balancer::new(Granularity::Query, Policy::RoundRobin, 3);
        let healthy = ids(&[0, 2]);
        let picks: Vec<usize> = (0..4).map(|_| b.pick(&healthy).unwrap().0).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn round_robin_no_repeat_when_replica_fails_mid_rotation() {
        // Regression: with the cursor taken modulo healthy.len(), removing
        // backend 0 after picks [0, 1] made the next pick index 2 % 2 = 0,
        // i.e. backend 1 again — the same replica twice in a row.
        let mut b = Balancer::new(Granularity::Query, Policy::RoundRobin, 3);
        let all = ids(&[0, 1, 2]);
        assert_eq!(b.pick(&all), Some(BackendId(0)));
        assert_eq!(b.pick(&all), Some(BackendId(1)));
        let degraded = ids(&[1, 2]);
        assert_eq!(b.pick(&degraded), Some(BackendId(2)), "must not re-pick 1");
        assert_eq!(b.pick(&degraded), Some(BackendId(1)));
        assert_eq!(b.pick(&degraded), Some(BackendId(2)));
        // Backend 0 recovers: the rotation folds it back in at its id slot.
        assert_eq!(b.pick(&all), Some(BackendId(0)));
        assert_eq!(b.pick(&all), Some(BackendId(1)));
    }

    #[test]
    fn round_robin_no_repeat_when_set_grows_mid_rotation() {
        let mut b = Balancer::new(Granularity::Query, Policy::RoundRobin, 3);
        let two = ids(&[0, 1]);
        assert_eq!(b.pick(&two), Some(BackendId(0)));
        assert_eq!(b.pick(&two), Some(BackendId(1)));
        let three = ids(&[0, 1, 2]);
        assert_eq!(b.pick(&three), Some(BackendId(2)), "new replica joins in turn");
        assert_eq!(b.pick(&three), Some(BackendId(0)));
    }

    #[test]
    fn lprf_lag_penalty_demotes_lagging_replica() {
        let mut b = Balancer::new(Granularity::Query, Policy::Lprf, 3);
        let healthy = ids(&[0, 1, 2]);
        // Plain LPRF would pick 0 (tie-break on id); a lag penalty on 0
        // demotes it and counts the changed decision.
        b.set_lag_penalty(BackendId(0), 3);
        assert_eq!(b.pick(&healthy), Some(BackendId(1)));
        assert_eq!(b.lag_demotions, 1);
        // Penalty cleared: back to plain least-pending, no new demotion.
        b.set_lag_penalty(BackendId(0), 0);
        assert_eq!(b.pick(&healthy), Some(BackendId(0)));
        assert_eq!(b.lag_demotions, 1);
        // reset() clears the penalty of an evicted backend.
        b.set_lag_penalty(BackendId(2), 9);
        b.reset(BackendId(2));
        assert_eq!(b.pick(&healthy), Some(BackendId(0)));
        assert_eq!(b.lag_demotions, 1);
    }

    #[test]
    fn lprf_prefers_least_loaded() {
        let mut b = Balancer::new(Granularity::Query, Policy::Lprf, 3);
        let healthy = ids(&[0, 1, 2]);
        b.dispatched(BackendId(0));
        b.dispatched(BackendId(0));
        b.dispatched(BackendId(1));
        assert_eq!(b.pick(&healthy), Some(BackendId(2)));
        b.dispatched(BackendId(2));
        b.dispatched(BackendId(2));
        b.dispatched(BackendId(2));
        assert_eq!(b.pick(&healthy), Some(BackendId(1)));
        b.completed(BackendId(0));
        b.completed(BackendId(0));
        assert_eq!(b.pick(&healthy), Some(BackendId(0)));
    }

    #[test]
    fn weighted_is_proportional() {
        // Backend 0 has weight 3, backend 1 weight 1.
        let mut b = Balancer::new(Granularity::Query, Policy::Weighted(vec![3, 1]), 2);
        let healthy = ids(&[0, 1]);
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            counts[b.pick(&healthy).unwrap().0] += 1;
        }
        assert_eq!(counts[0] + counts[1], 400);
        assert!((290..=310).contains(&counts[0]), "counts {counts:?}");
    }

    #[test]
    fn resize_shrink_then_grow_does_not_resurrect_counters() {
        let mut b = Balancer::new(Granularity::Query, Policy::Lprf, 4);
        for _ in 0..5 {
            b.dispatched(BackendId(3));
        }
        b.dispatched(BackendId(2));
        b.resize(2); // ids 2 and 3 leave with ops still charged
        b.resize(4); // the id range grows back
        assert_eq!(b.outstanding(BackendId(2)), 0, "stale counter resurrected");
        assert_eq!(b.outstanding(BackendId(3)), 0, "stale counter resurrected");
        // LPRF must treat the re-grown ids as fresh, not as loaded.
        b.dispatched(BackendId(0));
        assert_eq!(b.pick(&ids(&[0, 3])), Some(BackendId(3)));
    }

    #[test]
    fn eviction_reset_clears_phantom_outstanding() {
        let mut b = Balancer::new(Granularity::Query, Policy::Lprf, 3);
        // Backend 1 dies with 3 ops in flight: they drain as failures and
        // are never `completed`.
        for _ in 0..3 {
            b.dispatched(BackendId(1));
        }
        b.reset(BackendId(1));
        assert_eq!(b.outstanding(BackendId(1)), 0);
        // After rejoin, LPRF must not starve the replica behind phantom load.
        b.dispatched(BackendId(0));
        b.dispatched(BackendId(2));
        assert_eq!(b.pick(&ids(&[0, 1, 2])), Some(BackendId(1)));
    }

    #[test]
    fn no_backend_means_none() {
        let mut b = Balancer::new(Granularity::Query, Policy::Lprf, 2);
        assert_eq!(b.pick(&[]), None);
    }

    #[test]
    fn pick_fresh_filters_by_mask() {
        let mut b = Balancer::new(Granularity::Query, Policy::RoundRobin, 3);
        let all = ids(&[0, 1, 2]);
        // Only backend 1 is fresh: it must be picked regardless of cursor.
        assert_eq!(b.pick_fresh(&all, &[false, true, false]), Some(BackendId(1)));
        assert_eq!(b.pick_fresh(&all, &[false, true, false]), Some(BackendId(1)));
        // Nobody fresh: the caller gets None, never a stale replica.
        assert_eq!(b.pick_fresh(&all, &[false, false, false]), None);
        // All fresh: behaves exactly like pick().
        assert_eq!(b.pick_fresh(&all, &[true, true, true]), Some(BackendId(2)));
    }

    #[test]
    fn filtered_pick_fairness_bounded_round_robin() {
        // Freshness filtering hands pick() a *different* subset on almost
        // every call. The stable-id cursor must still spread load: over
        // many picks with random ~75%-eligible masks, every backend gets
        // a share, and no backend hogs the rotation.
        let mut b = Balancer::new(Granularity::Query, Policy::RoundRobin, 4);
        let all = ids(&[0, 1, 2, 3]);
        let mut counts = [0u64; 4];
        let mut x: u64 = 0x9e3779b97f4a7c15; // deterministic xorshift
        for _ in 0..4000 {
            let mut mask = [false; 4];
            loop {
                for m in mask.iter_mut() {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    *m = !x.is_multiple_of(4); // eligible with p = 3/4
                }
                if mask.iter().any(|&m| m) {
                    break;
                }
            }
            let picked = b.pick_fresh(&all, &mask).unwrap();
            assert!(mask[picked.0], "picked a masked-out backend");
            counts[picked.0] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 0, "a backend was starved: {counts:?}");
        assert!(max <= 2 * min, "rotation skew out of bounds: {counts:?}");
    }

    #[test]
    fn filtered_pick_fairness_bounded_lprf() {
        // LPRF under the same masks with a dispatch/complete model: each
        // pick dispatches one op that completes two picks later. LPRF
        // equalizes queue depth, not rotation — its low-id tie-break skews
        // pick counts at light load — so unlike round-robin the guarantee
        // is eligibility plus starvation-freedom, not the 2x bound.
        let mut b = Balancer::new(Granularity::Query, Policy::Lprf, 4);
        let all = ids(&[0, 1, 2, 3]);
        let mut counts = [0u64; 4];
        let mut inflight: Vec<BackendId> = Vec::new();
        let mut x: u64 = 0x243f6a8885a308d3;
        for _ in 0..4000 {
            let mut mask = [false; 4];
            loop {
                for m in mask.iter_mut() {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    *m = !x.is_multiple_of(4);
                }
                if mask.iter().any(|&m| m) {
                    break;
                }
            }
            let picked = b.pick_fresh(&all, &mask).unwrap();
            assert!(mask[picked.0]);
            counts[picked.0] += 1;
            b.dispatched(picked);
            inflight.push(picked);
            if inflight.len() > 2 {
                b.completed(inflight.remove(0));
            }
        }
        let min = *counts.iter().min().unwrap();
        assert!(min > 0, "a backend was starved: {counts:?}");
    }
}
