//! Flat session storage for the middleware hot path.
//!
//! `std::collections::HashMap<SessionId, Sess>` worked at thousands of
//! sessions but is the wrong shape for the 10⁵–10⁶ range the paper's
//! "middleware scales reads" claim implies: SipHash on every lookup,
//! per-entry boxes scattered across the heap, and — worse for this
//! codebase — process-randomized iteration order, which forces every
//! whole-map walk to collect-and-sort to stay deterministic.
//!
//! [`SessionTable`] replaces it with two dense arrays:
//!
//! * a **slab** of value slots reusing freed indices LIFO, so per-session
//!   cost is exactly the value's bytes plus one index entry, and whole-map
//!   iteration is a linear scan in slot order (deterministic: slot
//!   assignment depends only on the insertion/removal history, which is
//!   itself deterministic in the simulator);
//! * an **open-addressed index** (power-of-two capacity, linear probing,
//!   tombstones, splitmix64 key scrambler) mapping the u64 session id to
//!   its slot.
//!
//! No dependency on std's RandomState — same-seed runs produce identical
//! layouts, which the double-run byte-diff gate in `scripts/verify.sh`
//! relies on.

const CTRL_EMPTY: u8 = 0;
const CTRL_FULL: u8 = 1;
const CTRL_TOMB: u8 = 2;

/// Finalizer of splitmix64: a full-avalanche scrambler, so sequential
/// session ids (the common allocation pattern) spread uniformly.
#[inline]
fn scramble(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Dense u64-keyed map: slab of values + open-addressed slot index.
#[derive(Debug, Clone)]
pub struct SessionTable<T> {
    /// Value slots; `None` entries are on the free list.
    slots: Vec<Option<(u64, T)>>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
    /// Index control bytes: empty / full / tombstone.
    ctrl: Vec<u8>,
    /// Index keys (valid where ctrl == FULL).
    keys: Vec<u64>,
    /// Index values: slot number (valid where ctrl == FULL).
    slot_of: Vec<u32>,
    len: usize,
    /// Tombstones currently in the index (cleared on rehash).
    tombs: usize,
}

impl<T> Default for SessionTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SessionTable<T> {
    pub fn new() -> Self {
        SessionTable {
            slots: Vec::new(),
            free: Vec::new(),
            ctrl: vec![CTRL_EMPTY; 16],
            keys: vec![0; 16],
            slot_of: vec![0; 16],
            len: 0,
            tombs: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index position of `key`, or the insertion position if absent.
    /// Returns (position, found).
    fn probe(&self, key: u64) -> (usize, bool) {
        let mask = self.ctrl.len() - 1;
        let mut i = (scramble(key) as usize) & mask;
        let mut first_tomb: Option<usize> = None;
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => return (first_tomb.unwrap_or(i), false),
                CTRL_FULL if self.keys[i] == key => return (i, true),
                CTRL_TOMB if first_tomb.is_none() => first_tomb = Some(i),
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Grow (or just de-tombstone) the index when load crosses 7/8.
    fn maybe_rehash(&mut self) {
        if (self.len + self.tombs + 1) * 8 < self.ctrl.len() * 7 {
            return;
        }
        // Double only when genuinely full; a tombstone-heavy index rehashes
        // in place at the same capacity.
        let cap = if (self.len + 1) * 4 >= self.ctrl.len() * 3 {
            self.ctrl.len() * 2
        } else {
            self.ctrl.len()
        };
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![CTRL_EMPTY; cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_slots = std::mem::replace(&mut self.slot_of, vec![0; cap]);
        self.tombs = 0;
        let mask = cap - 1;
        for i in 0..old_ctrl.len() {
            if old_ctrl[i] != CTRL_FULL {
                continue;
            }
            let key = old_keys[i];
            let mut j = (scramble(key) as usize) & mask;
            while self.ctrl[j] == CTRL_FULL {
                j = (j + 1) & mask;
            }
            self.ctrl[j] = CTRL_FULL;
            self.keys[j] = key;
            self.slot_of[j] = old_slots[i];
        }
    }

    pub fn contains_key(&self, key: u64) -> bool {
        self.probe(key).1
    }

    pub fn get(&self, key: u64) -> Option<&T> {
        let (i, found) = self.probe(key);
        if !found {
            return None;
        }
        self.slots[self.slot_of[i] as usize].as_ref().map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let (i, found) = self.probe(key);
        if !found {
            return None;
        }
        self.slots[self.slot_of[i] as usize].as_mut().map(|(_, v)| v)
    }

    /// Entry-style accessor: the existing value, or a fresh one from `f`.
    pub fn get_or_insert_with(&mut self, key: u64, f: impl FnOnce() -> T) -> &mut T {
        self.maybe_rehash();
        let (i, found) = self.probe(key);
        if found {
            let slot = self.slot_of[i] as usize;
            return self.slots[slot].as_mut().map(|(_, v)| v).unwrap();
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((key, f()));
                s
            }
            None => {
                self.slots.push(Some((key, f())));
                (self.slots.len() - 1) as u32
            }
        };
        if self.ctrl[i] == CTRL_TOMB {
            self.tombs -= 1;
        }
        self.ctrl[i] = CTRL_FULL;
        self.keys[i] = key;
        self.slot_of[i] = slot;
        self.len += 1;
        self.slots[slot as usize].as_mut().map(|(_, v)| v).unwrap()
    }

    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        self.maybe_rehash();
        let (i, found) = self.probe(key);
        if found {
            let slot = self.slot_of[i] as usize;
            let old = self.slots[slot].replace((key, value));
            return old.map(|(_, v)| v);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((key, value));
                s
            }
            None => {
                self.slots.push(Some((key, value)));
                (self.slots.len() - 1) as u32
            }
        };
        if self.ctrl[i] == CTRL_TOMB {
            self.tombs -= 1;
        }
        self.ctrl[i] = CTRL_FULL;
        self.keys[i] = key;
        self.slot_of[i] = slot;
        self.len += 1;
        None
    }

    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (i, found) = self.probe(key);
        if !found {
            return None;
        }
        let slot = self.slot_of[i];
        self.ctrl[i] = CTRL_TOMB;
        self.tombs += 1;
        self.len -= 1;
        self.free.push(slot);
        self.slots[slot as usize].take().map(|(_, v)| v)
    }

    /// Live entries in slot order. Slot order is a deterministic function
    /// of the insertion/removal history — NOT sorted by key — so only
    /// order-independent reads/mutations may rely on it.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Mutable walk over live values in slot order (same caveat as
    /// [`iter`](Self::iter)).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(|s| s.as_mut().map(|(_, v)| v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: SessionTable<String> = SessionTable::new();
        assert!(t.is_empty());
        for i in 0..100u64 {
            assert!(t.insert(i, format!("v{i}")).is_none());
        }
        assert_eq!(t.len(), 100);
        for i in 0..100u64 {
            assert_eq!(t.get(i).unwrap(), &format!("v{i}"));
        }
        assert_eq!(t.remove(50).as_deref(), Some("v50"));
        assert!(t.get(50).is_none());
        assert_eq!(t.len(), 99);
        assert!(t.remove(50).is_none());
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut t: SessionTable<u64> = SessionTable::new();
        for i in 0..4u64 {
            t.insert(i, i * 10);
        }
        let before = t.slots.len();
        t.remove(1);
        t.remove(3);
        // LIFO reuse: slot of key 3 first, then slot of key 1.
        t.insert(100, 1);
        t.insert(101, 2);
        assert_eq!(t.slots.len(), before, "no slab growth after reuse");
        let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 101, 2, 100], "slot order reflects reuse");
    }

    #[test]
    fn get_or_insert_with_is_entry_like() {
        let mut t: SessionTable<Vec<u32>> = SessionTable::new();
        t.get_or_insert_with(7, Vec::new).push(1);
        t.get_or_insert_with(7, || panic!("must not re-create")).push(2);
        assert_eq!(t.get(7).unwrap(), &vec![1, 2]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn survives_heavy_churn_and_rehash() {
        let mut t: SessionTable<u64> = SessionTable::new();
        // Repeated fill/drain cycles force tombstone accumulation and both
        // same-capacity and doubling rehashes.
        for round in 0..50u64 {
            for i in 0..1_000u64 {
                t.insert(round * 1_000_000 + i, i);
            }
            for i in 0..1_000u64 {
                assert_eq!(t.remove(round * 1_000_000 + i), Some(i));
            }
            assert!(t.is_empty(), "round {round}");
        }
        // Slab stays bounded by the high-water mark, not total churn.
        assert!(t.slots.len() <= 1_000, "slab len {}", t.slots.len());
    }

    #[test]
    fn overwrite_returns_old_value() {
        let mut t: SessionTable<&'static str> = SessionTable::new();
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1), Some(&"b"));
    }

    #[test]
    fn values_mut_sees_every_entry() {
        let mut t: SessionTable<u64> = SessionTable::new();
        for i in 0..10u64 {
            t.insert(i, 0);
        }
        t.remove(4);
        for v in t.values_mut() {
            *v += 1;
        }
        assert_eq!(t.iter().map(|(_, v)| *v).sum::<u64>(), 9);
    }
}
